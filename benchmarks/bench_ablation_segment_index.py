"""Ablation — segment indexing on highly segmented state (Section VII).

The paper motivates segment indexing for "highly segmented datasets
resulting from many unmodeled attributes".  At the paper's own state
sizes a linear scan is fine (and the join ablation shows the index is
cost-neutral there); this ablation fragments the state heavily and
measures the overlap-query cost of the plain buffer vs the interval
index as live-segment counts grow — the index's per-query cost must stay
flat while the scan's grows linearly.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import Series, best_of, format_table, growth_ratio
from repro.core.polynomial import Polynomial
from repro.core.segment import Segment, SegmentBuffer
from repro.core.segment_index import IndexedSegmentBuffer

STATE_SIZES = (250, 500, 1000, 2000, 4000)
QUERIES = 300
QUERY_WIDTH = 0.5
SEGMENT_WIDTH = 0.4


def _segments(n: int, seed: int = 57) -> list[Segment]:
    rng = np.random.default_rng(seed)
    horizon = n * SEGMENT_WIDTH / 20.0  # ~20 keys live at any instant
    out = []
    for i in range(n):
        lo = float(rng.uniform(0.0, horizon))
        out.append(
            Segment(
                (f"k{i}",), lo, lo + SEGMENT_WIDTH,
                {"x": Polynomial([float(i)])},
            )
        )
    return out


def _query_cost(buffer, horizon: float, seed: int = 58) -> float:
    rng = np.random.default_rng(seed)
    probes = rng.uniform(0.0, horizon, size=QUERIES)
    start = time.perf_counter()
    hits = 0
    for lo in probes:
        for _ in buffer.overlapping(float(lo), float(lo) + QUERY_WIDTH):
            hits += 1
    elapsed = time.perf_counter() - start
    assert hits > 0
    return elapsed / QUERIES


def run_experiment():
    scan_series = Series("scan us/query")
    index_series = Series("index us/query")
    for n in STATE_SIZES:
        segments = _segments(n)
        horizon = n * SEGMENT_WIDTH / 20.0
        plain = SegmentBuffer()
        indexed = IndexedSegmentBuffer(cell_width=QUERY_WIDTH)
        for s in segments:
            plain.insert(s)
            indexed.insert(s)
        scan_series.add(
            n, 1e6 * best_of(lambda: _query_cost(plain, horizon), repeats=3)
        )
        index_series.add(
            n, 1e6 * best_of(lambda: _query_cost(indexed, horizon), repeats=3)
        )
    return scan_series, index_series


def test_ablation_segment_index(benchmark, report):
    scan_series, index_series = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    xs = scan_series.xs
    table = format_table(
        "live segments", xs, [scan_series, index_series], y_format="{:.2f}"
    )
    report(
        "ablation_segment_index",
        table
        + f"\ncost growth over 16x state — scan: "
        f"{growth_ratio(scan_series.ys):.1f}x, "
        f"index: {growth_ratio(index_series.ys):.1f}x",
    )
    benchmark.extra_info["scan_growth"] = growth_ratio(scan_series.ys)
    benchmark.extra_info["index_growth"] = growth_ratio(index_series.ys)

    # The scan's per-query cost grows with state; the index's stays
    # near-flat (constant live density per cell).
    assert growth_ratio(scan_series.ys) > 4.0
    assert growth_ratio(index_series.ys) < 3.0
    # At the largest state the index wins decisively.
    assert index_series.ys[-1] < 0.5 * scan_series.ys[-1]
