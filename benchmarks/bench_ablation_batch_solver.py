"""Ablation — batched companion-matrix kernel and the solve cache.

Two measurements against the scalar per-row baseline the seed shipped
with:

* **kernel**: a mixed-degree batch of difference rows solved through the
  stacked companion-matrix kernel (one ``eigvals`` call per degree
  bucket, vectorized Newton polish, matrix sign tests) versus the scalar
  ``solve_relation`` loop.  Output parity is exact — the kernel must
  emit *identical* TimeSets, so the speedup is free of semantic drift.
* **cache**: a repeated-join workload (the same segment pairs realign
  round after round, as in the paper's what-if sweeps and periodic
  predictive models) through the bounded LRU solve cache; the warm hit
  rate is the measurement.

``REPRO_BENCH_SMOKE=1`` shrinks the batch for CI smoke runs (parity and
cache assertions still hold; the 2x speedup floor is only asserted at
full size, where the kernel's fixed costs amortize).
"""

from __future__ import annotations

import gc
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from harness import record_result  # noqa: E402

from repro.core.batch_solver import solve_tasks, solver_mode
from repro.core.expr import Attr
from repro.core.operators.join_op import ContinuousJoin
from repro.core.polynomial import Polynomial
from repro.core.predicate import Comparison
from repro.core.relation import Rel
from repro.core.segment import Segment
from repro.core.solve_cache import global_solve_cache, reset_global_solve_cache
from repro.engine.metrics import reset_counters

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

DOMAIN = (0.0, 10.0)
N_ROWS = 64 if SMOKE else 256
TIMING_REPEATS = 2 if SMOKE else 5
JOIN_PARTNERS = 8
JOIN_ROUNDS = 25

CACHE_COUNTERS = (
    "solve_cache.hits",
    "solve_cache.misses",
    "solve_cache.evictions",
)


def _mixed_degree_tasks(seed: int = 17):
    """A >= 64-row batch of degree 3-6 rows across all six relations."""
    rng = np.random.default_rng(seed)
    rels = list(Rel)
    tasks = []
    for i in range(N_ROWS):
        degree = int(rng.integers(3, 7))
        coeffs = rng.normal(0.0, 1.0, degree + 1)
        p = Polynomial(coeffs.tolist())
        # Center so sign changes land inside the domain.
        p = p - p(5.0) + float(rng.normal(0.0, 0.3))
        tasks.append((p, rels[i % len(rels)], *DOMAIN))
    return tasks


def _time_solves(tasks, mode: str) -> tuple[float, list]:
    best = float("inf")
    results = None
    with solver_mode(mode) as cfg:
        cfg.cache_enabled = False  # isolate the kernel itself
        solve_tasks(tasks)  # warm-up: numpy gufunc setup stays untimed
        gc.disable()
        try:
            for _ in range(TIMING_REPEATS):
                start = time.perf_counter()
                results = solve_tasks(tasks)
                best = min(best, time.perf_counter() - start)
        finally:
            gc.enable()
    return best, results


def _repeated_join_workload() -> dict:
    """Drive the continuous join over realigning segment pairs.

    One probe side repeatedly re-announces the same predictive models
    over the same horizon (periodic re-instantiation), so every round
    re-solves byte-identical difference systems — the memoization
    target.
    """
    reset_counters(*CACHE_COUNTERS)
    reset_global_solve_cache()
    rng = np.random.default_rng(5)
    join = ContinuousJoin(
        Comparison(Attr("L.x"), Rel.LT, Attr("R.y")), window=None
    )
    for k in range(JOIN_PARTNERS):
        model = Polynomial(rng.normal(0.0, 1.0, 3).tolist())
        join.process(
            Segment((f"r{k}",), *DOMAIN, {"y": model}), port=1
        )
    probe_model = Polynomial([0.0, 1.0])
    outputs = 0
    with solver_mode("batch"):
        start = time.perf_counter()
        for _ in range(JOIN_ROUNDS):
            outputs += len(
                join.process(
                    Segment(("l",), *DOMAIN, {"x": probe_model}), port=0
                )
            )
        elapsed = time.perf_counter() - start
        cache = global_solve_cache()
        stats = cache.stats()
        stats["hit_rate"] = cache.hit_rate
    stats["outputs"] = outputs
    stats["seconds"] = elapsed
    stats["systems_solved"] = join.systems_solved
    return stats


def run_experiment():
    tasks = _mixed_degree_tasks()
    scalar_time, scalar_results = _time_solves(tasks, "scalar")
    batch_time, batch_results = _time_solves(tasks, "batch")
    identical = batch_results == scalar_results
    cache_stats = _repeated_join_workload()
    return {
        "rows": len(tasks),
        "scalar_seconds": scalar_time,
        "batch_seconds": batch_time,
        "speedup": scalar_time / batch_time,
        "identical_output": identical,
        "cache_hits": cache_stats["hits"],
        "cache_misses": cache_stats["misses"],
        "cache_evictions": cache_stats["evictions"],
        "cache_hit_rate": cache_stats["hit_rate"],
        "join_outputs": cache_stats["outputs"],
        "join_systems": cache_stats["systems_solved"],
        "join_seconds": cache_stats["seconds"],
    }


def test_ablation_batch_solver(benchmark, report):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(
        "ablation_batch_solver",
        (
            f"kernel ({r['rows']}-row mixed-degree batch"
            f"{', smoke' if SMOKE else ''}):\n"
            f"  scalar per-row loop: {r['scalar_seconds']*1e3:8.2f} ms\n"
            f"  batched kernel:      {r['batch_seconds']*1e3:8.2f} ms\n"
            f"  speedup:             {r['speedup']:8.2f}x\n"
            f"  identical TimeSets:  {r['identical_output']}\n"
            f"cache (repeated join, {JOIN_PARTNERS} partners x "
            f"{JOIN_ROUNDS} rounds):\n"
            f"  hits/misses/evict:   {r['cache_hits']}/"
            f"{r['cache_misses']}/{r['cache_evictions']}\n"
            f"  warm hit rate:       {r['cache_hit_rate']*100:8.1f} %\n"
            f"  join outputs:        {r['join_outputs']}"
        ),
    )
    benchmark.extra_info.update(r)
    record_result(
        "ablation_batch_solver",
        {
            **r,
            "wall_time_s": r["batch_seconds"],
            "throughput_items_per_s": r["rows"] / r["batch_seconds"],
            "smoke": SMOKE,
        },
    )

    # Parity is enforced, not sampled: the batch must produce the exact
    # TimeSet objects the scalar path produces.
    assert r["identical_output"]
    # Every round re-solves identical systems: only the first can miss.
    assert r["cache_hit_rate"] >= 0.90
    assert r["join_outputs"] > 0
    if not SMOKE:
        assert r["speedup"] >= 2.0
    else:
        assert r["speedup"] > 0.0
