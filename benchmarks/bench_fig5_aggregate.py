"""Fig. 5ii — min-aggregate microbenchmark: throughput vs tuples/segment.

The paper: the discrete aggregate applies a state increment per open
window to every tuple, so it is much more expensive per tuple than a
filter; the continuous aggregate therefore becomes viable at a *far less
expressive* model (~120-180 tuples/segment, about 5x less than the
filter's ~1050).  Three window sizes show the discrete cost scaling with
open-window count while Pulse's crossover barely moves.
"""

from __future__ import annotations

import time

from repro.bench import (
    FIG5_TPS_SWEEP,
    MICRO_PRECISION,
    MICRO_WORKLOAD,
    Series,
    best_of,
    crossover,
    fast_validate_loop,
    format_table,
    model_table,
)
from repro.core.operators import ContinuousExtremumAggregate
from repro.engine import DiscreteWindowAggregate
from repro.fitting import build_segments
from repro.workloads import MovingObjectConfig, MovingObjectGenerator

#: Window sizes (seconds); slide fixed so open windows = size / slide.
WINDOW_SIZES = (0.02, 0.05, 0.1)
SLIDE = 0.01


def _workload(tuples_per_segment: int, n: int):
    gen = MovingObjectGenerator(
        MovingObjectConfig(
            num_objects=5,
            rate=10_000.0,
            tuples_per_segment=tuples_per_segment,
            seed=43,
        )
    )
    tuples = list(gen.tuples(n))
    segments = build_segments(
        tuples, attrs=("x",), tolerance=1e-6,
        key_fields=("id",), constants=("id",),
    )
    return tuples, segments


def _discrete_run(tuples, window: float) -> float:
    op = DiscreteWindowAggregate("x", "min", window=window, slide=SLIDE)
    start = time.perf_counter()
    for tup in tuples:
        op.process(tup)
    op.flush()
    return time.perf_counter() - start


def _pulse_run(tuples, segments, window: float, bound_abs: float) -> float:
    op = ContinuousExtremumAggregate("x", func="min", window=window, slide=SLIDE)
    start = time.perf_counter()
    for seg in segments:
        op.process(seg)
    table = model_table(segments, "x")
    fast_validate_loop(tuples, table, "x", bound_abs)
    return time.perf_counter() - start


def run_sweep(n: int = MICRO_WORKLOAD // 2):
    bound_abs = MICRO_PRECISION * 1000.0
    pulse_series = Series("pulse t/s")
    tuple_series = {
        w: Series(f"tuple t/s (w={w:g}s)") for w in WINDOW_SIZES
    }
    for tps in FIG5_TPS_SWEEP:
        tuples, segments = _workload(tps, n)
        for w in WINDOW_SIZES:
            tuple_series[w].add(
                tps, n / best_of(lambda: _discrete_run(tuples, w), repeats=2)
            )
        pulse_series.add(
            tps,
            n
            / best_of(
                lambda: _pulse_run(tuples, segments, WINDOW_SIZES[1], bound_abs),
                repeats=2,
            ),
        )
    return tuple_series, pulse_series


def test_fig5ii_aggregate_microbenchmark(benchmark, report):
    tuple_series, pulse_series = benchmark.pedantic(
        run_sweep, rounds=1, iterations=1
    )
    xs = pulse_series.xs
    all_series = list(tuple_series.values()) + [pulse_series]
    table = format_table("tuples/segment", xs, all_series, y_format="{:.0f}")
    crossings = {
        w: crossover(xs, pulse_series.ys, s.ys) for w, s in tuple_series.items()
    }
    lines = [
        f"crossover vs w={w:g}s: {c if c else '> sweep'} tuples/segment"
        for w, c in crossings.items()
    ]
    report("fig5ii_aggregate", table + "\n" + "\n".join(lines))
    benchmark.extra_info["crossovers"] = {str(k): v for k, v in crossings.items()}

    # The discrete aggregate slows with window size (more open windows).
    mids = {w: s.ys[len(xs) // 2] for w, s in tuple_series.items()}
    assert mids[WINDOW_SIZES[0]] > mids[WINDOW_SIZES[-1]], (
        "larger windows must cost the discrete aggregate more"
    )
    # Pulse overtakes every discrete window setting within the sweep.
    for w, c in crossings.items():
        assert c is not None, f"no crossover for window {w}"
    # Paper: the aggregate crossover is far below the filter's (5x less
    # expressive models suffice).  The filter bench measured ~35-40;
    # require the largest-window crossover to be well below that.
    assert min(crossings.values()) < 25.0
