"""Fig. 9ii — AIS "following" query: throughput vs replay rate.

The paper: with a join as the query's first operator, the tuple path
saturates much earlier than in the MACD experiment (~1000 t/s); Pulse
reaches ~4x that (~4400 t/s); segment-only processing runs until it
exhausts memory rather than CPU.

The USCG AIS feed is not redistributable — the synthetic vessel
generator (piecewise-constant velocity, injected follower pairs)
substitutes for it; the error threshold follows the paper (0.05%).
"""

from __future__ import annotations

import numpy as np

from repro.bench import (
    FIG9II_PRECISION,
    Series,
    following_planned,
    format_table,
    time_historical_path,
    time_pulse_online_path,
    time_tuple_path,
)
from repro.engine import QueueingModel
from repro.fitting import build_segments
from repro.workloads import AisConfig, AisVesselGenerator

N_TUPLES = 6_000
FIT_TOLERANCE = 2.0  # meters; ~0.05% of the 50 km position scale


def _workload():
    gen = AisVesselGenerator(
        AisConfig(num_vessels=8, follower_pairs=2, rate=50.0,
                  follow_distance=500.0, course_period=40.0, seed=49)
    )
    return list(gen.tuples(N_TUPLES)), gen.follower_pairs


def run_experiment():
    tuples, injected_pairs = _workload()
    # Windows scaled to the 120 s workload span.
    planned = following_planned(join_window=2.0, avg_window=30.0, slide=5.0)

    tuple_run = time_tuple_path(planned, tuples, "vessels")
    pulse_run = time_pulse_online_path(
        planned, tuples, "vessels",
        attrs=("x", "y"), tolerance=FIT_TOLERANCE,
        key_fields=("id",), constants=("id",), bound=FIG9II_PRECISION,
    )
    segments = build_segments(
        tuples, attrs=("x", "y"), tolerance=FIT_TOLERANCE,
        key_fields=("id",), constants=("id",),
    )
    hist_run = time_historical_path(planned, segments, "vessels", len(tuples))

    capacities = {
        "tuple": tuple_run.throughput,
        "pulse": pulse_run.throughput,
        "historical": hist_run.throughput,
    }
    rates = [capacities["tuple"] * f for f in np.linspace(0.3, 5.0, 9)]
    series = {}
    for name, run in (
        ("tuple", tuple_run), ("pulse", pulse_run), ("historical", hist_run)
    ):
        model = QueueingModel(run.service_time, queue_capacity=25_000.0)
        s = Series(f"{name} t/s")
        for rate in rates:
            s.add(rate, model.offered(rate, duration=30.0).achieved_throughput)
        series[name] = s
    outputs = {
        "tuple": tuple_run.outputs,
        "pulse": pulse_run.outputs,
        "historical": hist_run.outputs,
    }
    return rates, series, capacities, outputs, injected_pairs


def test_fig9ii_ais_following_throughput(benchmark, report):
    rates, series, capacities, outputs, injected = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    table = format_table(
        "offered t/s", rates, list(series.values()), y_format="{:.0f}"
    )
    caps = "  ".join(f"{k}={v:,.0f} t/s" for k, v in capacities.items())
    report(
        "fig9ii_ais",
        table + f"\nmeasured capacities: {caps}\noutputs: {outputs}"
        + f"\ninjected follower pairs: {injected}",
    )
    benchmark.extra_info["capacities"] = capacities
    benchmark.extra_info["pulse_over_tuple"] = (
        capacities["pulse"] / capacities["tuple"]
    )

    # The query detects followers on both paths.
    assert outputs["tuple"] > 0
    assert outputs["historical"] > 0
    # Paper: a ~4x pulse-over-tuple gain with the join up front — the
    # gap must be clearly wider than the MACD experiment's ~1.6x.
    assert capacities["pulse"] > 2.0 * capacities["tuple"]
    assert capacities["historical"] >= capacities["pulse"]
    # The join-first query saturates the tuple path earlier (in absolute
    # terms) than the aggregate-first MACD query did: its capacity is
    # low because of quadratic pairing work.
    assert series["tuple"].ys[-1] < rates[-1] * 0.5
