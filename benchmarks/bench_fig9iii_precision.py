"""Fig. 9iii — MACD latency vs precision bound, with the violation inset.

The paper: at a fixed 3000 t/s NYSE replay, Pulse sustains low latency
down to ~0.3% relative precision; tighter bounds cause exponentially
more precision violations (the inset's log-scale curve), each violation
forces re-solving, and once the re-solve work exceeds capacity the
end-to-end latency grows explosively.

Mechanism reproduced one-to-one: the inverted input bound determines the
model-fitting tolerance, tighter tolerance means more (and shorter)
segments plus more per-tuple violations, and the measured service time
feeds the bounded-queue latency model at the fixed offered rate.
"""

from __future__ import annotations

from repro.bench import (
    FIG9III_PRECISIONS,
    Series,
    format_table,
    macd_planned,
    time_pulse_online_path,
)
from repro.engine import QueueingModel
from repro.workloads import NyseConfig, NyseTradeGenerator

N_TUPLES = 8_000
BASE_PRICE = 100.0


def _workload():
    gen = NyseTradeGenerator(
        NyseConfig(num_symbols=5, rate=500.0, volatility=3e-3,
                   drift_period=20.0, base_price=BASE_PRICE, seed=50)
    )
    return list(gen.tuples(N_TUPLES))


def run_experiment():
    tuples = _workload()
    planned = macd_planned(short=2.0, long=6.0, slide=1.0)
    latency_series = Series("latency (ms)")
    violation_series = Series("violations")
    service_series = Series("service us/tuple")

    # The offered rate is fixed; precision varies (paper: 3000 t/s).
    # Scale the rate axis to this machine: fix it relative to the most
    # permissive bound's capacity so the latency knee falls inside the
    # sweep, as it does in the paper.
    baseline = time_pulse_online_path(
        planned, tuples, "trades",
        attrs=("price",), tolerance=FIG9III_PRECISIONS[-1] * BASE_PRICE,
        key_fields=("symbol",), constants=("symbol",),
        bound=FIG9III_PRECISIONS[-1],
    )
    offered_rate = 0.5 / baseline.service_time

    for precision in sorted(FIG9III_PRECISIONS, reverse=True):
        run = time_pulse_online_path(
            planned, tuples, "trades",
            attrs=("price",),
            tolerance=precision * BASE_PRICE,  # the inverted input bound
            key_fields=("symbol",), constants=("symbol",),
            bound=precision,
        )
        model = QueueingModel(run.service_time, queue_capacity=10_000.0)
        result = model.offered(offered_rate, duration=30.0)
        latency_series.add(precision * 100, result.mean_latency * 1e3)
        violation_series.add(precision * 100, run.violations)
        service_series.add(precision * 100, run.service_time * 1e6)
    return latency_series, violation_series, service_series, offered_rate


def test_fig9iii_latency_vs_precision(benchmark, report):
    latency, violations, service, offered_rate = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    xs = latency.xs  # precision in %, descending (loose -> tight)
    table = format_table(
        "precision (%)", xs, [latency, violations, service], y_format="{:.2f}"
    )
    report(
        "fig9iii_precision",
        table + f"\nfixed offered rate: {offered_rate:,.0f} t/s",
    )
    benchmark.extra_info["offered_rate"] = offered_rate

    # The inset: violations increase monotonically (and sharply) as the
    # precision bound tightens.
    assert violations.ys[-1] > 10 * max(violations.ys[0], 1)
    for a, b in zip(violations.ys[:-1], violations.ys[1:]):
        assert b >= a * 0.8  # allow small plateaus, no real decreases
    # Latency stays low under loose bounds and explodes under tight
    # ones (the paper's knee): at least a 100x swing across the sweep.
    assert latency.ys[0] < latency.ys[-1] / 100.0
    # Service time (re-solve work) grows as the bound tightens.
    assert service.ys[-1] > 2.0 * service.ys[0]
