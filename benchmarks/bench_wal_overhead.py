"""WAL overhead: ingest throughput with durability on vs. off.

The acceptance bar for the durability subsystem: with batched fsyncs
(``fsync_every=32``, the default), WAL-on ingest throughput must stay
within 20% of WAL-off — durability is a tax, not a wall.  The sweep
also records per-fsync-policy numbers (every record / batched / OS-
deferred) so a regression in one policy is attributable, plus the
checkpoint write cost, which sits on the same ingest path when
``checkpoint_every`` fires.

Method: the same segment trace is pushed through ``QueryRuntime.enqueue``
+ ``run_until_idle`` with and without an attached ``Durability``; WAL
files land on a tmpdir (same filesystem the tests use).  Best-of-3,
whole-trace wall time.
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from harness import record_result  # noqa: E402

from repro.core.transform import to_continuous_plan
from repro.engine.durability import Durability
from repro.engine.scheduler import QueryRuntime
from repro.fitting import build_segments
from repro.query import parse_query, plan_query
from repro.workloads import MovingObjectConfig, MovingObjectGenerator

N_TUPLES = 60_000
TUPLES_PER_SEGMENT = 50
REPEATS = 5
QUERY = "select * from objects where x > 0"


def _segments():
    gen = MovingObjectGenerator(
        MovingObjectConfig(
            num_objects=5,
            rate=10_000.0,
            tuples_per_segment=TUPLES_PER_SEGMENT,
            seed=42,
        )
    )
    tuples = list(gen.tuples(N_TUPLES))
    return build_segments(
        tuples,
        attrs=("x", "y"),
        tolerance=1e-6,
        key_fields=("id",),
        constants=("id",),
    )


def _run(segments, fsync_every=None, checkpoint_every=None) -> float:
    """One full ingest pass; returns wall seconds (best caller picks)."""
    wal_dir = (
        tempfile.mkdtemp(prefix="bench-wal-") if fsync_every is not None
        else None
    )
    try:
        durability = (
            Durability(wal_dir, fsync_every=fsync_every)
            if wal_dir is not None
            else None
        )
        runtime = QueryRuntime(batch_size=64, durability=durability)
        runtime.register(
            "q", to_continuous_plan(plan_query(parse_query(QUERY)))
        )
        start = time.perf_counter()
        for i, seg in enumerate(segments):
            runtime.enqueue("objects", seg)
            if checkpoint_every and (i + 1) % checkpoint_every == 0:
                runtime.run_until_idle()
                runtime.checkpoint()
        runtime.run_until_idle()
        elapsed = time.perf_counter() - start
        runtime.close()
        return elapsed
    finally:
        if wal_dir is not None:
            shutil.rmtree(wal_dir, ignore_errors=True)


def best_throughput(segments, **kw) -> float:
    best = min(_run(segments, **kw) for _ in range(REPEATS))
    return N_TUPLES / best


def main() -> None:
    segments = list(_segments())
    print(f"{len(segments)} segments from {N_TUPLES} tuples")

    baseline = best_throughput(segments)
    batched = best_throughput(segments, fsync_every=32)
    every = best_throughput(segments, fsync_every=1)
    deferred = best_throughput(segments, fsync_every=0)
    with_ckpt = best_throughput(
        segments, fsync_every=32, checkpoint_every=200
    )

    metrics = {
        "tuples": N_TUPLES,
        "segments": len(segments),
        "tuples_per_segment": TUPLES_PER_SEGMENT,
        "repeats": REPEATS,
        "wal_off_tuples_per_s": round(baseline, 1),
        "wal_batched_tuples_per_s": round(batched, 1),
        "wal_every_record_tuples_per_s": round(every, 1),
        "wal_os_deferred_tuples_per_s": round(deferred, 1),
        "wal_batched_checkpointing_tuples_per_s": round(with_ckpt, 1),
        "batched_fraction_of_baseline": round(batched / baseline, 4),
        "every_record_fraction_of_baseline": round(every / baseline, 4),
        "throughput_tps": round(batched, 1),
    }
    for key, value in metrics.items():
        print(f"  {key}: {value}")
    ok = metrics["batched_fraction_of_baseline"] >= 0.8
    metrics["meets_80pct_bar"] = ok
    path = record_result("wal_overhead", metrics)
    print(f"wrote {path}")
    print(
        "PASS: batched WAL ≥ 80% of baseline"
        if ok
        else "FAIL: batched WAL below 80% of baseline"
    )


if __name__ == "__main__":
    main()
