"""Router fleet scaling: merged throughput across fleet widths.

A :class:`~repro.server.router.PulseRouter` fronts ``W`` durable
subprocess workers (:class:`~repro.testing.chaos_server.WorkerFleet`,
``fsync_every=1`` — the same configuration the fleet recovery guarantee
assumes).  One client streams a keyed moving-object workload through
the router at widths 1, 2, 3(, 4); each width's merged subscriber
stream is compared **in-run, bit-exactly** against an in-process
single-engine reference over the same tuples — the benchmark *fails*
on any parity mismatch, so every recorded number describes a correct
merge.

Headline metrics recorded to ``BENCH_router_scaling.json``:

* ``throughput`` — merged tuples/second at the widest fleet;
* ``throughput_workers_<w>`` / ``speedup_workers_<w>`` — per width;
* ``runs_workers_<w>`` — ingest runs (worker requests) the router's
  key-run splitter produced at that width (run fragmentation is the
  router's intrinsic fan-out cost);
* ``parity`` — always ``"exact"`` if the process exits 0.

Workers are separate OS processes, so scaling is real process
parallelism when cores exist; on a single-core host the harness stamps
``parallel_effective=false`` and any speedup should be read as
pipelining overlap, not parallel compute.

``REPRO_BENCH_SMOKE=1`` shrinks the workload for CI (the
``router-parity`` job runs this and uploads the artifact).
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from harness import record_result  # noqa: E402

from repro.engine.lowering import to_discrete_plan
from repro.engine.tuples import StreamTuple
from repro.query import parse_query, plan_query
from repro.server import PulseClient, PulseRouter, RouterConfig
from repro.server.protocol import serialize_results
from repro.testing.chaos_server import WorkerFleet
from repro.workloads import MovingObjectConfig, MovingObjectGenerator

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

QUERY = "select * from objects where x > 0"
STREAM = "objects"
FIT = {"attrs": ["x", "y"], "key_fields": ["id"]}
N_TUPLES = 1_500 if SMOKE else 12_000
BATCH = 100 if SMOKE else 200
WIDTHS = (1, 3) if SMOKE else (1, 2, 3, 4)
SEED = 7


def generate(n: int) -> list[dict]:
    gen = MovingObjectGenerator(
        MovingObjectConfig(rate=float(n), seed=SEED)
    )
    return [dict(t) for t in gen.tuples(n)]


def reference_results(tuples: list[dict]) -> list[dict]:
    """The same query executed in one in-process engine."""
    query = to_discrete_plan(plan_query(parse_query(QUERY)))
    outputs = []
    for tup in tuples:
        outputs.extend(query.push(STREAM, StreamTuple(tup)))
    outputs.extend(query.flush())
    return serialize_results(outputs)


def run_width(
    width: int, tuples: list[dict], expected: list[dict]
) -> dict:
    """One fleet at ``width`` workers: ingest, flush, drain, verify."""
    with tempfile.TemporaryDirectory(prefix="bench_router_") as wal:
        fleet = WorkerFleet(width, wal, checkpoint_every=100_000)
        addrs = fleet.start()
        router = None
        try:
            router = PulseRouter(
                RouterConfig(workers=tuple(addrs))
            ).start()
            with PulseClient(
                "127.0.0.1", router.port, timeout=120.0
            ) as client:
                client.connect()
                client.register("bench", QUERY, fit=FIT)
                sub = client.subscribe("bench", mode="discrete")
                runs = 0
                t0 = time.perf_counter()
                for start in range(0, len(tuples), BATCH):
                    ack = client.ingest(
                        STREAM, tuples[start:start + BATCH]
                    )
                    runs += ack.get("runs", 1)
                client.flush()
                elapsed = time.perf_counter() - t0
                results = client.drain_results(sub["subscription"])
                stats = client.stats()
        finally:
            if router is not None:
                router.stop()
            fleet.stop()
    if results != expected:
        raise SystemExit(
            f"PARITY FAILURE at {width} workers: merged stream has "
            f"{len(results)} results, reference {len(expected)}"
        )
    spread = [w["sent"] for w in stats["workers"]]
    return {
        "elapsed_s": elapsed,
        "throughput": len(tuples) / elapsed,
        "runs": runs,
        "spread": spread,
        "results": len(results),
    }


def main() -> int:
    tuples = generate(N_TUPLES)
    expected = reference_results(tuples)
    print(
        f"{N_TUPLES} tuples, batch {BATCH}, widths {WIDTHS}"
        f"{' (smoke)' if SMOKE else ''}; "
        f"reference: {len(expected)} results"
    )
    metrics: dict = {
        "tuples": N_TUPLES,
        "batch_size": BATCH,
        "widths": list(WIDTHS),
        "smoke": SMOKE,
        "parity": "exact",  # run_width raises on any mismatch
        "max_shards": max(WIDTHS),
        "parallel_used": True,  # workers are separate OS processes
    }
    base = None
    last = None
    for width in WIDTHS:
        out = run_width(width, tuples, expected)
        base = base or out["throughput"]
        speedup = out["throughput"] / base
        print(
            f"workers={width}: {out['throughput']:,.0f} t/s in "
            f"{out['elapsed_s']:.2f}s, {out['runs']} runs, "
            f"spread {out['spread']} (speedup {speedup:.2f}, parity ok)"
        )
        metrics[f"wall_time_s_workers_{width}"] = round(
            out["elapsed_s"], 4
        )
        metrics[f"throughput_workers_{width}"] = round(
            out["throughput"], 1
        )
        metrics[f"speedup_workers_{width}"] = round(speedup, 3)
        metrics[f"runs_workers_{width}"] = out["runs"]
        last = out
    metrics["wall_time_s"] = round(last["elapsed_s"], 4)
    metrics["throughput"] = round(last["throughput"], 1)
    metrics["speedup"] = round(last["throughput"] / base, 3)
    metrics["merged_results"] = last["results"]
    record_result("router_scaling", metrics)
    print("recorded BENCH_router_scaling.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
