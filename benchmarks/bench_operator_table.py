"""Fig. 3 — the operator transformation summary, regenerated from code.

Renders the table from live operator metadata (inputs, state,
implementation, outputs) and verifies each row against the actual
operator classes, so the documentation cannot drift from the code.
"""

from __future__ import annotations

from repro.core.operators import (
    ContinuousExtremumAggregate,
    ContinuousFilter,
    ContinuousGroupBy,
    ContinuousJoin,
    ContinuousSumAggregate,
)
from repro.core.expr import Attr, Const
from repro.core.predicate import Comparison
from repro.core.relation import Rel

ROWS = (
    (
        "Filter",
        "x_i",
        "(stateless)",
        "D = [x_i - c_i]; solve D t R 0",
        "{(t, x_i) | D t R 0}",
    ),
    (
        "Join",
        "x_i left, y_i right",
        "order-based segment buffers, watermark eviction",
        "align x_i, y_i w.r.t. t; D = [x_i - y_i]; solve D t R 0",
        "{(t, x_i, y_i) | D t R 0}",
    ),
    (
        "Aggregate min/max",
        "x_i",
        "state model s(t): piecewise envelope",
        "align x_i, s_i w.r.t. t; D = [x_i - s_i]; solve D t R 0",
        "{(t, s_i) | D t R 0}",
    ),
    (
        "Aggregate sum/avg",
        "x_i",
        "cumulative antiderivative pieces (segment integrals C)",
        "wf(t) = A_head(t) - A_tail(t - w) via binomial expansion",
        "segments carrying wf as their model",
    ),
    (
        "Aggregate group-by",
        "x_i",
        "per-group state for f",
        "hash-based group-by, impl for f per group",
        "outputs for f per group",
    ),
)


def render() -> str:
    headers = ("Operator", "Inputs", "State", "Implementation", "Outputs")
    rows = [headers] + [tuple(r) for r in ROWS]
    widths = [max(len(r[i]) for r in rows) for i in range(5)]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(c.ljust(widths[j]) for j, c in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def test_fig3_operator_table(benchmark, report):
    text = benchmark.pedantic(render, rounds=1, iterations=1)
    report("fig3_operators", text)

    # Verify the table's claims against the live classes.
    pred = Comparison(Attr("x"), Rel.GT, Const(0.0))
    assert ContinuousFilter(pred).arity == 1
    assert ContinuousJoin(pred).arity == 2
    agg = ContinuousExtremumAggregate("x", func="min")
    assert hasattr(agg, "envelope")  # the state model s(t)
    sum_agg = ContinuousSumAggregate("x", window=1.0)
    assert hasattr(sum_agg, "cumulative")  # segment integrals C
    gb = ContinuousGroupBy(lambda: ContinuousSumAggregate("x", window=1.0))
    assert gb.group_count == 0  # per-group state, lazily created
