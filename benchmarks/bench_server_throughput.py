"""Server ingest throughput: rate-controlled load over loopback TCP.

A :class:`~repro.server.server.ServerThread` hosts one standing query;
a load generator drives moving-object tuples through
:class:`~repro.server.client.PulseClient` in batches, first unthrottled
(peak ingest throughput) and then at a target rate (sustained-rate
check with backpressure counters).  After the run the client's results
are compared against an in-process reference execution of the same
query over the same tuples — the benchmark *fails* on any parity
mismatch, so a recorded throughput number always describes a correct
server.

Headline metrics recorded to ``BENCH_server_throughput.json``:

* ``throughput`` — peak accepted tuples/second over loopback;
* ``sustained_rate_target`` / ``sustained_rate_achieved`` — the
  rate-controlled pass;
* ``shed`` / ``blocked`` / ``results_dropped`` — backpressure counters
  observed during the runs (exported via the metrics snapshot too).

``REPRO_BENCH_SMOKE=1`` shrinks the workload for CI (the server-smoke
job runs exactly this and uploads the artifact).
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from harness import record_result  # noqa: E402

from repro.engine.lowering import to_discrete_plan
from repro.query import parse_query, plan_query
from repro.server import PulseClient, ServerConfig, ServerThread
from repro.workloads import MovingObjectConfig, MovingObjectGenerator

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

QUERY = "select * from objects where x > 0"
STREAM = "objects"
N_TUPLES = 2_000 if SMOKE else 50_000
BATCH = 200 if SMOKE else 500
TARGET_RATE = 10_000.0  # tuples/s the acceptance criterion pins
SEED = 7


def generate(n: int) -> list[dict]:
    gen = MovingObjectGenerator(
        MovingObjectConfig(rate=float(n), seed=SEED)
    )
    return [dict(t) for t in gen.tuples(n)]


def reference_results(tuples: list[dict]) -> list[dict]:
    """The same query executed in-process (discrete path)."""
    from repro.engine.tuples import StreamTuple

    query = to_discrete_plan(plan_query(parse_query(QUERY)))
    outputs = []
    for tup in tuples:
        outputs.extend(query.push(STREAM, StreamTuple(tup)))
    outputs.extend(query.flush())
    return [dict(t) for t in outputs]


def run_pass(
    port: int, tuples: list[dict], rate: float | None
) -> dict:
    """One client session: subscribe, ingest, flush, drain, verify."""
    with PulseClient("127.0.0.1", port) as client:
        client.connect()
        sub = client.subscribe("bench", mode="discrete")
        t0 = time.perf_counter()
        totals = client.ingest_iter(
            STREAM, tuples, batch_size=BATCH, rate=rate
        )
        client.flush()
        elapsed = time.perf_counter() - t0
        results = client.drain_results(sub["subscription"])
        notices = client.drain_notices("backpressure")
        client.unsubscribe(sub["subscription"])
    expected = reference_results(tuples)
    if results != expected:
        raise SystemExit(
            f"PARITY FAILURE: server returned {len(results)} results, "
            f"reference produced {len(expected)}"
        )
    return {
        "elapsed_s": elapsed,
        "throughput": totals["accepted"] / elapsed,
        "accepted": totals["accepted"],
        "shed": totals["shed"],
        "blocked": totals["blocked"],
        "results": len(results),
        "dropped_result_notices": sum(
            n.get("dropped_results", 0) for n in notices
        ),
    }


def main() -> int:
    tuples = generate(N_TUPLES)
    config = ServerConfig(backpressure="block")
    queries = [("bench", QUERY, None)]
    with ServerThread(config, queries) as handle:
        print(
            f"server on :{handle.port}; {N_TUPLES} tuples, "
            f"batch {BATCH}{' (smoke)' if SMOKE else ''}"
        )
        peak = run_pass(handle.port, tuples, rate=None)
        print(
            f"peak: {peak['throughput']:,.0f} t/s "
            f"({peak['accepted']} accepted, {peak['results']} results, "
            f"parity ok)"
        )
        sustained = run_pass(handle.port, tuples, rate=TARGET_RATE)
        achieved = sustained["accepted"] / sustained["elapsed_s"]
        print(
            f"sustained @ {TARGET_RATE:,.0f} t/s target: "
            f"{achieved:,.0f} t/s achieved (parity ok)"
        )
        stats_client = PulseClient("127.0.0.1", handle.port)
        try:
            stats_client.connect()
            engine = stats_client.stats()["engine"]
        finally:
            stats_client.close()

    ok = peak["throughput"] >= TARGET_RATE
    record_result(
        "server_throughput",
        {
            "throughput": peak["throughput"],
            "wall_time_s": peak["elapsed_s"],
            "tuples": N_TUPLES,
            "batch_size": BATCH,
            "smoke": SMOKE,
            "peak_accepted": peak["accepted"],
            "peak_results": peak["results"],
            "sustained_rate_target": TARGET_RATE,
            "sustained_rate_achieved": achieved,
            "shed": peak["shed"] + sustained["shed"],
            "blocked": peak["blocked"] + sustained["blocked"],
            "results_dropped": peak["dropped_result_notices"]
            + sustained["dropped_result_notices"],
            "items_enqueued": engine["items_enqueued"],
            "parity": "exact",
            "meets_10k_floor": ok,
        },
    )
    print(f"recorded BENCH_server_throughput.json (10k floor: {ok})")
    if not ok and not SMOKE:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
