"""Benchmark result recording: one JSON artifact per benchmark run.

Every benchmark that wants a machine-readable trajectory calls
:func:`record_result` with its headline metrics; the harness stamps the
environment (git revision, CPU count, hostname-free platform string,
UTC timestamp) and writes ``benchmarks/results/BENCH_<name>.json``.
Committing these artifacts gives the repository a recorded performance
trajectory: every run of the same benchmark on a new revision appends a
comparable point, and CI uploads the files so regressions are diffable
without rerunning anything.

Schema (stable keys; benchmarks may add their own under ``metrics``):

```json
{
  "name": "scaling_shards",
  "git_rev": "441536d...",
  "recorded_at": "2026-08-06T12:00:00+00:00",
  "python": "3.12.3",
  "platform": "Linux-...",
  "cpu_count": 1,
  "wall_time_s": 1.23,
  "throughput_items_per_s": 831.4,
  "speedup": 1.83,
  "metrics": {...},
  "metrics_snapshot": {"counters": {...}, "gauges": {...},
                       "histograms": {...}}
}
```

``metrics_snapshot`` is the process's full
:class:`repro.engine.metrics.MetricsSnapshot` at recording time —
latency histograms included — so the perf trajectory carries
distributions, not just wall time (``null`` when ``repro`` is not
importable).

``wall_time_s`` / ``throughput_items_per_s`` / ``speedup`` are promoted
to the top level when present in ``metrics`` (under those names or the
short aliases ``wall_time`` / ``throughput``) so downstream tooling can
read the headline numbers without knowing each benchmark's vocabulary.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Mapping

RESULTS_DIR = Path(__file__).parent / "results"

#: metrics keys promoted to top-level fields (first name wins).
_PROMOTED = {
    "wall_time_s": ("wall_time_s", "wall_time"),
    "throughput_items_per_s": ("throughput_items_per_s", "throughput"),
    "speedup": ("speedup",),
}


def git_revision(repo_root: Path | None = None) -> str:
    """The current git revision, ``"<rev>-dirty"`` with uncommitted
    changes, or ``"unknown"`` outside a checkout.

    Never raises: recording a benchmark result must work from an
    exported tarball, a CI shallow clone mid-rebase, or a dirty working
    tree — the provenance field degrades instead of the run failing.
    """
    root = repo_root or Path(__file__).resolve().parent.parent
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    if not rev:
        return "unknown"
    try:
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
    except (OSError, subprocess.SubprocessError):
        # Revision known but cleanliness not provable: call it dirty so
        # a recorded number is never wrongly attributed to a clean rev.
        return f"{rev}-dirty"
    return f"{rev}-dirty" if status.stdout.strip() else rev


def record_result(
    name: str,
    metrics: Mapping[str, Any],
    results_dir: Path | None = None,
) -> Path:
    """Write ``BENCH_<name>.json`` under ``benchmarks/results/``.

    ``name`` must be a filesystem-safe slug (letters, digits, ``-``,
    ``_``); ``metrics`` is the benchmark's own flat mapping of numbers
    and strings.  Returns the written path.
    """
    if not name or any(c not in _SLUG for c in name):
        raise ValueError(
            f"benchmark name must be a [-_a-zA-Z0-9] slug, got {name!r}"
        )
    out_dir = results_dir or RESULTS_DIR
    out_dir.mkdir(parents=True, exist_ok=True)
    doc: dict[str, Any] = {
        "name": name,
        "git_rev": git_revision(),
        "recorded_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
    }
    for field, aliases in _PROMOTED.items():
        for alias in aliases:
            if alias in metrics:
                doc[field] = metrics[alias]
                break
    effective = _parallel_effective(metrics, doc["cpu_count"])
    if effective is not None:
        doc["parallel_effective"] = effective
        if not effective:
            print(
                f"[harness] WARNING: BENCH_{name} ran "
                f"{metrics.get('max_shards')} shards on "
                f"{doc['cpu_count']} CPU(s)"
                + (
                    " without process-parallel workers"
                    if metrics.get("parallel_used") is False
                    else ""
                )
                + " — any speedup is caching/batching, not parallel "
                "scaling (parallel_effective=false).",
                file=sys.stderr,
            )
    doc["metrics"] = dict(metrics)
    doc["metrics_snapshot"] = _metrics_snapshot()
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    return path


def _parallel_effective(
    metrics: Mapping[str, Any], cpu_count: int
) -> bool | None:
    """Whether a sharded run's speedup can honestly be called parallel.

    ``None`` (field omitted) for benchmarks that don't report a
    ``max_shards`` — the flag only means something for shard-scaling
    runs.  ``False`` when the host has fewer CPUs than shards (the
    shards time-slice one core, so any speedup is caching/batch
    amortization) or when the run itself reports it executed without
    process-parallel workers (``parallel_used: false`` — e.g. the
    dispatcher's inline fallback on a 1-core host).
    """
    shards = metrics.get("max_shards")
    if shards is None:
        return None
    try:
        shards = int(shards)
    except (TypeError, ValueError):
        return None
    if metrics.get("parallel_used") is False:
        return False
    return cpu_count >= shards


def _metrics_snapshot() -> dict[str, Any] | None:
    """The process's current counter/gauge/histogram state, or ``None``.

    Embedding the registry snapshot in every ``BENCH_<name>.json`` means
    the recorded perf trajectory carries latency distributions and work
    counters, not just wall time.  ``None`` when the ``repro`` package
    is not importable (harness used standalone).
    """
    try:
        from repro.engine.metrics import MetricsSnapshot
    except ImportError:
        return None
    return MetricsSnapshot.collect().as_dict()


_SLUG = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_"
)
