"""Fig. 7i — aggregate processing cost vs window size.

The paper: at a fixed slide, the tuple-based aggregate's cost is linear
in the window size (one state increment per open window per tuple),
while the segment-based cost stays low and flat because most tuples are
only *validated*.  Pulse outperforms beyond a ~30 s window and costs
~40% of tuple processing at a 100 s window.

Our time axis is scaled (windows in model-time seconds over a 10 kHz
synthetic feed); the window/slide *ratio* — the open-window count that
drives the discrete cost — matches the paper's 5..50 range.
"""

from __future__ import annotations

import time

from repro.bench import (
    MICRO_PRECISION,
    Series,
    best_of,
    crossover,
    fast_validate_loop,
    format_table,
    growth_ratio,
    is_roughly_flat,
    model_table,
)
from repro.core.operators import ContinuousExtremumAggregate
from repro.engine import DiscreteWindowAggregate
from repro.fitting import build_segments
from repro.workloads import MovingObjectConfig, MovingObjectGenerator

#: Open-window counts mirroring the paper's 10-100 s at slide 2 s.
WINDOW_RATIOS = (5, 10, 15, 20, 30, 40, 50)
SLIDE = 0.01
TUPLES_PER_SEGMENT = 150
N_TUPLES = 2000


def _workload():
    gen = MovingObjectGenerator(
        MovingObjectConfig(
            num_objects=5,
            rate=10_000.0,
            tuples_per_segment=TUPLES_PER_SEGMENT,
            seed=45,
        )
    )
    tuples = list(gen.tuples(N_TUPLES))
    segments = build_segments(
        tuples, attrs=("x",), tolerance=1e-6,
        key_fields=("id",), constants=("id",),
    )
    return tuples, segments


def _discrete_cost(tuples, window) -> float:
    op = DiscreteWindowAggregate("x", "min", window=window, slide=SLIDE)
    start = time.perf_counter()
    for tup in tuples:
        op.process(tup)
    op.flush()
    return (time.perf_counter() - start) / len(tuples)


def _pulse_cost(tuples, segments, window, bound_abs) -> float:
    op = ContinuousExtremumAggregate("x", func="min", window=window, slide=SLIDE)
    start = time.perf_counter()
    for seg in segments:
        op.process(seg)
    table = model_table(segments, "x")
    fast_validate_loop(tuples, table, "x", bound_abs)
    return (time.perf_counter() - start) / len(tuples)


def run_sweep():
    tuples, segments = _workload()
    bound_abs = MICRO_PRECISION * 1000.0
    tuple_series = Series("tuple us/tuple")
    pulse_series = Series("pulse us/tuple")
    for ratio in WINDOW_RATIOS:
        window = ratio * SLIDE
        tuple_series.add(
            ratio, 1e6 * best_of(lambda: _discrete_cost(tuples, window), repeats=2)
        )
        pulse_series.add(
            ratio,
            1e6
            * best_of(
                lambda: _pulse_cost(tuples, segments, window, bound_abs), repeats=2
            ),
        )
    return tuple_series, pulse_series


def test_fig7i_aggregate_cost_vs_window(benchmark, report):
    tuple_series, pulse_series = benchmark.pedantic(
        run_sweep, rounds=1, iterations=1
    )
    xs = tuple_series.xs
    table = format_table(
        "open windows (w/slide)", xs, [tuple_series, pulse_series],
        y_format="{:.2f}",
    )
    cross = crossover(xs, [-y for y in pulse_series.ys], [-y for y in tuple_series.ys])
    ratio_at_max = pulse_series.ys[-1] / tuple_series.ys[-1]
    report(
        "fig7i_aggregate_window",
        table
        + f"\npulse/tuple cost at the largest window: {ratio_at_max:.2f}"
        + f"\ncost growth tuple: {growth_ratio(tuple_series.ys):.2f}x, "
        + f"pulse: {growth_ratio(pulse_series.ys):.2f}x",
    )
    benchmark.extra_info["pulse_over_tuple_at_max"] = ratio_at_max

    # Tuple cost is linear in the open-window count: expect substantial
    # growth across a 10x window sweep (>= 2x even with timer noise).
    assert growth_ratio(tuple_series.ys) > 2.0
    # Pulse's cost is dominated by validation and stays roughly flat.
    assert is_roughly_flat(pulse_series.ys, factor=3.0)
    # Paper: ~40% of tuple cost at the largest window (we accept <= 60%).
    assert ratio_at_max < 0.6
    # Pulse wins somewhere within the sweep (paper: beyond ~30 s).
    assert any(p < t for p, t in zip(pulse_series.ys, tuple_series.ys))
