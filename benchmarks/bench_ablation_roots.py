"""Ablation — root-finding strategy for the equation-system solver.

Section III-A names standard root-finding techniques (Newton, Brent) as
options for solving difference rows.  Two A/B comparisons run on the
same batches of difference polynomials:

* **closed-form vs companion eigensolve** on degree-3/4 rows — the
  kernel-ladder experiment, at two granularities.  The *kernel stage*
  comparison times the root-extraction call alone (the
  Cardano/Ferrari kernels of :mod:`repro.core.closed_form` vs the
  stacked ``np.linalg.eigvals`` sweep — the stage the
  ``solver.eigensolve_seconds`` / ``solver.roots_seconds.degree_<d>``
  histograms measure); its median ratio is the recorded ``speedup``.
  The *sweep* comparison times full ``real_roots_rows`` batches with
  ``SOLVER_CONFIG.closed_form`` toggled — the end-to-end view, where
  the shared Newton polish, residual filter and Python row loop dilute
  the kernel win (recorded as ``sweep_speedup_deg<d>`` for context).
  Both paths must agree on the final post-polish/dedupe/pad root lists
  (the ``parity_*`` fields).  Recorded to ``BENCH_roots_kernels.json``
  via the harness so the kernel trajectory is tracked like the other
  benches (this replaced the legacy free-text ``ablation_roots.txt``
  artifact).

* **default ladder vs Brent-only** — the original strategy ablation: a
  sign-change scan over a sample grid with Brent refinement per
  bracket, compared for agreement and cost.
"""

from __future__ import annotations

import statistics
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from harness import record_result  # noqa: E402

from repro.core.batch_solver import (
    SOLVER_CONFIG,
    _stacked_companion_eigvals_impl,
    closed_form_stats,
    real_roots_rows,
)
from repro.core.closed_form import cubic_candidates, quartic_candidates
from repro.core.polynomial import Polynomial
from repro.core.roots import brent, real_roots

DOMAIN = (0.0, 10.0)
GRID = 64
N_POLYS = 300

#: Closed-form A/B shape: rows per batch, timing repeats per path.
KERNEL_BATCH_ROWS = 256
KERNEL_REPEATS = 30


# ----------------------------------------------------------------------
# closed-form vs companion eigensolve (degree 3/4 batches)
# ----------------------------------------------------------------------
def _kernel_rows(degree: int, seed: int) -> list[tuple]:
    """One batch of full-degree rows with roots plausibly in-domain."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(KERNEL_BATCH_ROWS):
        coeffs = rng.normal(0.0, 1.0, degree + 1)
        while coeffs[-1] == 0.0:  # keep the nominal degree
            coeffs[-1] = rng.normal(0.0, 1.0)
        p = Polynomial(coeffs.tolist())
        p = p - p(5.0) + rng.normal(0.0, 0.3)
        rows.append((p.coeffs, *DOMAIN))
    return rows


def _time_rows(rows: list[tuple], closed_form: bool) -> float:
    """Median seconds per full ``real_roots_rows`` sweep of ``rows``."""
    saved = SOLVER_CONFIG.closed_form
    SOLVER_CONFIG.closed_form = closed_form
    try:
        real_roots_rows(rows)  # warm the allocator/ufunc paths
        samples = []
        for _ in range(KERNEL_REPEATS):
            t0 = time.perf_counter()
            real_roots_rows(rows)
            samples.append(time.perf_counter() - t0)
    finally:
        SOLVER_CONFIG.closed_form = saved
    return statistics.median(samples)


def _solve_rows(rows: list[tuple], closed_form: bool) -> list[list[float]]:
    saved = SOLVER_CONFIG.closed_form
    SOLVER_CONFIG.closed_form = closed_form
    try:
        return real_roots_rows(rows)
    finally:
        SOLVER_CONFIG.closed_form = saved


def _time_kernel_stage(rows: list[tuple]) -> tuple[float, float]:
    """Median seconds of the root-extraction stage alone, both paths.

    Times exactly what the per-degree histograms time: the closed-form
    kernel call vs the stacked companion eigensolve, on the descending
    monomial batch the dispatcher would hand either one.
    """
    desc = np.asarray(
        [list(reversed(coeffs)) for coeffs, _, _ in rows], dtype=float
    )
    kernel = cubic_candidates if desc.shape[1] == 4 else quartic_candidates
    desc_lists = [list(r) for r in desc]
    kernel(desc)
    _stacked_companion_eigvals_impl(desc_lists)
    closed_samples = []
    eig_samples = []
    for _ in range(KERNEL_REPEATS):
        t0 = time.perf_counter()
        kernel(desc)
        closed_samples.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        _stacked_companion_eigvals_impl(desc_lists)
        eig_samples.append(time.perf_counter() - t0)
    return statistics.median(closed_samples), statistics.median(eig_samples)


def run_kernel_experiment() -> dict:
    """A/B the closed-form kernels against the eigval path per degree."""
    metrics: dict = {}
    parity_total = 0
    parity_mismatch = 0
    for degree in (3, 4):
        rows = _kernel_rows(degree, seed=100 + degree)
        closed = _solve_rows(rows, closed_form=True)
        eig = _solve_rows(rows, closed_form=False)
        for c_roots, e_roots in zip(closed, eig):
            parity_total += 1
            same = len(c_roots) == len(e_roots) and all(
                abs(c - e) <= 1e-9 * max(1.0, abs(e))
                for c, e in zip(c_roots, e_roots)
            )
            if not same:
                parity_mismatch += 1
        k_closed, k_eig = _time_kernel_stage(rows)
        metrics[f"kernel_closed_form_us_deg{degree}"] = round(
            k_closed * 1e6, 1
        )
        metrics[f"kernel_eigval_us_deg{degree}"] = round(k_eig * 1e6, 1)
        metrics[f"speedup_deg{degree}"] = round(k_eig / k_closed, 2)
        t_closed = _time_rows(rows, closed_form=True)
        t_eig = _time_rows(rows, closed_form=False)
        metrics[f"sweep_closed_form_ms_deg{degree}"] = round(
            t_closed * 1e3, 4
        )
        metrics[f"sweep_eigval_ms_deg{degree}"] = round(t_eig * 1e3, 4)
        metrics[f"sweep_speedup_deg{degree}"] = round(t_eig / t_closed, 2)
        metrics[f"roots_found_deg{degree}"] = sum(len(r) for r in closed)
    metrics["batch_rows"] = KERNEL_BATCH_ROWS
    metrics["timing_repeats"] = KERNEL_REPEATS
    metrics["parity_rows"] = parity_total
    metrics["parity_mismatches"] = parity_mismatch
    # Headline speedup: the root-extraction stage on the weaker of the
    # two degrees (the claim must hold for both, not just on average).
    metrics["speedup"] = min(
        metrics["speedup_deg3"], metrics["speedup_deg4"]
    )
    stats = closed_form_stats()
    metrics["closed_form_rows_total"] = stats["rows"]
    metrics["closed_form_fallback_rows"] = stats["fallback_rows"]
    return metrics


# ----------------------------------------------------------------------
# default ladder vs Brent-only (the original strategy ablation)
# ----------------------------------------------------------------------
def brent_only_roots(poly: Polynomial, lo: float, hi: float) -> list[float]:
    """Pure-Brent alternative: bracket by grid scan, refine with Brent."""
    ts = np.linspace(lo, hi, GRID)
    values = poly(ts)
    roots: list[float] = []
    for i in range(GRID - 1):
        a, b = float(values[i]), float(values[i + 1])
        if a == 0.0:
            roots.append(float(ts[i]))
        elif a * b < 0.0:
            roots.append(brent(poly, float(ts[i]), float(ts[i + 1])))
    if values[-1] == 0.0:
        roots.append(float(ts[-1]))
    return roots


def _random_polys(seed: int = 52) -> list[Polynomial]:
    rng = np.random.default_rng(seed)
    polys = []
    for _ in range(N_POLYS):
        degree = int(rng.integers(1, 5))
        coeffs = rng.normal(0.0, 1.0, degree + 1)
        # Center so roots plausibly land in the domain.
        p = Polynomial(coeffs.tolist())
        shift = p(5.0)
        polys.append(p - shift + rng.normal(0.0, 0.3))
    return polys


def run_experiment():
    polys = _random_polys()
    lo, hi = DOMAIN

    start = time.perf_counter()
    default_roots = [real_roots(p, lo, hi) for p in polys]
    default_time = time.perf_counter() - start

    start = time.perf_counter()
    brent_roots_list = [brent_only_roots(p, lo, hi) for p in polys]
    brent_time = time.perf_counter() - start

    # Agreement: every Brent-found root must be matched by the default
    # solver (the grid scan may miss closely spaced root pairs, so the
    # comparison is one-directional).
    matched = 0
    total = 0
    for droots, broots in zip(default_roots, brent_roots_list):
        for r in broots:
            total += 1
            if any(abs(r - d) < 1e-6 * max(1.0, abs(r)) for d in droots):
                matched += 1
    r = {
        "default_seconds": default_time,
        "brent_seconds": brent_time,
        "brent_roots_total": total,
        "brent_roots_matched": matched,
        "default_roots_total": sum(len(r) for r in default_roots),
    }
    r.update(run_kernel_experiment())
    return r


def test_ablation_root_finders(benchmark, report):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(
        "roots_kernels",
        (
            f"default (analytic+companion): {r['default_seconds']*1e3:.1f} ms, "
            f"{r['default_roots_total']} roots\n"
            f"brent-only (grid scan):       {r['brent_seconds']*1e3:.1f} ms, "
            f"{r['brent_roots_total']} roots, "
            f"{r['brent_roots_matched']} matched by default\n"
            f"kernel stage (n={r['batch_rows']}): "
            f"deg3 {r['kernel_closed_form_us_deg3']:.0f} vs "
            f"{r['kernel_eigval_us_deg3']:.0f} us "
            f"({r['speedup_deg3']:.1f}x), "
            f"deg4 {r['kernel_closed_form_us_deg4']:.0f} vs "
            f"{r['kernel_eigval_us_deg4']:.0f} us "
            f"({r['speedup_deg4']:.1f}x)\n"
            f"full sweep: deg3 {r['sweep_closed_form_ms_deg3']:.2f} vs "
            f"{r['sweep_eigval_ms_deg3']:.2f} ms "
            f"({r['sweep_speedup_deg3']:.1f}x), "
            f"deg4 {r['sweep_closed_form_ms_deg4']:.2f} vs "
            f"{r['sweep_eigval_ms_deg4']:.2f} ms "
            f"({r['sweep_speedup_deg4']:.1f}x), "
            f"{r['parity_mismatches']}/{r['parity_rows']} "
            f"parity mismatches"
        ),
    )
    benchmark.extra_info.update(r)
    record_result("roots_kernels", r)

    # Every root the scan finds, the default solver finds too.
    assert r["brent_roots_matched"] == r["brent_roots_total"]
    # The default solver finds at least as many roots (grid scans miss
    # close pairs and tangential roots).
    assert r["default_roots_total"] >= r["brent_roots_total"]
    assert r["default_roots_total"] > 0
    # The closed-form ladder: bit-level post-processing parity with the
    # eigval path, and the recorded median speedup clears 3x on both
    # degree buckets.
    assert r["parity_mismatches"] == 0
    assert r["speedup"] >= 3.0, (
        f"closed-form speedup {r['speedup']}x below the 3x floor"
    )
