"""Ablation — root-finding strategy for the equation-system solver.

Section III-A names standard root-finding techniques (Newton, Brent) as
options for solving difference rows.  The library's default combines
closed forms (degree <= 2) with companion-matrix eigenvalues plus a
Newton polish; this ablation compares it against a Brent-only strategy
(sign-change scan over a sample grid, Brent refinement per bracket) on
the same batch of difference polynomials — agreement on the roots, and
the cost difference, are the measurements.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.polynomial import Polynomial
from repro.core.roots import brent, real_roots

DOMAIN = (0.0, 10.0)
GRID = 64
N_POLYS = 300


def brent_only_roots(poly: Polynomial, lo: float, hi: float) -> list[float]:
    """Pure-Brent alternative: bracket by grid scan, refine with Brent."""
    ts = np.linspace(lo, hi, GRID)
    values = poly(ts)
    roots: list[float] = []
    for i in range(GRID - 1):
        a, b = float(values[i]), float(values[i + 1])
        if a == 0.0:
            roots.append(float(ts[i]))
        elif a * b < 0.0:
            roots.append(brent(poly, float(ts[i]), float(ts[i + 1])))
    if values[-1] == 0.0:
        roots.append(float(ts[-1]))
    return roots


def _random_polys(seed: int = 52) -> list[Polynomial]:
    rng = np.random.default_rng(seed)
    polys = []
    for _ in range(N_POLYS):
        degree = int(rng.integers(1, 5))
        coeffs = rng.normal(0.0, 1.0, degree + 1)
        # Center so roots plausibly land in the domain.
        p = Polynomial(coeffs.tolist())
        shift = p(5.0)
        polys.append(p - shift + rng.normal(0.0, 0.3))
    return polys


def run_experiment():
    polys = _random_polys()
    lo, hi = DOMAIN

    start = time.perf_counter()
    default_roots = [real_roots(p, lo, hi) for p in polys]
    default_time = time.perf_counter() - start

    start = time.perf_counter()
    brent_roots_list = [brent_only_roots(p, lo, hi) for p in polys]
    brent_time = time.perf_counter() - start

    # Agreement: every Brent-found root must be matched by the default
    # solver (the grid scan may miss closely spaced root pairs, so the
    # comparison is one-directional).
    matched = 0
    total = 0
    for droots, broots in zip(default_roots, brent_roots_list):
        for r in broots:
            total += 1
            if any(abs(r - d) < 1e-6 * max(1.0, abs(r)) for d in droots):
                matched += 1
    return {
        "default_seconds": default_time,
        "brent_seconds": brent_time,
        "brent_roots_total": total,
        "brent_roots_matched": matched,
        "default_roots_total": sum(len(r) for r in default_roots),
    }


def test_ablation_root_finders(benchmark, report):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(
        "ablation_roots",
        (
            f"default (analytic+companion): {r['default_seconds']*1e3:.1f} ms, "
            f"{r['default_roots_total']} roots\n"
            f"brent-only (grid scan):       {r['brent_seconds']*1e3:.1f} ms, "
            f"{r['brent_roots_total']} roots, "
            f"{r['brent_roots_matched']} matched by default"
        ),
    )
    benchmark.extra_info.update(r)

    # Every root the scan finds, the default solver finds too.
    assert r["brent_roots_matched"] == r["brent_roots_total"]
    # The default solver finds at least as many roots (grid scans miss
    # close pairs and tangential roots).
    assert r["default_roots_total"] >= r["brent_roots_total"]
    assert r["default_roots_total"] > 0
