"""Ablation — equi-split vs gradient split (Section IV-C).

Both heuristics are conservative, but gradient split apportions more of
the output error budget to the input model that moves fastest — the one
whose tuples deviate most.  On a workload with one fast and one slow
input, gradient split should therefore produce *fewer* validation
violations (better bound longevity) for the same output bound.
"""

from __future__ import annotations

import numpy as np

from repro.core.polynomial import Polynomial
from repro.core.validation import SplitInput, equi_split, gradient_split

FAST_SLOPE = 9.0
SLOW_SLOPE = 1.0
OUTPUT_BOUND = 2.0
N_SAMPLES = 20_000


def run_experiment(seed: int = 51):
    rng = np.random.default_rng(seed)
    inputs = [
        SplitInput(("fast",), "x", Polynomial([0.0, FAST_SLOPE]), 0.0, 10.0),
        SplitInput(("slow",), "x", Polynomial([0.0, SLOW_SLOPE]), 0.0, 10.0),
    ]
    # Observed deviations scale with each signal's rate of change (a
    # fixed sampling interval turns slope into deviation magnitude).
    dev_fast = rng.normal(0.0, 0.12 * FAST_SLOPE, N_SAMPLES)
    dev_slow = rng.normal(0.0, 0.12 * SLOW_SLOPE, N_SAMPLES)

    results = {}
    for name, splitter in (("equi", equi_split), ("gradient", gradient_split)):
        shares = {
            s.key: s
            for s in splitter(("o",), (-OUTPUT_BOUND, OUTPUT_BOUND), inputs)
        }
        fast_hi = shares[("fast",)].hi
        slow_hi = shares[("slow",)].hi
        violations = int(np.sum(np.abs(dev_fast) > fast_hi)) + int(
            np.sum(np.abs(dev_slow) > slow_hi)
        )
        results[name] = {
            "fast_share": fast_hi,
            "slow_share": slow_hi,
            "violations": violations,
        }
    return results


def test_ablation_split_heuristics(benchmark, report):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    lines = [
        f"{name:>8}: fast share ±{r['fast_share']:.3f}, "
        f"slow share ±{r['slow_share']:.3f}, violations {r['violations']}"
        for name, r in results.items()
    ]
    report("ablation_split", "\n".join(lines))
    benchmark.extra_info["results"] = results

    # Both heuristics are conservative: shares never exceed the bound.
    for r in results.values():
        assert r["fast_share"] + r["slow_share"] <= OUTPUT_BOUND + 1e-9
    # Gradient gives the fast mover the larger share...
    assert results["gradient"]["fast_share"] > results["equi"]["fast_share"]
    # ...and that cuts validation violations substantially.
    assert results["gradient"]["violations"] < 0.7 * results["equi"]["violations"]
