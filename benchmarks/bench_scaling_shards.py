"""Shard-scaling benchmark: serial vs key-sharded continuous runtime.

A 4-key filter+join trace (256 rows per key, degree-3 models with
densely overlapping long segments) runs once through the serial
runtime (``num_shards=1``, direct per-segment solves) and once per
requested shard count through the sharded runtime (coefficient-batched
solve dispatch plus round-level task prefill, ``parallel="auto"``).
The run asserts bit-exact output parity and identical
``equation_system`` counter totals (``row_solves`` counts every row
solved regardless of which cache layer answered it) between every
configuration before it reports any timing, so a recorded speedup can
never come from divergent work.

Timing is best-of-N (default 3) per configuration.  Results land in
``benchmarks/results/BENCH_scaling_shards.json`` via the harness and in
``scaling_shards.txt`` via the ``report`` fixture when run under
pytest.

Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_scaling_shards.py \
        --rows 64 --shards 1,2

``REPRO_BENCH_SMOKE=1`` shrinks the trace and skips the speedup floor
(parity is always enforced).
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from harness import record_result  # noqa: E402

from repro.core.polynomial import Polynomial
from repro.core.segment import Segment
from repro.core.solve_cache import (
    reset_global_solve_cache,
    reset_worker_root_cache,
)
from repro.core.transform import to_continuous_plan
from repro.engine.metrics import counter_snapshot, reset_counters
from repro.engine.scheduler import QueryRuntime
from repro.query import parse_query, plan_query

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

KEYS = ("aapl", "ibm", "msft", "goog")
#: Modeled comparison lives in the ON clause: the join primes its own
#: root queries, while a WHERE would compile to a filter above it.
JOIN_SQL = (
    "select from ticks T join quotes Q "
    "on (T.sym = Q.sym and T.x > Q.y)"
)
FILT_SQL = "select * from ticks where x > 1"
#: Low degree + dense overlap is the regime batching rewards most: the
#: per-call numpy/python overhead the stacked eigensolve amortizes is
#: constant, so it dominates when each individual solve is cheap and
#: each round predicts many of them.
DEG = 3
BATCH_SIZE = 256
SEED = 11
ROWS = 32 if SMOKE else 256
SHARDS = (1, 2) if SMOKE else (1, 2, 4)
ROUNDS = 1 if SMOKE else 3
#: Acceptance floor at max shards (full-size runs only).
SPEEDUP_FLOOR = 1.7


def make_trace(rows_per_key: int, seed: int = SEED):
    """Per-key piecewise trace on two streams with same-key updates."""
    rng = random.Random(seed)
    events = []
    t = {k: 0.0 for k in KEYS}
    for _ in range(rows_per_key):
        for k in KEYS:
            start = t[k]
            dur = rng.uniform(2.0, 4.0)
            c1 = [rng.uniform(-2, 2) for _ in range(DEG + 1)]
            c2 = [rng.uniform(-2, 2) for _ in range(DEG + 1)]
            events.append(
                ("ticks", Segment((k,), start, start + dur,
                                  {"x": Polynomial(c1)},
                                  constants={"sym": k}))
            )
            events.append(
                ("quotes", Segment((k,), start, start + dur,
                                   {"y": Polynomial(c2)},
                                   constants={"sym": k}))
            )
            # Short advance vs long duration: each new segment
            # overlaps several predecessors, exercising update
            # semantics and multiplying join pairs per event.
            t[k] = start + rng.uniform(0.3, 0.6)
    return events


def run_once(num_shards: int, events):
    """One full trace through a fresh runtime; returns timing + state."""
    reset_global_solve_cache()
    reset_worker_root_cache()
    reset_counters()
    rt = QueryRuntime(num_shards=num_shards, batch_size=BATCH_SIZE)
    try:
        rt.register(
            "filt", to_continuous_plan(plan_query(parse_query(FILT_SQL)))
        )
        rt.register(
            "join", to_continuous_plan(plan_query(parse_query(JOIN_SQL)))
        )
        t0 = time.perf_counter()
        for stream, seg in events:
            rt.enqueue(stream, seg)
        rt.run_until_idle()
        elapsed = time.perf_counter() - t0
        outputs = {
            name: [(s.key, s.t_start, s.t_end) for s in rt.outputs(name)]
            for name in rt.query_names
        }
        # row_solves counts every row solved, independent of whether
        # the prefill sweep or the per-arrival path answered it — it
        # must match exactly across shard counts.  (solve_cache
        # hit/miss splits legitimately differ: prefill shifts misses
        # into the priming sweep.)
        counters = counter_snapshot("equation_system")
        stats = rt.parallel_stats()
    finally:
        rt.close()
    return elapsed, outputs, counters, stats


def run_experiment(
    rows: int = ROWS,
    shards: tuple[int, ...] = SHARDS,
    rounds: int = ROUNDS,
) -> dict:
    events = make_trace(rows)
    baseline_outputs = None
    baseline_counters = None
    results = {}
    for n in shards:
        best = float("inf")
        stats = {}
        for _ in range(rounds):
            elapsed, outputs, counters, stats = run_once(n, events)
            best = min(best, elapsed)
            if baseline_outputs is None:
                baseline_outputs = outputs
                baseline_counters = counters
            else:
                assert outputs == baseline_outputs, (
                    f"{n}-shard outputs diverge from serial"
                )
                assert counters == baseline_counters, (
                    f"{n}-shard equation_system counters diverge "
                    f"from serial: {counters} != {baseline_counters}"
                )
        results[n] = {"wall_time_s": best, "parallel_stats": stats}

    serial = results[shards[0]]["wall_time_s"]
    n_events = len(events)
    metrics = {
        "rows_per_key": rows,
        "keys": len(KEYS),
        "events": n_events,
        "degree": DEG,
        "batch_size": BATCH_SIZE,
        "rounds_best_of": rounds,
        "output_segments": sum(
            len(v) for v in (baseline_outputs or {}).values()
        ),
        "parity": True,  # asserted above for every configuration
        "smoke": SMOKE,
    }
    for n, r in results.items():
        metrics[f"wall_time_s_shards_{n}"] = round(r["wall_time_s"], 4)
        metrics[f"speedup_shards_{n}"] = round(
            serial / r["wall_time_s"], 3
        )
        metrics[f"throughput_shards_{n}"] = round(
            n_events / r["wall_time_s"], 1
        )
    top = max(shards)
    metrics["wall_time_s"] = round(results[top]["wall_time_s"], 4)
    metrics["speedup"] = metrics[f"speedup_shards_{top}"]
    metrics["throughput_items_per_s"] = metrics[
        f"throughput_shards_{top}"
    ]
    metrics["max_shards"] = top
    metrics["rows_dispatched"] = results[top]["parallel_stats"].get(
        "rows_dispatched", 0
    )
    return metrics


def test_scaling_shards(benchmark, report):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    lines = [
        f"trace: {r['events']} events, {r['keys']} keys x "
        f"{r['rows_per_key']} rows, degree {r['degree']}",
        f"output segments: {r['output_segments']} (bit-exact across "
        f"all shard counts)",
    ]
    for n in sorted(
        int(k.rsplit("_", 1)[1])
        for k in r
        if k.startswith("speedup_shards_")
    ):
        lines.append(
            f"shards={n}: {r[f'wall_time_s_shards_{n}']:.3f}s "
            f"({r[f'speedup_shards_{n}']:.2f}x, "
            f"{r[f'throughput_shards_{n}']:,.0f} ev/s)"
        )
    report("scaling_shards", "\n".join(lines))
    benchmark.extra_info.update(r)
    record_result("scaling_shards", r)
    assert r["parity"]
    if not SMOKE:
        assert r["speedup"] >= SPEEDUP_FLOOR, (
            f"speedup {r['speedup']:.2f}x at {r['max_shards']} shards "
            f"below {SPEEDUP_FLOOR}x floor"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=ROWS,
                        help="rows per key")
    parser.add_argument("--shards", default=",".join(map(str, SHARDS)),
                        help="comma-separated shard counts; first is "
                        "the serial baseline")
    parser.add_argument("--rounds", type=int, default=ROUNDS,
                        help="best-of-N timing rounds")
    args = parser.parse_args(argv)
    shards = tuple(int(s) for s in args.shards.split(","))
    r = run_experiment(rows=args.rows, shards=shards,
                       rounds=args.rounds)
    path = record_result("scaling_shards", r)
    for n in shards:
        print(
            f"shards={n}: {r[f'wall_time_s_shards_{n}']:.3f}s "
            f"({r[f'speedup_shards_{n}']:.2f}x, "
            f"{r[f'throughput_shards_{n}']:,.0f} ev/s)"
        )
    print(f"parity: {r['parity']}  recorded: {path}")
    if not SMOKE and max(shards) >= 4 and r["speedup"] < SPEEDUP_FLOOR:
        print(f"FAIL: speedup below {SPEEDUP_FLOOR}x floor")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
