"""Shard-scaling benchmark: serial vs key-sharded continuous runtime.

A 4-key filter+join trace (256 rows per key, degree-3 models with
densely overlapping long segments) runs once through the serial
runtime (``num_shards=1``, direct per-segment solves) and once per
requested shard count through the sharded runtime (coefficient-batched
solve dispatch plus round-level task prefill, ``parallel="auto"``).
The run asserts bit-exact output parity and identical
``equation_system`` counter totals (``row_solves`` counts every row
solved regardless of which cache layer answered it) between every
configuration before it reports any timing, so a recorded speedup can
never come from divergent work.

Timing is best-of-N (default 3) per configuration.  Results land in
``benchmarks/results/BENCH_scaling_shards.json`` via the harness and in
``scaling_shards.txt`` via the ``report`` fixture when run under
pytest.

Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_scaling_shards.py \
        --rows 64 --shards 1,2

``REPRO_BENCH_SMOKE=1`` shrinks the trace and skips the speedup floor
(parity is always enforced).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from harness import record_result  # noqa: E402

from repro.core.polynomial import Polynomial
from repro.core.segment import Segment
from repro.core.solve_cache import (
    reset_global_solve_cache,
    reset_worker_root_cache,
)
from repro.core.transform import to_continuous_plan
from repro.engine import tracing
from repro.engine.metrics import counter_snapshot, reset_counters
from repro.engine.scheduler import QueryRuntime
from repro.query import parse_query, plan_query

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

KEYS = ("aapl", "ibm", "msft", "goog")
#: Modeled comparison lives in the ON clause: the join primes its own
#: root queries, while a WHERE would compile to a filter above it.
JOIN_SQL = (
    "select from ticks T join quotes Q "
    "on (T.sym = Q.sym and T.x > Q.y)"
)
FILT_SQL = "select * from ticks where x > 1"
#: Low degree + dense overlap is the regime batching rewards most: the
#: per-call numpy/python overhead the stacked eigensolve amortizes is
#: constant, so it dominates when each individual solve is cheap and
#: each round predicts many of them.
DEG = 3
BATCH_SIZE = 256
SEED = 11
ROWS = 32 if SMOKE else 256
SHARDS = (1, 2) if SMOKE else (1, 2, 4)
ROUNDS = 1 if SMOKE else 3
#: Acceptance floor at max shards (full-size runs only).
SPEEDUP_FLOOR = 1.7
#: Ceiling on the throughput cost of metrics+tracing, as a fraction of
#: the disabled run (asserted in smoke mode — the observability
#: acceptance criterion).
OVERHEAD_CEILING = 0.05
#: Rounds for the overhead estimation (off / 1x / amplified runs are
#: interleaved; medians taken per bucket).  Always multiple rounds,
#: even in smoke mode, where the assert runs.
OVERHEAD_ROUNDS = 5
#: Amplification factor: each span hook fires this many times per call
#: site (extra cycles around empty bodies), so the per-run hook cost is
#: ``(T_amp - T_1x) / (OVERHEAD_AMP - 1)`` — a difference taken between
#: two runs that both carry the full workload, immune to the 10-20%
#: run-to-run regime noise that makes a raw on/off A/B unreadable at
#: the 5% level.  High amplification keeps the measured difference an
#: order of magnitude above that noise even on the small smoke trace;
#: hooks cost ~1 µs each, so even 20 extra firings stay cheap.
OVERHEAD_AMP = 21


#: Arrivals per key between genuine model refits.  Pulse's fitter
#: re-confirms an unchanged model on most arrivals (Section II-A): a
#: tuple that validates against the live model re-emits the same
#: coefficients over an advanced window rather than fitting fresh ones.
#: Persisting coefficients across REFIT_EVERY arrivals reproduces that
#: regime — and is what gives content-addressed reuse (the solve cache
#: in the default path, the solution stores on the incremental path)
#: real repetition to work with, as in any deployed trace.
REFIT_EVERY = 4


def make_trace(rows_per_key: int, seed: int = SEED):
    """Per-key piecewise trace on two streams with same-key updates.

    Model coefficients persist for :data:`REFIT_EVERY` consecutive
    arrivals per key (re-emissions over advancing windows), then refit.
    """
    rng = random.Random(seed)
    events = []
    t = {k: 0.0 for k in KEYS}
    coeffs: dict[str, tuple[list, list]] = {}
    for i in range(rows_per_key):
        for k in KEYS:
            start = t[k]
            dur = rng.uniform(2.0, 4.0)
            if i % REFIT_EVERY == 0 or k not in coeffs:
                coeffs[k] = (
                    [rng.uniform(-2, 2) for _ in range(DEG + 1)],
                    [rng.uniform(-2, 2) for _ in range(DEG + 1)],
                )
            c1, c2 = coeffs[k]
            events.append(
                ("ticks", Segment((k,), start, start + dur,
                                  {"x": Polynomial(c1)},
                                  constants={"sym": k}))
            )
            events.append(
                ("quotes", Segment((k,), start, start + dur,
                                   {"y": Polynomial(c2)},
                                   constants={"sym": k}))
            )
            # Short advance vs long duration: each new segment
            # overlaps several predecessors, exercising update
            # semantics and multiplying join pairs per event.
            t[k] = start + rng.uniform(0.3, 0.6)
    return events


def run_once(num_shards: int, events):
    """One full trace through a fresh runtime; returns timing + state."""
    reset_global_solve_cache()
    reset_worker_root_cache()
    reset_counters()
    rt = QueryRuntime(num_shards=num_shards, batch_size=BATCH_SIZE)
    try:
        rt.register(
            "filt", to_continuous_plan(plan_query(parse_query(FILT_SQL)))
        )
        rt.register(
            "join", to_continuous_plan(plan_query(parse_query(JOIN_SQL)))
        )
        t0 = time.perf_counter()
        for stream, seg in events:
            rt.enqueue(stream, seg)
        rt.run_until_idle()
        elapsed = time.perf_counter() - t0
        outputs = {
            name: [(s.key, s.t_start, s.t_end) for s in rt.outputs(name)]
            for name in rt.query_names
        }
        # row_solves counts every row solved, independent of whether
        # the prefill sweep or the per-arrival path answered it — it
        # must match exactly across shard counts.  (solve_cache
        # hit/miss splits legitimately differ: prefill shifts misses
        # into the priming sweep.)
        counters = counter_snapshot("equation_system")
        stats = rt.parallel_stats()
    finally:
        rt.close()
    return elapsed, outputs, counters, stats


def _amplified(hook, k: int):
    """Wrap a span hook to run ``k-1`` extra empty open/close cycles.

    The extra cycles execute the full instrumentation path (clock
    reads, span bookkeeping, histogram plumbing) around an empty body,
    so running a trace with amplified hooks inflates *only* the
    instrumentation cost — the slope against the 1x run isolates that
    cost from workload time.  The real cycle still wraps the actual
    work, so outputs are unchanged (asserted by the caller).
    """
    if hook is None:
        return None

    def wrapped(*args):
        for _ in range(k - 1):
            with hook(*args):
                pass
        return hook(*args)

    return wrapped


def _install_amplified_hooks(k: int) -> None:
    """Re-install the currently enabled span hooks at ``k``x volume."""
    from repro.core import batch_solver, equation_system, plan

    solve_span, roots_span, eigen_observer, degree_observer = (
        batch_solver.solver_instrumentation()
    )
    batch_solver.set_solver_instrumentation(
        solve_span=_amplified(solve_span, k),
        roots_span=_amplified(roots_span, k),
        eigen_observer=eigen_observer,
        degree_observer=degree_observer,
    )
    system_span, batch_span = equation_system.system_instrumentation()
    equation_system.set_system_instrumentation(
        system_span=_amplified(system_span, k),
        batch_span=_amplified(batch_span, k),
    )
    plan.set_operator_trace(_amplified(plan.operator_trace(), k))


def _scheduler_span_cost(trace_records: list) -> tuple[int, float]:
    """(count, seconds) of the run's scheduler-side span operations.

    Arrival/round/prime spans and emit/watchdog events are issued by
    the scheduler through ``Tracer.start``/``finish``/``event`` (not
    the amplified core hooks), so their cost is priced by replaying the
    same number of identical operations against a throwaway tracer.
    Tight-loop timing is cache-warm, slightly flattering — but this
    term is the small addend on top of the amplification slope, which
    covers the dominant per-solve sites in situ.
    """
    starts = sum(
        1 for r in trace_records
        if r["kind"] in ("arrival", "round", "prime")
    )
    events_n = sum(
        1 for r in trace_records
        if r["kind"] in ("emit", "watchdog", "cache")
    )
    count = starts + events_n
    if count == 0:
        return 0, 0.0
    tracer = tracing.Tracer([], buffer_limit=10 ** 9)
    reps = 3
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        for _ in range(starts):
            s = tracer.start(
                "arrival", "arrival", query="q", stream="s", key=("k",)
            )
            tracer.finish(s, outputs=1)
        for _ in range(events_n):
            tracer.event("emit", "emit", outputs=1)
        best = min(best, time.perf_counter() - t0)
        tracer._pending.clear()
    return count, best


def measure_observability_overhead(
    events, rounds: int = OVERHEAD_ROUNDS, amp: int = OVERHEAD_AMP
) -> dict:
    """Marginal cost of metrics+tracing on the serial hot path.

    A naive enabled-vs-disabled wall-clock comparison cannot resolve a
    5% budget here: back-to-back identical runs on a shared box differ
    by 10-20% (frequency/regime noise), so the A/B difference is noise
    almost regardless of round count.  Instead the instrumentation cost
    is measured as a *slope*: the per-solve span hooks are re-installed
    wrapped so each fires ``amp``x (extra cycles around empty bodies),
    and ``(T_amp - T_1x) / (amp - 1)`` isolates the per-run cost of one
    full set of hook firings — a signal several times larger than one
    run's instrumentation cost, differenced between runs that both
    carry the workload.  Scheduler-side spans (arrival/round/emit,
    issued directly on the tracer) are priced by replaying the same
    operation counts against a throwaway tracer and added on.  Raw
    enabled/disabled medians are also recorded, as context only.

    Every enabled run writes a real trace JSONL (full span volume, not
    a null sink) and asserts output parity against the disabled
    baseline — instrumentation that changed results would be worse
    than any slowdown.  Deferred-serialization cost (spans are JSON-
    encoded at flush, off the processing path) is reported separately
    as ``observability_serialize_s``.
    """
    import statistics
    import tempfile

    t_off: list[float] = []
    t_on: list[float] = []
    t_amp: list[float] = []
    baseline = None
    trace_records: list = []
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "trace.jsonl"
        for _ in range(rounds):
            elapsed_off, outputs_off, _, _ = run_once(1, events)
            t_off.append(elapsed_off)
            if baseline is None:
                baseline = outputs_off

            # Amp first, 1x second: the file left behind (read below)
            # is then a real single-fire trace, not an amplified one.
            for amplify, bucket in ((amp, t_amp), (1, t_on)):
                tracer = tracing.enable_observability(str(trace_path))
                # A real 1x trace fits the tracer's buffer, so a real
                # run never serializes inside the timed window — but
                # the amplified span volume would overflow it and bill
                # drain-time JSON encoding to the slope.  Lift the
                # limit so both runs defer serialization to close(),
                # keeping the slope a pure hook-firing cost.
                tracer._buffer_limit = 1 << 30
                if amplify > 1:
                    _install_amplified_hooks(amplify)
                try:
                    elapsed, outputs, _, _ = run_once(1, events)
                finally:
                    tracing.disable_observability()
                bucket.append(elapsed)
                assert outputs == baseline, (
                    "observability changed query outputs"
                )
        trace_records = [
            s.to_record() for s in tracing.read_trace(trace_path)
        ]

        # One final clean enabled run so the process registry (and the
        # harness's recorded ``metrics_snapshot``) reflects real
        # instrumentation volume, not the amplified runs above.
        tracing.enable_observability(str(trace_path))
        try:
            _, outputs_clean, _, _ = run_once(1, events)
        finally:
            tracing.disable_observability()
        assert outputs_clean == baseline

    med_off = statistics.median(t_off)
    med_on = statistics.median(t_on)
    med_amp = statistics.median(t_amp)
    hook_cost = max(0.0, (med_amp - med_on) / (amp - 1))
    sched_count, sched_cost = _scheduler_span_cost(trace_records)
    overhead = (hook_cost + sched_cost) / med_off

    t0 = time.perf_counter()
    payload = "".join(
        json.dumps(rec, separators=(",", ":")) + "\n"
        for rec in trace_records
    )
    serialize_s = time.perf_counter() - t0
    assert payload  # the trace is real, not an empty sink

    return {
        "observability_overhead_frac": round(overhead, 4),
        "observability_hook_cost_s": round(hook_cost, 5),
        "observability_sched_cost_s": round(sched_cost, 5),
        "observability_sched_spans": sched_count,
        "observability_spans": len(trace_records),
        "observability_serialize_s": round(serialize_s, 5),
        "observability_wall_time_off_s": round(med_off, 4),
        "observability_wall_time_on_s": round(med_on, 4),
        "observability_amp_factor": amp,
    }


def run_experiment(
    rows: int = ROWS,
    shards: tuple[int, ...] = SHARDS,
    rounds: int = ROUNDS,
) -> dict:
    events = make_trace(rows)
    baseline_outputs = None
    baseline_counters = None
    results = {}
    for n in shards:
        best = float("inf")
        stats = {}
        for _ in range(rounds):
            elapsed, outputs, counters, stats = run_once(n, events)
            best = min(best, elapsed)
            if baseline_outputs is None:
                baseline_outputs = outputs
                baseline_counters = counters
            else:
                assert outputs == baseline_outputs, (
                    f"{n}-shard outputs diverge from serial"
                )
                assert counters == baseline_counters, (
                    f"{n}-shard equation_system counters diverge "
                    f"from serial: {counters} != {baseline_counters}"
                )
        results[n] = {"wall_time_s": best, "parallel_stats": stats}

    serial = results[shards[0]]["wall_time_s"]
    n_events = len(events)
    metrics = {
        "rows_per_key": rows,
        "keys": len(KEYS),
        "events": n_events,
        "degree": DEG,
        "batch_size": BATCH_SIZE,
        "rounds_best_of": rounds,
        "output_segments": sum(
            len(v) for v in (baseline_outputs or {}).values()
        ),
        "parity": True,  # asserted above for every configuration
        "smoke": SMOKE,
    }
    for n, r in results.items():
        metrics[f"wall_time_s_shards_{n}"] = round(r["wall_time_s"], 4)
        metrics[f"speedup_shards_{n}"] = round(
            serial / r["wall_time_s"], 3
        )
        metrics[f"throughput_shards_{n}"] = round(
            n_events / r["wall_time_s"], 1
        )
    top = max(shards)
    metrics["wall_time_s"] = round(results[top]["wall_time_s"], 4)
    metrics["speedup"] = metrics[f"speedup_shards_{top}"]
    metrics["throughput_items_per_s"] = metrics[
        f"throughput_shards_{top}"
    ]
    metrics["max_shards"] = top
    top_stats = results[top]["parallel_stats"]
    metrics["rows_dispatched"] = top_stats.get("rows_dispatched", 0)
    # Honesty fields for the harness: did the top-shard run actually
    # execute on process-parallel workers, and over which transport?
    # ``parallel_effective`` in the recorded JSON derives from these —
    # a 1-core host reports false, so caching/batch-amortization
    # speedups can't be misread as parallel scaling.
    metrics["parallel_used"] = bool(top_stats.get("parallel", False)) and (
        len(top_stats.get("inline_shards", [])) < top
    )
    metrics["transport"] = top_stats.get("transport", "pickle")
    metrics["shm_rounds"] = top_stats.get("shm_rounds", 0)
    metrics["shm_bytes_shipped"] = top_stats.get("shm_bytes_shipped", 0)
    metrics.update(measure_observability_overhead(events))
    return metrics


def test_scaling_shards(benchmark, report):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    lines = [
        f"trace: {r['events']} events, {r['keys']} keys x "
        f"{r['rows_per_key']} rows, degree {r['degree']}",
        f"output segments: {r['output_segments']} (bit-exact across "
        f"all shard counts)",
    ]
    for n in sorted(
        int(k.rsplit("_", 1)[1])
        for k in r
        if k.startswith("speedup_shards_")
    ):
        lines.append(
            f"shards={n}: {r[f'wall_time_s_shards_{n}']:.3f}s "
            f"({r[f'speedup_shards_{n}']:.2f}x, "
            f"{r[f'throughput_shards_{n}']:,.0f} ev/s)"
        )
    lines.append(
        f"observability overhead (serial, metrics+tracing on vs off): "
        f"{r['observability_overhead_frac'] * 100:.1f}%"
    )
    report("scaling_shards", "\n".join(lines))
    benchmark.extra_info.update(r)
    record_result("scaling_shards", r)
    assert r["parity"]
    assert r["observability_overhead_frac"] < OVERHEAD_CEILING, (
        f"metrics+tracing cost "
        f"{r['observability_overhead_frac'] * 100:.1f}% of serial "
        f"throughput, over the {OVERHEAD_CEILING * 100:.0f}% budget"
    )
    if not SMOKE:
        assert r["speedup"] >= SPEEDUP_FLOOR, (
            f"speedup {r['speedup']:.2f}x at {r['max_shards']} shards "
            f"below {SPEEDUP_FLOOR}x floor"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=ROWS,
                        help="rows per key")
    parser.add_argument("--shards", default=",".join(map(str, SHARDS)),
                        help="comma-separated shard counts; first is "
                        "the serial baseline")
    parser.add_argument("--rounds", type=int, default=ROUNDS,
                        help="best-of-N timing rounds")
    args = parser.parse_args(argv)
    shards = tuple(int(s) for s in args.shards.split(","))
    r = run_experiment(rows=args.rows, shards=shards,
                       rounds=args.rounds)
    path = record_result("scaling_shards", r)
    for n in shards:
        print(
            f"shards={n}: {r[f'wall_time_s_shards_{n}']:.3f}s "
            f"({r[f'speedup_shards_{n}']:.2f}x, "
            f"{r[f'throughput_shards_{n}']:,.0f} ev/s)"
        )
    print(
        f"observability overhead: "
        f"{r['observability_overhead_frac'] * 100:.1f}%"
    )
    print(f"parity: {r['parity']}  recorded: {path}")
    if not SMOKE and max(shards) >= 4 and r["speedup"] < SPEEDUP_FLOOR:
        print(f"FAIL: speedup below {SPEEDUP_FLOOR}x floor")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
