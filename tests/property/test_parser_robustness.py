"""Property-based robustness tests for the query language front end.

The contract: whatever bytes arrive, the lexer/parser either produce an
AST or raise :class:`QuerySyntaxError` — never an arbitrary exception.
Additionally, queries generated *from* the grammar always parse.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.core.errors import QuerySyntaxError
from repro.query import parse_query
from repro.query.ast_nodes import SelectStmt
from repro.query.lexer import tokenize


@given(st.text(max_size=200))
@settings(max_examples=300)
def test_arbitrary_text_never_crashes(text):
    try:
        stmt = parse_query(text)
    except QuerySyntaxError:
        return
    assert isinstance(stmt, SelectStmt)


@given(st.text(alphabet=string.printable, max_size=200))
@settings(max_examples=300)
def test_printable_garbage_never_crashes(text):
    try:
        parse_query(text)
    except QuerySyntaxError:
        pass


@given(st.text(alphabet=string.printable, max_size=100))
def test_lexer_total(text):
    try:
        tokens = tokenize(text)
    except QuerySyntaxError:
        return
    assert tokens[-1].kind == "EOF"


# ----------------------------------------------------------------------
# Grammar-directed generation: well-formed queries always parse.
# ----------------------------------------------------------------------
_ident = st.sampled_from(["s", "trades", "objects", "a1", "x", "price"])
_number = st.floats(min_value=0.0, max_value=1e6, allow_nan=False).map(
    lambda v: f"{v:g}"
)
_attr = st.one_of(_ident, st.tuples(_ident, _ident).map(lambda p: f"{p[0]}.{p[1]}"))
_relop = st.sampled_from(["<", "<=", "=", "<>", ">=", ">"])


@st.composite
def _expr(draw, depth=2):
    if depth == 0:
        return draw(st.one_of(_attr, _number))
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return draw(st.one_of(_attr, _number))
    if kind == 1:
        op = draw(st.sampled_from(["+", "-", "*"]))
        return f"({draw(_expr(depth - 1))} {op} {draw(_expr(depth - 1))})"
    if kind == 2:
        return f"sqrt({draw(_expr(depth - 1))})"
    if kind == 3:
        return f"abs({draw(_expr(depth - 1))})"
    return f"pow({draw(_expr(depth - 1))}, {draw(st.integers(0, 4))})"


@st.composite
def _predicate(draw, depth=2):
    atom = f"{draw(_expr(1))} {draw(_relop)} {draw(_expr(1))}"
    if depth == 0:
        return atom
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return atom
    if kind == 1:
        return f"({draw(_predicate(depth - 1))} and {draw(_predicate(depth - 1))})"
    if kind == 2:
        return f"({draw(_predicate(depth - 1))} or {draw(_predicate(depth - 1))})"
    return f"not {draw(_predicate(depth - 1))}"


@st.composite
def _query(draw):
    cols = draw(
        st.one_of(
            st.just("*"),
            st.lists(_attr, min_size=1, max_size=3).map(", ".join),
        )
    )
    source = draw(_ident)
    parts = [f"select {cols} from {source}"]
    if draw(st.booleans()):
        size = draw(st.integers(2, 100))
        parts[0] = (
            f"select {cols} from {source} "
            f"[size {size} advance {draw(st.integers(1, size))}]"
        )
    if draw(st.booleans()):
        parts.append(f"where {draw(_predicate())}")
    if draw(st.booleans()):
        parts.append(f"error within {draw(st.integers(1, 20))}%")
    return " ".join(parts)


@given(_query())
@settings(max_examples=200)
def test_grammar_generated_queries_parse(sql):
    stmt = parse_query(sql)
    assert isinstance(stmt, SelectStmt)
