"""Property-based tests for segments, envelopes and window functions."""

import math

from hypothesis import assume, given, settings, strategies as st

from repro.core.operators import (
    ContinuousExtremumAggregate,
    ContinuousSumAggregate,
)
from repro.core.polynomial import Polynomial
from repro.core.segment import Segment, apply_update_semantics

coeff = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
linear = st.tuples(coeff, coeff).map(lambda c: Polynomial(list(c)))


@st.composite
def segments(draw, key=("k",)):
    lo = draw(st.floats(min_value=0.0, max_value=50.0))
    width = draw(st.floats(min_value=0.5, max_value=20.0))
    model = draw(linear)
    return Segment(key, lo, lo + width, {"x": model})


# ----------------------------------------------------------------------
# Update semantics (Section II-B).
# ----------------------------------------------------------------------
@given(st.lists(segments(), min_size=1, max_size=6))
def test_update_semantics_produces_disjoint_pieces(segs):
    state: list[Segment] = []
    for seg in segs:
        state = apply_update_semantics(state, seg)
    ordered = sorted(state, key=lambda s: s.t_start)
    for a, b in zip(ordered[:-1], ordered[1:]):
        assert a.t_end <= b.t_start + 1e-9


@given(st.lists(segments(), min_size=1, max_size=6))
def test_update_semantics_latest_wins(segs):
    """At any instant, the state holds the newest segment covering it."""
    state: list[Segment] = []
    for seg in segs:
        state = apply_update_semantics(state, seg)
    last = segs[-1]
    probe = 0.5 * (last.t_start + last.t_end)
    holder = [s for s in state if s.contains_time(probe)]
    assert len(holder) == 1
    assert holder[0].model("x") == last.model("x")


# ----------------------------------------------------------------------
# Min envelope invariant (Section III-B).
# ----------------------------------------------------------------------
@given(st.lists(segments(), min_size=1, max_size=5))
@settings(max_examples=50, deadline=None)
def test_envelope_is_pointwise_minimum(segs):
    # Distinct keys so every segment contributes (same-key overlap is
    # handled by update semantics upstream of the aggregate).
    agg = ContinuousExtremumAggregate("x", func="min")
    keyed = [
        Segment((f"k{i}",), s.t_start, s.t_end, dict(s.models))
        for i, s in enumerate(segs)
    ]
    for s in keyed:
        agg.process(s)
    lo = min(s.t_start for s in keyed)
    hi = max(s.t_end for s in keyed)
    for i in range(40):
        t = lo + (hi - lo) * (i + 0.5) / 40
        live = [s.model("x")(t) for s in keyed if s.contains_time(t)]
        if live and agg.envelope.defined_at(t):
            assert agg.envelope(t) <= min(live) + 1e-5


@given(st.lists(segments(), min_size=1, max_size=5))
@settings(max_examples=50, deadline=None)
def test_envelope_never_below_all_inputs(segs):
    agg = ContinuousExtremumAggregate("x", func="min")
    keyed = [
        Segment((f"k{i}",), s.t_start, s.t_end, dict(s.models))
        for i, s in enumerate(segs)
    ]
    for s in keyed:
        agg.process(s)
    lo = min(s.t_start for s in keyed)
    hi = max(s.t_end for s in keyed)
    for i in range(40):
        t = lo + (hi - lo) * (i + 0.5) / 40
        live = [s.model("x")(t) for s in keyed if s.contains_time(t)]
        if live and agg.envelope.defined_at(t):
            assert agg.envelope(t) >= min(live) - 1e-5


# ----------------------------------------------------------------------
# Sum window-function identity (Section III-B, Equation 2).
# ----------------------------------------------------------------------
@given(
    st.lists(linear, min_size=1, max_size=5),
    st.floats(min_value=0.5, max_value=5.0),
)
@settings(max_examples=60, deadline=None)
def test_window_function_equals_quadrature(models, window):
    """Emitted window functions integrate the signal exactly."""
    agg = ContinuousSumAggregate("x", window=window, retention=math.inf)
    piece_width = 2.0
    outputs = []
    for i, model in enumerate(models):
        seg = Segment(
            ("k",), i * piece_width, (i + 1) * piece_width, {"x": model}
        )
        outputs.extend(agg.process(seg))
    total_span = len(models) * piece_width
    assume(total_span > window)
    for out in outputs:
        wf = out.model(agg.output_attr)
        c = 0.5 * (out.t_start + out.t_end)
        direct = _exact_integral(models, piece_width, c - window, c)
        scale = max(abs(direct), 1.0)
        assert abs(wf(c) - direct) < 1e-7 * scale


def _exact_integral(models, width, lo, hi):
    """Exact piecewise integral of the test signal over [lo, hi]."""
    total = 0.0
    for idx, model in enumerate(models):
        a = max(lo, idx * width)
        b = min(hi, (idx + 1) * width)
        if a < b:
            total += model.definite_integral(a, b)
    return total


@given(
    st.lists(linear, min_size=2, max_size=5),
    st.floats(min_value=0.5, max_value=3.0),
)
@settings(max_examples=40, deadline=None)
def test_window_function_emission_is_contiguous(models, window):
    agg = ContinuousSumAggregate("x", window=window)
    outputs = []
    for i, model in enumerate(models):
        seg = Segment(("k",), i * 2.0, (i + 1) * 2.0, {"x": model})
        outputs.extend(agg.process(seg))
    spans = sorted((o.t_start, o.t_end) for o in outputs)
    for (a0, a1), (b0, b1) in zip(spans[:-1], spans[1:]):
        assert abs(a1 - b0) < 1e-9
