"""Property-based tests for the fluid queueing model."""

from hypothesis import given, settings, strategies as st

from repro.engine.metrics import QueueingModel

service_times = st.floats(min_value=1e-6, max_value=1e-2, allow_nan=False)
rates = st.floats(min_value=1.0, max_value=1e6, allow_nan=False)
capacities = st.floats(min_value=10.0, max_value=1e5, allow_nan=False)


@given(service_times, rates, capacities)
@settings(max_examples=80, deadline=None)
def test_conservation(service_time, rate, queue_capacity):
    """Processed work never exceeds arrivals, and the queue accounts for
    the difference exactly (fluid conservation)."""
    model = QueueingModel(service_time, queue_capacity=queue_capacity)
    result = model.offered(rate, duration=10.0)
    arrived = rate * 10.0
    processed = result.achieved_throughput * 10.0
    assert processed <= arrived * (1 + 1e-9)
    assert abs((arrived - processed) - result.final_queue_length) < arrived * 1e-6


@given(service_times, rates)
@settings(max_examples=80, deadline=None)
def test_throughput_never_exceeds_capacity(service_time, rate):
    model = QueueingModel(service_time)
    result = model.offered(rate, duration=10.0)
    assert result.achieved_throughput <= model.capacity * (1 + 1e-6)


@given(service_times, capacities)
@settings(max_examples=50, deadline=None)
def test_latency_monotone_in_rate(service_time, queue_capacity):
    model = QueueingModel(service_time, queue_capacity=queue_capacity)
    sweep = model.sweep(
        [model.capacity * f for f in (0.25, 0.5, 1.0, 2.0, 4.0)],
        duration=10.0,
    )
    latencies = [r.mean_latency for r in sweep]
    for a, b in zip(latencies[:-1], latencies[1:]):
        assert b >= a * (1 - 1e-6)


@given(service_times, capacities)
@settings(max_examples=50, deadline=None)
def test_under_capacity_no_saturation(service_time, queue_capacity):
    model = QueueingModel(service_time, queue_capacity=queue_capacity)
    result = model.offered(model.capacity * 0.5, duration=10.0)
    assert not result.saturated
    assert result.achieved_throughput >= model.capacity * 0.45


@given(service_times)
@settings(max_examples=50, deadline=None)
def test_over_capacity_saturates(service_time):
    model = QueueingModel(service_time, queue_capacity=100.0)
    result = model.offered(model.capacity * 3.0, duration=10.0)
    assert result.saturated
    assert result.final_queue_length > 100.0