"""Batched-kernel / scalar-path parity (the acceptance property).

The batched solver must be *bit-identical* to the scalar per-row path:
identical ``TimeSet`` objects, not merely approximately equal.  These
properties enforce that, feeding mixed-degree polynomials, all six
relations, finite and infinite domains through both paths.
"""

import math

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.batch_solver import (
    real_roots_batch,
    solve_relation_batch,
    solve_tasks,
    solver_mode,
)
from repro.core.errors import SolverError, SolverFailure
from repro.core.expr import Attr, Const
from repro.core.equation_system import EquationSystem
from repro.core.intervals import TimeSet
from repro.core.polynomial import Polynomial
from repro.core.predicate import And, Comparison, Not, Or
from repro.core.relation import Rel
from repro.core.roots import real_roots, solve_relation
from repro.core.solve_cache import reset_global_solve_cache

coeff = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
polys = st.lists(coeff, min_size=1, max_size=7).map(Polynomial)
all_rels = st.sampled_from(list(Rel))

DOMAIN = (-10.0, 10.0)

domains = st.one_of(
    st.tuples(
        st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
        st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
    ).map(lambda ab: (min(ab), max(ab))),
    st.just((-math.inf, math.inf)),
    st.just((0.0, math.inf)),
    st.just((-math.inf, 0.0)),
)


@given(st.lists(st.tuples(polys, all_rels), min_size=1, max_size=12), domains)
@settings(max_examples=200)
def test_solve_relation_batch_matches_scalar(items, domain):
    lo, hi = domain
    tasks = [(p, rel, lo, hi) for p, rel in items]
    batched = solve_relation_batch(tasks)
    scalar = [solve_relation(p, rel, lo, hi) for p, rel in items]
    # Exact TimeSet equality — the kernel reuses the scalar arithmetic
    # bit for bit, so no tolerance is needed or allowed.
    assert batched == scalar


@given(st.lists(polys, min_size=1, max_size=12))
@settings(max_examples=200)
def test_real_roots_batch_matches_scalar(ps):
    ps = [p for p in ps if not p.is_zero]
    assume(ps)
    batched = real_roots_batch([(p, *DOMAIN) for p in ps])
    for p, roots in zip(ps, batched):
        assert roots == real_roots(p, *DOMAIN)


@given(st.lists(st.tuples(polys, all_rels), min_size=1, max_size=8), domains)
@settings(max_examples=100)
def test_solve_tasks_cache_round_trip_is_exact(items, domain):
    """Warm-cache answers are the very objects the kernel produced."""
    lo, hi = domain
    tasks = [(p, rel, lo, hi) for p, rel in items]
    reset_global_solve_cache()
    with solver_mode("batch"):
        cold = solve_tasks(tasks)
        warm = solve_tasks(tasks)
    assert cold == warm
    with solver_mode("scalar"):
        scalar = solve_tasks(tasks)
    assert cold == scalar


@given(
    st.lists(coeff, min_size=2, max_size=4).map(Polynomial),
    st.lists(coeff, min_size=2, max_size=4).map(Polynomial),
    all_rels,
    all_rels,
)
@settings(max_examples=150)
def test_equation_system_solve_parity(p1, p2, rel1, rel2):
    """Full-system solve: batch and scalar modes emit identical TimeSets."""
    models = {"p1": p1, "p2": p2}
    pred = Or(
        And(
            Comparison(Attr("p1"), rel1, Const(0.0)),
            Comparison(Attr("p2"), rel2, Const(0.0)),
        ),
        Not(Comparison(Attr("p1"), rel2, Const(0.0))),
    )
    system = EquationSystem.from_predicate(pred, models.__getitem__)
    with solver_mode("batch") as cfg:
        cfg.cache_enabled = False
        batched = system.solve(*DOMAIN)
    with solver_mode("scalar"):
        scalar = system.solve(*DOMAIN)
    assert batched == scalar


@given(st.lists(coeff, min_size=2, max_size=5).map(Polynomial), all_rels)
@settings(max_examples=150)
def test_single_row_system_parity(p, rel):
    models = {"p": p}
    pred = Comparison(Attr("p"), rel, Const(0.0))
    system = EquationSystem.from_predicate(pred, models.__getitem__)
    with solver_mode("batch") as cfg:
        cfg.cache_enabled = False
        batched = system.solve(*DOMAIN)
    with solver_mode("scalar"):
        scalar = system.solve(*DOMAIN)
    assert batched == scalar


# ----------------------------------------------------------------------
# failure parity: both paths fail the same way, with the same types
# ----------------------------------------------------------------------
def _failure(fn, *args, **kwargs):
    try:
        fn(*args, **kwargs)
    except SolverFailure as exc:
        return exc.reason
    raise AssertionError(f"{fn.__name__} did not raise SolverFailure")


@given(all_rels)
def test_zero_polynomial_failure_parity(rel):
    zero = Polynomial([0.0])
    scalar_reason = _failure(real_roots, zero, *DOMAIN)
    batch_reason = _failure(real_roots_batch, [(zero, *DOMAIN)])
    assert scalar_reason == batch_reason == "zero-polynomial"
    # Both failures are SolverError subclasses (legacy catch sites hold).
    with pytest.raises(SolverError):
        real_roots_batch([(zero, *DOMAIN)])


@given(all_rels, st.integers(min_value=1, max_value=5))
def test_nan_coefficient_failure_parity(rel, degree):
    bad = Polynomial([math.nan] + [1.0] * degree)
    scalar_reason = _failure(real_roots, bad, *DOMAIN)
    batch_reason = _failure(real_roots_batch, [(bad, *DOMAIN)])
    assert scalar_reason == batch_reason == "invalid-coefficients"
    scalar_reason = _failure(solve_relation, bad, rel, *DOMAIN)
    batch_reason = _failure(solve_relation_batch, [(bad, rel, *DOMAIN)])
    assert scalar_reason == batch_reason == "invalid-coefficients"


@given(st.lists(polys, min_size=1, max_size=8), all_rels)
@settings(max_examples=100)
def test_failures_dict_isolates_poisoned_rows(ps, rel):
    """One poisoned row fails alone; healthy rows still match scalar."""
    ps = [p for p in ps if not p.is_zero]
    assume(ps)
    bad = Polynomial([math.nan, 1.0])
    mixed = ps + [bad]
    failures = {}
    batched = real_roots_batch([(p, *DOMAIN) for p in mixed], failures)
    assert set(failures) == {len(ps)}
    assert isinstance(failures[len(ps)], SolverFailure)
    assert failures[len(ps)].reason == "invalid-coefficients"
    for p, roots in zip(ps, batched):
        assert roots == real_roots(p, *DOMAIN)

    failures = {}
    tasks = [(p, rel, *DOMAIN) for p in mixed]
    sols = solve_relation_batch(tasks, failures)
    assert set(failures) == {len(ps)}
    assert sols[len(ps)] == TimeSet.empty()
    for p, sol in zip(ps, sols):
        assert sol == solve_relation(p, rel, *DOMAIN)


@given(
    st.lists(st.tuples(polys, all_rels), min_size=2, max_size=6),
    st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
)
@settings(max_examples=100)
def test_batch_solutions_pointwise_consistent(items, t):
    """Batched solutions still agree with direct evaluation off-root."""
    sols = solve_relation_batch([(p, rel, *DOMAIN) for p, rel in items])
    for (p, rel), sol in zip(items, sols):
        if p.is_zero:
            continue
        scale = max(abs(c) for c in p.coeffs)
        value = p(t)
        if abs(value) <= 1e-6 * max(1.0, scale) or not (-10.0 < t < 10.0):
            continue
        assert sol.contains(t) == rel.holds(value)
