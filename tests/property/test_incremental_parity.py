"""Incremental-vs-full parity: the delta path's bit-exactness gate.

Hypothesis drives randomized arrival interleavings — model refits,
re-emissions of unchanged content, overlapping successors (retirements),
and a poisoned key whose solves fault deterministically and trip the
circuit breaker — through the same workload twice: once with the
incremental knob off (the full re-solve oracle) and once with it on.

The contract under test:

* **Outputs are bit-exact** between the two modes, compared by value
  (key, time range, model coefficients, constants) — seg_ids and
  lineage are excluded because two runs allocate ids independently.
* **Row solves never increase**: the incremental run performs at most
  as many ``equation_system.row_solves`` as the full run.
* **Faults stay mode-independent**: only successful solves are ever
  stored, so poisoned content re-fails on every probe in both modes
  and the breaker quarantines the same keys.
"""

from hypothesis import given, settings, strategies as st
import pytest

from repro.core.batch_solver import incremental_mode, set_fault_hook
from repro.core.errors import SolverError
from repro.core.polynomial import Polynomial
from repro.core.segment import Segment
from repro.core.solve_cache import (
    reset_global_solve_cache,
    reset_worker_root_cache,
)
from repro.core.transform import to_continuous_plan
from repro.engine.metrics import get_counter, reset_counters
from repro.engine.resilience import BreakerConfig
from repro.engine.scheduler import QueryRuntime
from repro.query import parse_query, plan_query

KEYS = ("a", "b", "poison")
#: Content marker: any solve task whose polynomial carries a huge
#: coefficient faults.  Content-addressed (not rate- or order-based),
#: so the fault fires identically under both modes.
POISON_LEVEL = 500.0


def _content_fault(task):
    poly = task[0]
    if max(abs(c) for c in poly.coeffs) >= POISON_LEVEL:
        raise SolverError("poisoned content marker")
    return task


QUERIES = {
    "filter": "select * from ticks where x > 1",
    "join": (
        "select from ticks T join quotes Q "
        "on (T.sym = Q.sym and T.x > Q.y)"
    ),
    "minagg": (
        "select sym, min(x) as mx from ticks [size 4 advance 2] "
        "group by sym"
    ),
}

_ATTR = {"ticks": "x", "quotes": "y"}


@st.composite
def traces(draw):
    """An interleaving of refits, re-emissions, and retirements."""
    events = []
    clock: dict = {}
    coeffs: dict = {}
    n = draw(st.integers(min_value=4, max_value=12))
    for _ in range(n):
        key = draw(st.sampled_from(KEYS))
        stream = draw(st.sampled_from(("ticks", "quotes")))
        slot = (stream, key)
        prev = coeffs.get(slot)
        kind = draw(st.sampled_from(("refit", "reemit", "retire")))
        if kind == "reemit" and prev is not None:
            c = prev
        else:
            c = (
                float(draw(st.integers(-3, 3))),
                float(draw(st.integers(-2, 2))),
            )
            if key == "poison" and draw(st.booleans()):
                c = (2 * POISON_LEVEL, c[1])
        start = clock.get(slot, 0.0)
        if kind == "retire" and slot in clock:
            start -= 1.0  # overlap: successor retires its predecessor
        coeffs[slot] = c
        clock[slot] = start + 2.0
        events.append(
            (
                stream,
                Segment(
                    (key,),
                    start,
                    start + 2.0,
                    {_ATTR[stream]: Polynomial(list(c))},
                    constants={"sym": key},
                ),
            )
        )
    return events


def canon(outputs):
    """Mode-independent view of an output stream (no ids, no lineage)."""
    return [
        (
            s.key,
            s.t_start,
            s.t_end,
            {a: p.coeffs for a, p in sorted(s.models.items())},
            tuple(sorted(s.constants.items())),
        )
        for s in outputs
    ]


def run_trace(sql: str, trace, incremental: bool):
    reset_global_solve_cache()
    reset_worker_root_cache()
    reset_counters()
    planned = plan_query(parse_query(sql))
    consumed = set(planned.stream_sources)
    with incremental_mode(incremental):
        rt = QueryRuntime(
            breaker=BreakerConfig(failure_threshold=2, backoff=10_000)
        )
        try:
            rt.register("q", to_continuous_plan(planned))
            for stream, item in trace:
                if stream in consumed:
                    rt.enqueue(stream, item)
            rt.run_until_idle()
            outputs = rt.outputs("q")
            errors = rt.step_errors
        finally:
            rt.close()
    return canon(outputs), get_counter("equation_system.row_solves").value, errors


@pytest.mark.parametrize("query", sorted(QUERIES))
@given(trace=traces())
@settings(max_examples=25, deadline=None)
def test_incremental_matches_full(query, trace):
    previous = set_fault_hook(_content_fault)
    try:
        full_out, full_solves, full_errors = run_trace(
            QUERIES[query], trace, incremental=False
        )
        incr_out, incr_solves, incr_errors = run_trace(
            QUERIES[query], trace, incremental=True
        )
    finally:
        set_fault_hook(previous)
    assert incr_out == full_out
    assert incr_solves <= full_solves
    assert incr_errors == full_errors


@given(trace=traces())
@settings(max_examples=10, deadline=None)
def test_incremental_sharded_matches_full_serial(trace):
    """The delta path composes with the parallel dispatcher."""
    full_out, full_solves, _ = run_trace(
        QUERIES["join"], trace, incremental=False
    )
    reset_global_solve_cache()
    reset_worker_root_cache()
    reset_counters()
    planned = plan_query(parse_query(QUERIES["join"]))
    with incremental_mode(True):
        rt = QueryRuntime(num_shards=2)
        try:
            rt.register("q", to_continuous_plan(planned))
            for stream, item in trace:
                rt.enqueue(stream, item)
            rt.run_until_idle()
            outputs = rt.outputs("q")
        finally:
            rt.close()
    assert canon(outputs) == full_out
