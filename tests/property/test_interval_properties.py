"""Property-based tests for the time-interval algebra."""

from hypothesis import given, strategies as st

from repro.core.intervals import Interval, TimeSet

bound = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


@st.composite
def intervals(draw):
    lo = draw(bound)
    width = draw(st.floats(min_value=0.01, max_value=50.0))
    return Interval(lo, lo + width)


@st.composite
def timesets(draw):
    ivs = draw(st.lists(intervals(), max_size=4))
    pts = draw(st.lists(bound, max_size=3))
    return TimeSet(intervals=ivs, points=pts)


DOMAIN = Interval(-200.0, 200.0)


@given(timesets())
def test_normalization_idempotent(ts):
    again = TimeSet(intervals=ts.intervals, points=ts.points)
    assert again == ts


@given(timesets())
def test_intervals_disjoint_and_sorted(ts):
    for a, b in zip(ts.intervals[:-1], ts.intervals[1:]):
        assert a.hi < b.lo + 1e-12
    for p, q in zip(ts.points[:-1], ts.points[1:]):
        assert p < q


@given(timesets())
def test_points_outside_intervals(ts):
    for p in ts.points:
        assert not any(iv.lo <= p <= iv.hi for iv in ts.intervals)


@given(timesets(), timesets())
def test_union_commutes(a, b):
    assert (a | b).approx_equal(b | a)


@given(timesets(), timesets())
def test_intersection_commutes(a, b):
    assert (a & b).approx_equal(b & a)


@given(timesets(), timesets())
def test_intersection_subset_of_union(a, b):
    inter = a & b
    union = a | b
    assert inter.measure <= union.measure + 1e-9


@given(timesets(), timesets(), bound)
def test_union_membership(a, b, t):
    if a.contains(t) or b.contains(t):
        assert (a | b).contains(t, tol=1e-9)


@given(timesets(), timesets(), bound)
def test_intersection_membership(a, b, t):
    # Membership in both implies membership in the intersection, up to
    # the EPS used when absorbing points into intervals.
    if (a & b).contains(t):
        assert a.contains(t, tol=1e-6) and b.contains(t, tol=1e-6)


@given(timesets())
def test_complement_partitions_measure(ts):
    clipped = ts.clip(DOMAIN.lo, DOMAIN.hi)
    comp = ts.complement(DOMAIN)
    total = clipped.measure + comp.measure
    assert abs(total - DOMAIN.length) < 1e-6


@given(timesets())
def test_double_complement_restores_measure(ts):
    clipped = ts.clip(DOMAIN.lo, DOMAIN.hi)
    double = ts.complement(DOMAIN).complement(DOMAIN)
    assert abs(double.measure - clipped.measure) < 1e-6


@given(timesets(), bound)
def test_shift_preserves_measure(ts, delta):
    assert abs(ts.shift(delta).measure - ts.measure) < 1e-9


@given(timesets())
def test_measure_nonnegative(ts):
    assert ts.measure >= 0.0


@given(timesets(), timesets())
def test_infimum_of_union(a, b):
    if not a.is_empty and not b.is_empty:
        u = a | b
        assert u.infimum <= min(a.infimum, b.infimum) + 1e-9
