"""Property-based tests for root finding, sign solving and operators."""

import math

from hypothesis import assume, given, settings, strategies as st

from repro.core.polynomial import Polynomial
from repro.core.relation import Rel
from repro.core.roots import real_roots, solve_relation

coeff = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
polys = st.lists(coeff, min_size=2, max_size=5).map(Polynomial)
rels = st.sampled_from([Rel.LT, Rel.LE, Rel.GT, Rel.GE])

DOMAIN = (-10.0, 10.0)


@given(polys)
def test_roots_actually_vanish(p):
    assume(not p.is_zero)
    scale = max(abs(c) for c in p.coeffs)
    for r in real_roots(p, *DOMAIN):
        assert abs(p(r)) < 1e-5 * max(1.0, scale)


@given(polys)
def test_roots_sorted_and_unique(p):
    assume(not p.is_zero)
    roots = real_roots(p, *DOMAIN)
    for a, b in zip(roots[:-1], roots[1:]):
        assert a < b


@given(polys, rels)
def test_solution_interiors_satisfy_relation(p, rel):
    assume(not p.is_zero)
    sol = solve_relation(p, rel, *DOMAIN)
    scale = max(abs(c) for c in p.coeffs)
    for iv in sol.intervals:
        value = p(iv.midpoint)
        # A midpoint can land exactly on an interior root when interval
        # normalization coalesces across a puncture (e.g. -t^2 < 0 with
        # its double root at 0) — the paper's measure-zero superset
        # semantics (Observation 1).  Strict relations are only checked
        # away from roots.
        if abs(value) <= 1e-9 * max(1.0, scale):
            continue
        assert rel.holds(value), (p, rel, iv)


@given(polys, rels)
def test_complement_interiors_violate_relation(p, rel):
    assume(not p.is_zero)
    from repro.core.intervals import Interval

    sol = solve_relation(p, rel, *DOMAIN)
    comp = sol.complement(Interval(*DOMAIN))
    for iv in comp.intervals:
        mid = iv.midpoint
        # Midpoints can coincide with roots in degenerate cases; skip
        # values within numeric tolerance of zero.
        value = p(mid)
        if abs(value) > 1e-7 * max(1.0, max(abs(c) for c in p.coeffs)):
            assert not rel.holds(value), (p, rel, iv)


@given(polys, rels)
def test_relation_and_negation_partition_domain(p, rel):
    assume(not p.is_zero)
    sol = solve_relation(p, rel, *DOMAIN)
    neg = solve_relation(p, rel.negate(), *DOMAIN)
    total = sol.measure + neg.measure
    assert abs(total - (DOMAIN[1] - DOMAIN[0])) < 1e-5


@given(polys)
def test_eq_and_ne_complementary(p):
    assume(not p.is_zero)
    eq = solve_relation(p, Rel.EQ, *DOMAIN)
    ne = solve_relation(p, Rel.NE, *DOMAIN)
    # EQ has measure zero; NE has (almost) full measure.
    assert eq.measure == 0.0
    assert ne.measure > (DOMAIN[1] - DOMAIN[0]) - 1e-6


@given(polys, rels, st.floats(min_value=-9.0, max_value=9.0, allow_nan=False))
def test_pointwise_consistency(p, rel, t):
    """solve_relation agrees with direct evaluation away from roots."""
    assume(not p.is_zero)
    scale = max(abs(c) for c in p.coeffs)
    value = p(t)
    assume(abs(value) > 1e-6 * max(1.0, scale))
    sol = solve_relation(p, rel, *DOMAIN)
    assert sol.contains(t) == rel.holds(value)


# ----------------------------------------------------------------------
# Filter operator: output invariants under arbitrary linear models.
# ----------------------------------------------------------------------
from repro.core.expr import Attr, Const
from repro.core.operators import ContinuousFilter
from repro.core.predicate import Comparison
from repro.core.segment import Segment

linear_models = st.tuples(coeff, coeff).map(lambda c: Polynomial(list(c)))


@given(linear_models, coeff, rels)
def test_filter_outputs_within_input_range(model, threshold, rel):
    seg = Segment(("k",), 0.0, 10.0, {"x": model})
    f = ContinuousFilter(Comparison(Attr("x"), rel, Const(threshold)))
    for out in f.process(seg):
        assert out.t_start >= seg.t_start - 1e-9
        assert out.t_end <= seg.t_end + 1e-9


@given(linear_models, coeff, rels)
def test_filter_output_midpoints_satisfy_predicate(model, threshold, rel):
    # Evaluate through the difference polynomial the operator solves —
    # evaluating model(mid) - threshold separately can absorb tiny slope
    # terms into the constant (the paper's false-positive semantics).
    seg = Segment(("k",), 0.0, 10.0, {"x": model})
    f = ContinuousFilter(Comparison(Attr("x"), rel, Const(threshold)))
    diff = model - threshold
    for out in f.process(seg):
        if not out.is_point:
            mid = 0.5 * (out.t_start + out.t_end)
            assert rel.holds(diff(mid))


@given(linear_models, coeff)
def test_filter_partitions_time(model, threshold):
    """LT and GE outputs tile the input segment exactly."""
    seg = Segment(("k",), 0.0, 10.0, {"x": model})
    lt = ContinuousFilter(Comparison(Attr("x"), Rel.LT, Const(threshold)))
    ge = ContinuousFilter(Comparison(Attr("x"), Rel.GE, Const(threshold)))
    covered = sum(o.duration for o in lt.process(seg) if not o.is_point)
    covered += sum(o.duration for o in ge.process(seg) if not o.is_point)
    assert abs(covered - seg.duration) < 1e-6
