"""Property-based tests for the polynomial kernel."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.polynomial import Polynomial

coeff = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)
polys = st.lists(coeff, min_size=1, max_size=6).map(Polynomial)
times = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)
shifts = st.floats(min_value=-20.0, max_value=20.0, allow_nan=False)


def close(a: float, b: float, scale: float = 1.0) -> bool:
    tol = 1e-6 * max(1.0, abs(a), abs(b), scale)
    return abs(a - b) <= tol


@given(polys, polys, times)
def test_addition_is_pointwise(p, q, t):
    assert close((p + q)(t), p(t) + q(t))


@given(polys, polys, times)
def test_multiplication_is_pointwise(p, q, t):
    expected = p(t) * q(t)
    assert close((p * q)(t), expected, scale=abs(expected))


@given(polys, times)
def test_negation_and_subtraction(p, t):
    assert close((-p)(t), -p(t))
    assert (p - p).is_zero


@given(polys, polys)
def test_addition_commutes(p, q):
    assert (p + q).approx_equal(q + p)


@given(polys, polys, polys)
def test_multiplication_distributes(p, q, r):
    left = p * (q + r)
    right = p * q + p * r
    assert left.approx_equal(right, tol=1e-6)


@given(polys, shifts, times)
def test_shift_identity(p, delta, t):
    q = p.shift(delta)
    expected = p(t + delta)
    assert close(q(t), expected, scale=p.bound_on(t - abs(delta), t + abs(delta)))


@given(polys, shifts, shifts)
def test_shift_composes(p, a, b):
    assert p.shift(a).shift(b).approx_equal(p.shift(a + b), tol=1e-5)


@given(polys)
def test_derivative_of_antiderivative(p):
    assert p.antiderivative().derivative().approx_equal(p, tol=1e-9)


@given(polys, times, times)
def test_definite_integral_additivity(p, a, b):
    mid = 0.5 * (a + b)
    whole = p.definite_integral(a, b)
    parts = p.definite_integral(a, mid) + p.definite_integral(mid, b)
    assert close(whole, parts, scale=p.bound_on(min(a, b), max(a, b)))


@given(polys, st.floats(min_value=0.01, max_value=10.0), times)
def test_sliding_window_integral_matches_definite(p, w, t):
    wf = p.sliding_window_integral(w)
    expected = p.definite_integral(t - w, t)
    assert close(wf(t), expected, scale=p.bound_on(t - w, t) * w + 1.0)


@given(polys)
def test_degree_after_trim(p):
    if not p.is_zero:
        assert p.coeffs[-1] != 0.0 or p.degree == 0


@given(polys, st.integers(min_value=0, max_value=3), times)
def test_power_is_repeated_multiplication(p, n, t):
    expected = p(t) ** n
    assert close((p**n)(t), expected, scale=abs(expected))
