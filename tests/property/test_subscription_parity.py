"""Shared-graph fan-out parity: the multi-subscription bit-exactness gate.

Hypothesis drives randomized subscription scripts — bound sets drawn
from a tight-to-loose ladder, subscribe/unsubscribe interleavings that
tighten, relax and tear down the shared graph mid-stream, ingest chunks
(including poisoned content that faults the solver and trips the
circuit breaker), and flush barriers — through two executors:

* **shared** — one :class:`~repro.server.bridge.EngineBridge` where all
  subscriptions to the query share ONE operator graph solved at the
  tightest currently-subscribed bound, and

* **oracle** — a dedicated per-(query, bound-schedule)
  :class:`~repro.engine.scheduler.QueryRuntime` plus its own fitting
  builder, stepped through the *same* tightest-bound schedule (seal at
  each retarget, tear down when the last subscriber leaves) with
  deliveries assigned to exactly the subscriptions live at each point.

The contract under test:

* **Per-subscriber outputs are bit-exact** between the two, compared by
  value (key, time range, model coefficients, constants) — seg_ids and
  lineage are excluded because runs allocate ids independently.
* **Cursors are honest**: every delivery's reported cursor equals the
  number of results that subscription had already received.
* **Faults stay topology-independent**: poisoned content faults by
  value, so the breaker quarantines the same keys whether one graph
  serves five subscribers or five graphs serve one each.

Both incremental modes run, because the shared graph must hold parity
on top of the delta re-solve path too.
"""

from collections import defaultdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batch_solver import incremental_mode, set_fault_hook
from repro.core.errors import SolverError
from repro.core.solve_cache import (
    reset_global_solve_cache,
    reset_worker_root_cache,
)
from repro.core.transform import to_continuous_plan
from repro.engine.metrics import reset_counters
from repro.engine.resilience import BreakerConfig
from repro.engine.scheduler import QueryRuntime
from repro.engine.tuples import StreamTuple
from repro.fitting.model_builder import StreamModelBuilder
from repro.query import parse_query, plan_query
from repro.server.bridge import EngineBridge, FitSpec

SQL = "select * from ticks where x > 0"
STREAM = "ticks"
FIT = FitSpec(attrs=("x",), key_fields=("sym",))
#: Tight-to-loose ladder the scripts draw bounds from.
BOUNDS = (0.01, 0.05, 0.2, 1.0)
#: Content marker: a fitted polynomial with any coefficient this large
#: faults in the solver (value-addressed, so it fires identically in
#: the shared and oracle topologies).
POISON_LEVEL = 500.0


def _content_fault(task):
    poly = task[0]
    if max(abs(c) for c in poly.coeffs) >= POISON_LEVEL:
        raise SolverError("poisoned content marker")
    return task


def _breaker():
    return BreakerConfig(failure_threshold=2, backoff=10_000)


@st.composite
def scripts(draw):
    """A subscription/ingest interleaving with a monotone clock."""
    events = []
    t = 0.0
    n = draw(st.integers(min_value=6, max_value=16))
    for _ in range(n):
        kind = draw(
            st.sampled_from(
                ("sub", "sub", "ingest", "ingest", "ingest", "unsub", "flush")
            )
        )
        if kind == "sub":
            events.append(("sub", draw(st.sampled_from(BOUNDS))))
        elif kind == "unsub":
            events.append(("unsub", draw(st.integers(0, 7))))
        elif kind == "flush":
            events.append(("flush",))
        else:
            chunk = []
            for _ in range(draw(st.integers(1, 5))):
                key = draw(st.sampled_from(("a", "b", "poison")))
                x = float(draw(st.integers(-3, 3)))
                if key == "poison" and draw(st.booleans()):
                    x = 2 * POISON_LEVEL
                chunk.append({"time": t, "sym": key, "x": x})
                t += 0.25
            events.append(("ingest", tuple(chunk)))
    return events


def canon(outputs):
    """Value view of an output stream (no ids, no lineage)."""
    return [
        (
            s.key,
            s.t_start,
            s.t_end,
            {a: p.coeffs for a, p in sorted(s.models.items())},
            tuple(sorted(s.constants.items())),
        )
        for s in outputs
    ]


def _reset():
    reset_global_solve_cache()
    reset_worker_root_cache()
    reset_counters()


def run_shared(events, incremental):
    """The system under test: one bridge, one shared graph."""
    _reset()
    delivered: dict[int, list] = defaultdict(list)

    def on_outputs(subscribers, info, outputs):
        for sub_id, cursor in subscribers:
            # the cursor must equal what this subscription already has
            assert cursor == len(delivered[sub_id])
            delivered[sub_id].extend(outputs)

    with incremental_mode(incremental):
        bridge = EngineBridge(
            {"breaker": _breaker()}, on_outputs=on_outputs
        )
        bridge.start()
        try:
            bridge.register_query("q", SQL, FIT).result()
            next_id = 1
            active: list[int] = []
            for ev in events:
                if ev[0] == "sub":
                    bridge.subscribe(
                        next_id, "q", "continuous", ev[1]
                    ).result()
                    active.append(next_id)
                    next_id += 1
                elif ev[0] == "unsub":
                    if not active:
                        continue
                    sid = active.pop(ev[1] % len(active))
                    bridge.unsubscribe(sid).result()
                elif ev[0] == "flush":
                    bridge.flush().result()
                else:
                    bridge.ingest(
                        None, STREAM, [StreamTuple(d) for d in ev[1]]
                    ).result()
        finally:
            bridge.stop()
    return {sid: canon(outs) for sid, outs in delivered.items()}


def run_oracle(events, incremental):
    """Dedicated builder + runtime following the tightest-bound
    schedule, with per-point delivery bookkeeping."""
    _reset()
    delivered: dict[int, list] = defaultdict(list)
    with incremental_mode(incremental):
        planned = plan_query(parse_query(SQL))
        rt = None
        builder = None
        active: list[tuple[int, float]] = []
        next_id = 1

        def deliver():
            rt.run_until_idle()
            outs = rt.outputs("q")
            for sid, _bound in active:
                delivered[sid].extend(outs)

        def retarget(bound):
            for seg in builder.retarget(bound):
                rt.enqueue(STREAM, seg)
            deliver()

        try:
            for ev in events:
                if ev[0] == "sub":
                    bound = ev[1]
                    if rt is None:
                        rt = QueryRuntime(breaker=_breaker())
                        rt.register("q", to_continuous_plan(planned))
                        builder = StreamModelBuilder(
                            FIT.attrs,
                            bound,
                            key_fields=FIT.key_fields,
                            constants=FIT.effective_constants,
                        )
                    elif bound < builder.tolerance:
                        # seal at the old bound for the existing subs,
                        # then admit the tighter newcomer
                        retarget(bound)
                    active.append((next_id, bound))
                    next_id += 1
                elif ev[0] == "unsub":
                    if not active:
                        continue
                    _sid, bound = active.pop(ev[1] % len(active))
                    if not active:
                        rt.close()
                        rt = None
                        builder = None
                    elif bound == builder.tolerance:
                        remaining = min(b for _s, b in active)
                        if remaining != builder.tolerance:
                            retarget(remaining)
                elif ev[0] == "flush":
                    if rt is not None:
                        for seg in builder.finish():
                            rt.enqueue(STREAM, seg)
                        deliver()
                else:
                    if rt is None:
                        continue  # no consumer: the bridge drops these too
                    for d in ev[1]:
                        for seg in builder.add(StreamTuple(d)):
                            rt.enqueue(STREAM, seg)
                    deliver()
        finally:
            if rt is not None:
                rt.close()
    return {sid: canon(outs) for sid, outs in delivered.items()}


@pytest.mark.parametrize("incremental", [False, True])
@given(events=scripts())
@settings(max_examples=25, deadline=None)
def test_shared_graph_matches_dedicated_oracle(incremental, events):
    previous = set_fault_hook(_content_fault)
    try:
        shared = run_shared(events, incremental)
        oracle = run_oracle(events, incremental)
    finally:
        set_fault_hook(previous)
    # every subscription matches its oracle, delivery for delivery
    for sid in set(shared) | set(oracle):
        assert shared.get(sid, []) == oracle.get(sid, [])
