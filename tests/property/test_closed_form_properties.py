"""Property tests for the closed-form root kernels.

Three contracts, checked against independent referees:

* the scalar :func:`repro.core.roots._quadratic_roots` edge branches
  (zero discriminant, zero constant term, cancellation-prone inputs)
  agree with ``np.roots``;
* the vectorized Cardano/Ferrari kernels
  (:mod:`repro.core.closed_form`) produce candidates with small
  backward error, cover repeated and near-multiple roots, are
  partition-invariant (a row's candidates are bit-identical whether it
  is solved alone or inside any batch — the property the
  scalar-delegates-to-batch parity scheme rests on), and hand
  non-finite rows to the companion eigensolve
  (``closed_form_stats`` fallback accounting);
* the dispatcher yields the same final root lists with
  ``SOLVER_CONFIG.closed_form`` on and off for well-separated roots.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.batch_solver import (
    SOLVER_CONFIG,
    closed_form_stats,
    real_roots_rows,
)
from repro.core.closed_form import (
    _stable_quadratic_batch,
    cubic_candidates,
    quartic_candidates,
)
from repro.core.polynomial import Polynomial
from repro.core.roots import _quadratic_roots

# Exact zeros are interesting (monomial gaps); denormal-range values
# are not — the dispatcher's _deflate drops them before any kernel
# while a naive np.roots referee overflows on them.
coeff = st.one_of(
    st.just(0.0),
    st.floats(min_value=-1e3, max_value=1e3).filter(
        lambda c: abs(c) >= 1e-6
    ),
)
lead = st.floats(min_value=-1e3, max_value=1e3).filter(
    lambda c: abs(c) > 1e-3
)
root_val = st.floats(
    min_value=-8.0, max_value=8.0, allow_nan=False, allow_infinity=False
)

DOMAIN = (-50.0, 50.0)


def _poly_from_roots(scale: float, roots: list[float]) -> list[float]:
    """Descending coefficients of ``scale * prod (t - r)``."""
    p = Polynomial([scale])
    for r in roots:
        p = p * Polynomial([-r, 1.0])
    return list(reversed(p.coeffs))


def _residual_ok(desc: list[float], r: float, tol: float = 1e-6) -> bool:
    """Backward-error check: |p(r)| small against the evaluation scale."""
    powers = [r ** (len(desc) - 1 - i) for i in range(len(desc))]
    value = sum(c * p for c, p in zip(desc, powers))
    scale = sum(abs(c * p) for c, p in zip(desc, powers))
    return abs(value) <= tol * max(1.0, scale)


def _separated_real_roots(
    desc: list[float],
) -> tuple[list[float], float] | None:
    """``(real referee roots, root scale)``, or ``None``.

    ``None`` when any two ``np.roots`` roots sit within 1e-2 (relative)
    of each other — near-multiple clusters where no candidate-accuracy
    contract is meaningful for any kernel.  The returned scale is the
    largest root magnitude: kernel arithmetic works at that scale, so
    absolute candidate error is bounded relative to it, not to each
    individual (possibly tiny) root.
    """
    ref = np.roots(desc)
    for i in range(len(ref)):
        for j in range(i + 1, len(ref)):
            if abs(ref[i] - ref[j]) <= 1e-2 * max(1.0, abs(ref[i])):
                return None
    scale = max((abs(r) for r in ref), default=0.0)
    return [
        float(r.real)
        for r in ref
        if abs(r.imag) <= 1e-8 * max(1.0, abs(r.real))
    ], float(scale)


# ----------------------------------------------------------------------
# scalar _quadratic_roots edge branches vs np.roots
# ----------------------------------------------------------------------
class TestQuadraticRoots:
    @given(c0=coeff, c1=coeff, c2=lead)
    @settings(max_examples=300)
    def test_matches_np_roots(self, c0, c1, c2):
        ours = sorted(_quadratic_roots(c0, c1, c2))
        ref = np.roots([c2, c1, c0])
        ref_real = sorted(
            float(r.real)
            for r in ref
            if abs(r.imag) <= 1e-9 * max(1.0, abs(r.real))
        )
        assume(len(ours) == len(ref_real))  # knife-edge discriminants
        for a, b in zip(ours, ref_real):
            assert abs(a - b) <= 1e-6 * max(1.0, abs(a), abs(b))

    @given(r=root_val, c2=lead)
    def test_exact_double_root(self, r, c2):
        # c2 (t - r)^2: when the float discriminant lands >= 0 the
        # scalar kernel must report a tight root (the scalar path has
        # no disc clamp, so an exactly-negative float disc legitimately
        # comes back empty — that case is exercised by the batch
        # kernel's clamp test instead).
        c1, c0 = -2.0 * c2 * r, c2 * r * r
        roots = _quadratic_roots(c0, c1, c2)
        if c1 * c1 - 4.0 * c2 * c0 >= 0.0:
            assert roots, "non-negative discriminant must yield roots"
        for got in roots:
            assert abs(got - r) <= 1e-6 * max(1.0, abs(r))

    def test_zero_discriminant_branch(self):
        assert _quadratic_roots(1.0, 2.0, 1.0) == [-1.0]

    def test_zero_constant_term(self):
        # c0 == 0: one root at exactly 0.0 via the product-of-roots
        # fallback, the other at -c1/c2.
        roots = sorted(_quadratic_roots(0.0, 3.0, 2.0))
        assert 0.0 in roots
        assert any(abs(r + 1.5) <= 1e-12 for r in roots)

    @given(c1=st.floats(min_value=1e6, max_value=1e8), c2=lead)
    def test_cancellation_prone_large_c1(self, c1, c2):
        # |c1| >> |c0|, |c2|: the naive formula loses the small root to
        # cancellation; the copysign/product-of-roots form must not.
        c0 = 1.0
        ours = sorted(_quadratic_roots(c0, c1, c2))
        assert len(ours) == 2
        for r in ours:
            assert _residual_ok([c2, c1, c0], r, tol=1e-9)


# ----------------------------------------------------------------------
# Cardano / Ferrari kernels
# ----------------------------------------------------------------------
class TestCubicKernel:
    @given(
        rows=st.lists(
            st.tuples(lead, coeff, coeff, coeff), min_size=1, max_size=12
        )
    )
    @settings(max_examples=200)
    def test_candidates_cover_real_roots(self, rows):
        # Candidates are pre-polish *seeds*: the guaranteed contract is
        # coverage (every well-separated real root has a nearby
        # candidate for Newton to converge from), not that every
        # candidate is itself a root — the trig-slack and clamp
        # branches intentionally emit extra seeds near tangencies that
        # the downstream residual filter removes.
        desc = np.asarray(rows, dtype=float)
        cand, ok = cubic_candidates(desc)
        assert cand.shape == (len(rows), 3)
        for i, row in enumerate(rows):
            if not ok[i]:
                continue
            finite = [float(v) for v in cand[i][np.isfinite(cand[i])]]
            assert len(finite) >= 1  # a cubic always has a real root
            referee = _separated_real_roots(list(row))
            if referee is None:
                continue
            targets, scale = referee
            for t in targets:
                assert any(
                    abs(v - t) <= 1e-3 * max(1.0, scale) for v in finite
                ), (row, finite, t)

    @given(r=root_val, s=root_val, scale=lead)
    @settings(max_examples=200)
    def test_repeated_root_recovered(self, r, s, scale):
        assume(abs(r - s) > 0.5)
        desc = _poly_from_roots(scale, [r, r, s])
        cand, ok = cubic_candidates(np.asarray([desc]))
        assert ok[0]
        finite = sorted(float(v) for v in cand[0][np.isfinite(cand[0])])
        # sqrt-conditioning at the double root: 1e-16 coefficient noise
        # moves it by ~1e-8 before amplification by the simple root
        # nearby, so 1e-4 is a generous but meaningful bound.
        assert any(abs(v - r) <= 1e-4 * max(1.0, abs(r)) for v in finite)
        assert any(abs(v - s) <= 1e-4 * max(1.0, abs(s)) for v in finite)

    @given(r=root_val, scale=lead, eps=st.floats(min_value=1e-9, max_value=1e-7))
    @settings(max_examples=100)
    def test_near_multiple_cluster_stays_put(self, r, scale, eps):
        desc = _poly_from_roots(scale, [r, r + eps, r - eps])
        cand, ok = cubic_candidates(np.asarray([desc]))
        assert ok[0]
        finite = cand[0][np.isfinite(cand[0])]
        assert len(finite) >= 1
        for v in finite:
            assert abs(float(v) - r) <= 1e-4 * max(1.0, abs(r))

    @given(
        rows=st.lists(
            st.tuples(lead, coeff, coeff, coeff), min_size=2, max_size=10
        ),
        data=st.data(),
    )
    @settings(max_examples=150)
    def test_partition_invariance(self, rows, data):
        # A row's candidates are bit-identical solved alone vs batched
        # with arbitrary other rows — the property the scalar path's
        # delegation to the batch kernel relies on.
        desc = np.asarray(rows, dtype=float)
        batch_cand, batch_ok = cubic_candidates(desc)
        i = data.draw(st.integers(min_value=0, max_value=len(rows) - 1))
        solo_cand, solo_ok = cubic_candidates(desc[i : i + 1])
        assert bool(solo_ok[0]) == bool(batch_ok[i])
        np.testing.assert_array_equal(solo_cand[0], batch_cand[i])


class TestQuarticKernel:
    @given(
        rows=st.lists(
            st.tuples(lead, coeff, coeff, coeff, coeff),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=200)
    def test_candidates_cover_real_roots(self, rows):
        # Same seed-coverage contract as the cubic (near-biquadratic
        # rows route through the biquadratic branch precisely so this
        # radius holds — Ferrari's q/(2s) shift would amplify resolvent
        # rounding far past it).
        desc = np.asarray(rows, dtype=float)
        cand, ok = quartic_candidates(desc)
        assert cand.shape == (len(rows), 4)
        for i, row in enumerate(rows):
            if not ok[i]:
                continue
            finite = [float(v) for v in cand[i][np.isfinite(cand[i])]]
            referee = _separated_real_roots(list(row))
            if referee is None:
                continue
            targets, scale = referee
            for t in targets:
                assert any(
                    abs(v - t) <= 1e-3 * max(1.0, scale) for v in finite
                ), (row, finite, t)

    @given(r=root_val, s=root_val, u=root_val, scale=lead)
    @settings(max_examples=200)
    def test_repeated_root_recovered(self, r, s, u, scale):
        assume(min(abs(r - s), abs(r - u), abs(s - u)) > 0.5)
        desc = _poly_from_roots(scale, [r, r, s, u])
        cand, ok = quartic_candidates(np.asarray([desc]))
        assert ok[0]
        finite = [float(v) for v in cand[0][np.isfinite(cand[0])]]
        for target in (r, s, u):
            assert any(
                abs(v - target) <= 1e-4 * max(1.0, abs(target))
                for v in finite
            )

    def test_biquadratic_branch(self):
        # q == 0 after depression: t^4 - 5 t^2 + 4 = (t^2-1)(t^2-4).
        cand, ok = quartic_candidates(
            np.asarray([[1.0, 0.0, -5.0, 0.0, 4.0]])
        )
        assert ok[0]
        got = sorted(float(v) for v in cand[0][np.isfinite(cand[0])])
        assert got == pytest.approx([-2.0, -1.0, 1.0, 2.0], abs=1e-9)

    @given(
        rows=st.lists(
            st.tuples(lead, coeff, coeff, coeff, coeff),
            min_size=2,
            max_size=10,
        ),
        data=st.data(),
    )
    @settings(max_examples=150)
    def test_partition_invariance(self, rows, data):
        desc = np.asarray(rows, dtype=float)
        batch_cand, batch_ok = quartic_candidates(desc)
        i = data.draw(st.integers(min_value=0, max_value=len(rows) - 1))
        solo_cand, solo_ok = quartic_candidates(desc[i : i + 1])
        assert bool(solo_ok[0]) == bool(batch_ok[i])
        np.testing.assert_array_equal(solo_cand[0], batch_cand[i])


class TestStableQuadraticBatch:
    @given(b=coeff, c=coeff)
    @settings(max_examples=200)
    def test_monic_roots(self, b, c):
        r1, r2, has_real = _stable_quadratic_batch(
            np.asarray([b]), np.asarray([c])
        )
        disc = b * b - 4.0 * c
        if disc > 1e-9 * max(b * b, abs(4.0 * c), 1.0):
            assert has_real[0]
            for r in (float(r1[0]), float(r2[0])):
                assert _residual_ok([1.0, b, c], r, tol=1e-7)
        elif disc < -1e-9 * max(b * b, abs(4.0 * c), 1.0):
            assert not has_real[0]
            assert math.isnan(float(r1[0])) and math.isnan(float(r2[0]))

    def test_disc_clamp_tangential_pair(self):
        # (y + 1)^2 perturbed one ulp negative: clamped to the vertex
        # double root instead of dropping to complex.
        b = np.asarray([2.0])
        c = np.asarray([1.0 + 1e-15])
        r1, r2, has_real = _stable_quadratic_batch(b, c)
        assert has_real[0]
        assert float(r1[0]) == pytest.approx(-1.0, abs=1e-7)
        assert float(r2[0]) == pytest.approx(-1.0, abs=1e-7)


# ----------------------------------------------------------------------
# dispatcher: fallback accounting and on/off parity
# ----------------------------------------------------------------------
class TestDispatcher:
    def test_eigval_fallback_on_overflowing_monic_ratio(self):
        # Leading coefficient ~1e-140 against ~1e140 companions: the
        # monic normalization squares past the float64 ceiling inside
        # Cardano, the kernel reports ok=False, and the row must take
        # the companion eigensolve path (fallback tally) instead of
        # erroring or returning garbage.
        # The infinite domain matters: over a finite one, _deflate's
        # contribution guard would drop the negligible leading term and
        # the row would never reach the cubic kernel.
        before = closed_form_stats()["fallback_rows"]
        rows = [((1e140, 1e140, 1e140, 1e-140), -math.inf, math.inf)]
        got = real_roots_rows(rows)
        after = closed_form_stats()["fallback_rows"]
        assert after == before + 1
        saved = SOLVER_CONFIG.closed_form
        SOLVER_CONFIG.closed_form = False
        try:
            expect = real_roots_rows(rows)
        finally:
            SOLVER_CONFIG.closed_form = saved
        assert got == expect

    def test_ok_rows_do_not_touch_fallback_tally(self):
        before = closed_form_stats()
        real_roots_rows([((-6.0, 11.0, -6.0, 1.0), *DOMAIN)])
        after = closed_form_stats()
        assert after["fallback_rows"] == before["fallback_rows"]
        assert after["rows"] == before["rows"] + 1

    @given(
        polys=st.lists(
            st.lists(coeff, min_size=4, max_size=6).filter(
                lambda c: c[-1] != 0.0
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_closed_form_toggle_parity(self, polys):
        # Skip conditioning-bound rows: near-multiple true roots make
        # count parity physically unattainable for any kernel pair.
        for c in polys:
            ref = np.roots(list(reversed(c)))
            for i in range(len(ref)):
                for j in range(i + 1, len(ref)):
                    assume(
                        abs(ref[i] - ref[j])
                        > 1e-3 * max(1.0, abs(ref[i]))
                    )
        rows = [(tuple(c), *DOMAIN) for c in polys]
        saved = SOLVER_CONFIG.closed_form
        try:
            SOLVER_CONFIG.closed_form = True
            on = real_roots_rows(rows)
            SOLVER_CONFIG.closed_form = False
            off = real_roots_rows(rows)
        finally:
            SOLVER_CONFIG.closed_form = saved
        assert len(on) == len(off)
        for a_list, b_list in zip(on, off):
            assert len(a_list) == len(b_list)
            for a, b in zip(a_list, b_list):
                assert abs(a - b) <= 1e-7 * max(1.0, abs(a), abs(b))
