"""Property-based cross-engine equivalence.

The deepest invariant in the reproduction: for any models and predicate,
the continuous solution's membership function agrees with discrete
evaluation of the same models at (almost) every instant — the two
processing paths compute the same query, they just walk time
differently.  Disagreement is allowed only within numeric tolerance of
predicate boundaries (the paper's Section IV-A false positives /
negatives).
"""

import math

from hypothesis import assume, given, settings, strategies as st

from repro.core.equation_system import EquationSystem
from repro.core.expr import Attr, Const
from repro.core.operators import ContinuousFilter, ContinuousJoin
from repro.core.polynomial import Polynomial
from repro.core.predicate import And, Comparison, Or
from repro.core.relation import Rel
from repro.core.segment import Segment

coeff = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)
poly2 = st.lists(coeff, min_size=1, max_size=3).map(Polynomial)
rels = st.sampled_from([Rel.LT, Rel.LE, Rel.GT, Rel.GE])

DOMAIN = (0.0, 10.0)
PROBES = [DOMAIN[0] + (DOMAIN[1] - DOMAIN[0]) * (i + 0.5) / 37 for i in range(37)]


def _boundary_tolerant_check(solution, predicate_value_fn, rel):
    """Solution membership matches sign evaluation away from boundaries."""
    for t in PROBES:
        value = predicate_value_fn(t)
        if abs(value) < 1e-6:
            continue  # boundary: either answer is acceptable
        assert solution.contains(t) == rel.holds(value), t


@given(poly2, poly2, rels)
@settings(max_examples=100)
def test_two_model_system_matches_pointwise(px, py, rel):
    models = {"x": px, "y": py}
    pred = Comparison(Attr("x"), rel, Attr("y"))
    system = EquationSystem.from_predicate(pred, models.__getitem__)
    sol = system.solve(*DOMAIN)
    diff = px - py
    _boundary_tolerant_check(sol, diff, rel)


@given(poly2, poly2, coeff, rels, rels)
@settings(max_examples=100)
def test_conjunction_matches_pointwise(px, py, c, rel1, rel2):
    models = {"x": px, "y": py}
    pred = And(
        Comparison(Attr("x"), rel1, Attr("y")),
        Comparison(Attr("x"), rel2, Const(c)),
    )
    system = EquationSystem.from_predicate(pred, models.__getitem__)
    sol = system.solve(*DOMAIN)
    d1 = px - py
    d2 = px - c
    for t in PROBES:
        v1, v2 = d1(t), d2(t)
        if min(abs(v1), abs(v2)) < 1e-6:
            continue
        expected = rel1.holds(v1) and rel2.holds(v2)
        assert sol.contains(t) == expected, t


@given(poly2, coeff, coeff, rels, rels)
@settings(max_examples=100)
def test_disjunction_matches_pointwise(px, c1, c2, rel1, rel2):
    models = {"x": px}
    pred = Or(
        Comparison(Attr("x"), rel1, Const(c1)),
        Comparison(Attr("x"), rel2, Const(c2)),
    )
    system = EquationSystem.from_predicate(pred, models.__getitem__)
    sol = system.solve(*DOMAIN)
    for t in PROBES:
        v1 = px(t) - c1
        v2 = px(t) - c2
        if min(abs(v1), abs(v2)) < 1e-6:
            continue
        expected = rel1.holds(v1) or rel2.holds(v2)
        assert sol.contains(t) == expected, t


@given(poly2, coeff, rels)
@settings(max_examples=100)
def test_filter_operator_matches_direct_solution(px, c, rel):
    """The filter's emitted segments cover exactly the solution set."""
    seg = Segment(("k",), *DOMAIN, {"x": px})
    f = ContinuousFilter(Comparison(Attr("x"), rel, Const(c)))
    outputs = f.process(seg)
    covered = sum(o.duration for o in outputs if not o.is_point)
    from repro.core.roots import solve_relation

    sol = solve_relation(px - c, rel, *DOMAIN)
    assert math.isclose(covered, sol.measure, abs_tol=1e-6)


@given(poly2, poly2, rels)
@settings(max_examples=60, deadline=None)
def test_join_pair_matches_pointwise(px, py, rel):
    """One aligned join pair agrees with pointwise discrete comparison."""
    j = ContinuousJoin(Comparison(Attr("L.x"), rel, Attr("R.y")))
    left = Segment(("a",), *DOMAIN, {"x": px})
    right = Segment(("b",), *DOMAIN, {"y": py})
    j.process(left, port=0)
    outputs = j.process(right, port=1)
    diff = px - py
    for t in PROBES:
        value = diff(t)
        if abs(value) < 1e-6:
            continue
        in_output = any(o.contains_time(t) for o in outputs if not o.is_point)
        assert in_output == rel.holds(value), t
