"""Crash-recovery chaos: SIGKILL a live server, restart, prove parity.

The harness kills a **real child process** (no graceful WAL close, no
``atexit``) at randomized points mid-trace, restarts it on the same
port against the same WAL directory, and asserts the strongest claim
durability can make: the restarted engine's remaining outputs are
**bit-exact** against an unkilled reference fed the identical trace.
JSON floats round-trip at ``repr`` precision, so plain ``==`` on the
serialized results is exact, not approximate.

The client side doubles as the reconnect satellite's integration test:
after the kill it reconnects with bounded exponential backoff while the
replacement server is still recovering, re-binds to the recovered
subscription table (either ``attach``-ing its durable subscriptions or
subscribing fresh — session bindings die with the process), reads the
durable resume offset from ``stats``, and resumes ingest from exactly
there — the at-least-once contract.
"""

import json
import os
import signal
import subprocess
import sys
import time
import random

import pytest

from repro.server.client import PulseClient, ServerError

pytestmark = pytest.mark.resilience

QUERY = "select * from ticks where x > 0"
STREAM = "ticks"
FIT = {"attrs": ["x"], "key_fields": ["sym"]}
BOUND = 0.05
N_TUPLES = 64


def make_trace(n=N_TUPLES, seed=29):
    """Two interleaved piecewise-linear keys; deterministic."""
    rng = random.Random(seed)
    clocks = {"a": 0.0, "b": 0.0}
    out = []
    for _ in range(n):
        key = rng.choice("ab")
        clocks[key] += rng.uniform(0.3, 1.0)
        t = clocks[key]
        out.append(
            {"time": t, "sym": key, "x": 2.5 * t + rng.uniform(-0.02, 0.02)}
        )
    return out


TRACE = make_trace()


class ChildServer:
    """One chaos_server subprocess; killable, restartable on its port."""

    def __init__(self, wal_dir, port=0):
        self.wal_dir = str(wal_dir)
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.testing.chaos_server",
                self.wal_dir,
                str(port),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
        )
        line = self.proc.stdout.readline()
        if not line.startswith("PORT "):
            err = self.proc.stderr.read()
            raise RuntimeError(f"child failed to start: {line!r}\n{err}")
        self.port = int(line.split()[1])

    def kill(self):
        self.proc.kill()  # SIGKILL: the crash being tested
        self.proc.wait(timeout=10)

    def terminate(self):
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)


def setup_session(client):
    client.connect()
    client.register("q", QUERY, fit=FIT)
    client.subscribe("q", "continuous", BOUND)


def reference_outputs():
    """Unkilled reference: results delivered after each tuple's ack.

    The bridge resolves every command future only after the
    post-command pump delivered its outputs, so ``ingest(i)`` returning
    means every result tuple *i* caused is already buffered — per-index
    attribution needs no sleeping.
    """
    from repro.server.server import ServerConfig, ServerThread

    per_index = []
    with ServerThread(ServerConfig()) as handle:
        client = PulseClient("127.0.0.1", handle.port)
        setup_session(client)
        for tup in TRACE:
            client.ingest(STREAM, [tup])
            per_index.append(client.drain_results())
        client.flush()
        flush_results = client.drain_results()
        client.close()
    return per_index, flush_results


@pytest.fixture(scope="module")
def reference():
    return reference_outputs()


def run_killed_trace(tmp_path, kill_at, reference):
    ref_per_index, ref_flush = reference
    child = ChildServer(tmp_path)
    try:
        client = PulseClient(
            "127.0.0.1",
            child.port,
            reconnect_attempts=8,
            reconnect_base_s=0.05,
        )
        setup_session(client)
        for tup in TRACE[:kill_at]:
            client.ingest(STREAM, [tup])
        child.kill()
        # The next request must fail — the server is really dead.
        with pytest.raises((ServerError, OSError)):
            client.ingest(STREAM, [TRACE[kill_at]])
            client.ingest(STREAM, [TRACE[kill_at]])

        # Restart on the same port; reconnect rides its backoff while
        # the replacement recovers (snapshot load + WAL-tail replay).
        child.terminate()
        child = ChildServer(tmp_path, port=child.port)
        client.reconnect()
        client.pushed.clear()  # dead session's buffered pushes

        stats = client.stats()["engine"]
        durability = stats["durability"]
        recovery = durability["recovery"]
        resumed = durability["ingest_tuples"]
        # fsync_every=1: every acked tuple is durable.  The recovered
        # offset may trail by the one un-acked in-flight tuple, never
        # more, and never exceeds what was sent.
        assert kill_at - 1 <= resumed <= kill_at + 1
        assert recovery is not None
        assert recovery["wal"]["corrupt_frames"] == 0
        # Replay reconverged the enqueue counter with history.
        assert stats["items_enqueued"] >= 0

        # Resume: re-subscribe, ingest the remainder from the durable
        # offset, and compare bit-exactly per index.
        client.subscribe("q", "continuous", BOUND)
        for i in range(resumed, N_TUPLES):
            client.ingest(STREAM, [TRACE[i]])
            got = client.drain_results()
            assert got == ref_per_index[i], (
                f"kill@{kill_at}: outputs diverged at tuple {i}"
            )
        client.flush()
        assert client.drain_results() == ref_flush
        final = client.stats()["engine"]
        assert final["durability"]["ingest_tuples"] == N_TUPLES
        client.close()
        return recovery
    finally:
        child.terminate()


def test_sigkill_recovery_is_bit_exact(tmp_path, reference):
    """SIGKILL at ≥3 randomized offsets; remaining outputs bit-exact."""
    rng = random.Random(0xD1E)
    offsets = sorted(rng.sample(range(8, N_TUPLES - 8), 3))
    reports = []
    for kill_at in offsets:
        wal_dir = tmp_path / f"kill-{kill_at}"
        reports.append(run_killed_trace(wal_dir, kill_at, reference))
    # With checkpoint_every=7 at least the later kills must have
    # recovered *through a snapshot*, not just replayed from genesis.
    assert any(r["snapshot_seq"] > 0 for r in reports)


def test_torn_wal_tail_recovers_without_crashing(tmp_path, reference):
    """Chop the fsynced tail post-kill: recovery skips it, counted."""
    ref_per_index, ref_flush = reference
    kill_at = 20
    child = ChildServer(tmp_path)
    try:
        client = PulseClient(
            "127.0.0.1", child.port, reconnect_attempts=8
        )
        setup_session(client)
        for tup in TRACE[:kill_at]:
            client.ingest(STREAM, [tup])
        child.kill()

        # Tear the newest WAL file mid-frame, as a dying disk would.
        logs = sorted(
            f for f in os.listdir(tmp_path) if f.endswith(".log")
        )
        newest = os.path.join(tmp_path, logs[-1])
        with open(newest, "r+b") as fh:
            fh.truncate(os.path.getsize(newest) - 7)

        child = ChildServer(tmp_path, port=child.port)
        client.reconnect()
        client.pushed.clear()
        durability = client.stats()["engine"]["durability"]
        recovery = durability["recovery"]
        resumed = durability["ingest_tuples"]
        # The torn record is lost (at-least-once), counted, not fatal.
        assert recovery["wal"]["torn_tails"] == 1
        assert kill_at - 2 <= resumed <= kill_at

        client.subscribe("q", "continuous", BOUND)
        for i in range(resumed, N_TUPLES):
            client.ingest(STREAM, [tup := TRACE[i]])
            assert client.drain_results() == ref_per_index[i]
        client.flush()
        assert client.drain_results() == ref_flush
        client.close()
    finally:
        child.terminate()


def test_sigkill_mid_churn_recovers_subscription_table(tmp_path):
    """SIGKILL with a churned subscription table: several bounds live,
    a relax re-solve already performed, cursors advanced.  Recovery
    must restore the table bit-exactly (same ids, bounds, solve bound,
    cursors — only the session attachment dies with the process), and
    ``attach`` must resume each subscription at its recovered cursor
    with identical fan-out from there on."""
    child = ChildServer(tmp_path)
    try:
        client = PulseClient(
            "127.0.0.1", child.port, reconnect_attempts=8
        )
        client.connect()
        client.register("q", QUERY, fit=FIT)
        subs = {}
        for bound in (0.005, 0.01, 0.05, 0.2, 1.0):
            ack = client.subscribe("q", "continuous", bound)
            subs[ack["subscription"]] = ack
        # churn: the tightest leaves (relax re-solve 0.005 -> 0.01),
        # and so does the loosest (no bound change)
        for gone_bound in (0.005, 1.0):
            sid = next(
                s for s, a in subs.items()
                if a["error_bound"] == gone_bound
            )
            client.unsubscribe(sid)
            del subs[sid]
        for tup in TRACE[:24]:
            client.ingest(STREAM, [tup])
        before = client.stats()["engine"]["subscriptions"]
        assert set(before) == {str(s) for s in subs}
        # the 0.01 solve bound against ±0.02 noise forces real cuts,
        # so cursors are non-trivially advanced before the crash
        assert any(row["cursor"] > 0 for row in before.values())
        child.kill()

        child.terminate()
        child = ChildServer(tmp_path, port=child.port)
        client.reconnect()
        client.pushed.clear()
        after = client.stats()["engine"]["subscriptions"]

        def strip(table):
            return {
                sid: {f: v for f, v in row.items() if f != "attached"}
                for sid, row in table.items()
            }

        assert strip(after) == strip(before)  # bit-exact recovery
        assert all(not row["attached"] for row in after.values())

        for sid, ack0 in subs.items():
            att = client.attach(sid)
            assert att["cursor"] == before[str(sid)]["cursor"]
            assert att["error_bound"] == ack0["error_bound"]
            assert att["graph"] == ack0["graph"]
        # the owning session may re-attach idempotently (the router's
        # fleet recovery resumes worker subscriptions this way) ...
        first = next(iter(subs))
        again = client.attach(first)
        assert again["cursor"] == before[str(first)]["cursor"]
        # ... but a subscription bound to a live session cannot be
        # stolen by a *different* session
        thief = PulseClient("127.0.0.1", child.port)
        try:
            thief.connect()
            with pytest.raises(ServerError):
                thief.attach(first)
        finally:
            thief.close()

        for tup in TRACE[24:]:
            client.ingest(STREAM, [tup])
        client.flush()
        per_sub = {}
        for msg in client.pushed:
            if msg.get("type") == "result":
                per_sub.setdefault(msg["subscription"], []).extend(
                    msg["results"]
                )
        assert set(per_sub) == set(subs)
        # one shared graph: every subscriber saw the identical stream
        streams = {
            json.dumps(results, sort_keys=True)
            for results in per_sub.values()
        }
        assert len(streams) == 1
        client.close()
    finally:
        child.terminate()


def test_reconnect_exhausts_when_server_stays_dead(tmp_path):
    from repro.server.client import ReconnectExhausted

    child = ChildServer(tmp_path)
    client = PulseClient(
        "127.0.0.1",
        child.port,
        reconnect_attempts=3,
        reconnect_base_s=0.01,
        reconnect_max_s=0.05,
    )
    client.connect()
    child.kill()
    start = time.perf_counter()
    with pytest.raises(ReconnectExhausted) as exc:
        client.reconnect()
    elapsed = time.perf_counter() - start
    assert exc.value.attempts == 3
    assert isinstance(exc.value.last_error, OSError)
    # Backoff is bounded: 3 attempts at these knobs sleep well under a
    # second in total (jitter at most doubles each delay).
    assert elapsed < 2.0
