"""Property: the router's merged stream is bit-exact against a single
server, for randomized key interleavings across 2-4 workers.

Hypothesis draws an ingest script — random key sequences (so runs
fragment differently every example), random batch splits, interleaved
flush barriers — and executes it twice: through a router over N
in-process workers, and through one plain server.  The merged
subscriber stream must equal the single-server stream bit for bit, in
both engine modes, for every drawn interleaving and every fleet width.

One key is *poisoned*: its fitted models carry a content marker that
faults the solver (value-addressed, exactly like the subscription
parity suite), so the circuit breaker trips for that key — on the one
worker that owns it in the fleet, and on the single server in the
reference.  Faults are confined by key either way, so the merged
stream still matches: breaker quarantine is topology-independent.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batch_solver import set_fault_hook
from repro.core.errors import SolverError
from repro.core.solve_cache import (
    reset_global_solve_cache,
    reset_worker_root_cache,
)
from repro.engine.metrics import reset_counters
from repro.engine.resilience import BreakerConfig
from repro.server import (
    PulseClient,
    PulseRouter,
    RouterConfig,
    ServerConfig,
    ServerThread,
)

QUERY = "select * from ticks where x > 0"
STREAM = "ticks"
FIT = {"attrs": ["x"], "key_fields": ["sym"]}
BOUND = 0.05
KEYS = ("a", "b", "c", "d", "e", "poison")
POISON_LEVEL = 500.0


def _content_fault(task):
    poly = task[0]
    if max(abs(c) for c in poly.coeffs) >= POISON_LEVEL:
        raise SolverError("poisoned content marker")
    return task


def _breaker():
    return BreakerConfig(failure_threshold=2, backoff=10_000)


def _reset():
    reset_global_solve_cache()
    reset_worker_root_cache()
    reset_counters()


@st.composite
def scripts(draw):
    """(num_workers, events): ingest batches and flush barriers over a
    monotone clock, with occasional poisoned content."""
    num_workers = draw(st.integers(min_value=2, max_value=4))
    events = []
    t = 0.0
    for _ in range(draw(st.integers(min_value=3, max_value=7))):
        if events and draw(st.booleans()) and draw(st.booleans()):
            events.append(("flush",))
            continue
        chunk = []
        for _ in range(draw(st.integers(1, 12))):
            key = draw(st.sampled_from(KEYS))
            x = float(draw(st.integers(-3, 3)))
            if key == "poison" and draw(st.booleans()):
                x = 2 * POISON_LEVEL
            chunk.append({"time": t, "sym": key, "x": x})
            t += 0.25
        events.append(("ingest", tuple(chunk)))
    events.append(("flush",))
    return num_workers, events


def drive(client, events, mode):
    client.register("q", QUERY, fit=FIT)
    kwargs = (
        {"mode": "discrete"} if mode == "discrete"
        else {"error_bound": BOUND}
    )
    sub = client.subscribe("q", **kwargs)
    for event in events:
        if event[0] == "flush":
            client.flush()
        else:
            client.ingest(STREAM, list(event[1]))
    client.flush()
    return client.drain_results(sub["subscription"])


def run_single(events, mode):
    _reset()
    config = ServerConfig(breaker=_breaker())
    with ServerThread(config) as handle:
        with PulseClient("127.0.0.1", handle.port) as client:
            client.connect()
            return drive(client, events, mode)


def run_fleet(num_workers, events, mode):
    _reset()
    handles = []
    router = None
    try:
        for _ in range(num_workers):
            handles.append(
                ServerThread(ServerConfig(breaker=_breaker())).start()
            )
        addrs = tuple(("127.0.0.1", h.port) for h in handles)
        router = PulseRouter(RouterConfig(workers=addrs)).start()
        with PulseClient("127.0.0.1", router.port) as client:
            client.connect()
            return drive(client, events, mode)
    finally:
        if router is not None:
            router.stop()
        for handle in handles:
            handle.stop()


@pytest.mark.parametrize("mode", ["discrete", "continuous"])
@given(script=scripts())
@settings(max_examples=8, deadline=None)
def test_merged_stream_matches_single_server(mode, script):
    num_workers, events = script
    previous = set_fault_hook(_content_fault)
    try:
        single = run_single(events, mode)
        merged = run_fleet(num_workers, events, mode)
    finally:
        set_fault_hook(previous)
    assert merged == single  # bit-exact: same values, same order
