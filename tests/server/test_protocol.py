"""Unit tests for the NDJSON wire protocol (framing + validation)."""

import json
import math

import pytest

from repro.core.errors import PulseError
from repro.core.polynomial import Polynomial
from repro.core.segment import Segment
from repro.server.protocol import (
    ProtocolError,
    decode_line,
    encode,
    error_response,
    serialize_results,
    serialize_segment,
    serialize_tuple,
    validate_request,
    validate_tuple,
)


class TestFraming:
    def test_encode_is_one_line(self):
        data = encode({"op": "hello", "id": 1})
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1
        assert json.loads(data) == {"op": "hello", "id": 1}

    def test_encode_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            encode({"x": float("nan")})
        with pytest.raises(ValueError):
            encode({"x": float("inf")})

    def test_decode_roundtrip(self):
        obj = {"op": "ingest", "tuples": [{"time": 0.1, "x": 1.5}]}
        assert decode_line(encode(obj)) == obj

    def test_decode_rejects_bad_json(self):
        with pytest.raises(ProtocolError):
            decode_line(b"{nope\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_line(b"[1,2,3]\n")

    def test_decode_rejects_bad_utf8(self):
        with pytest.raises(ProtocolError):
            decode_line(b"\xff\xfe{}\n")

    def test_float_roundtrip_is_bit_exact(self):
        values = [0.1, 1 / 3, 1e-17, 2.0000000000000013, math.pi]
        out = decode_line(encode({"v": values}))
        assert out["v"] == values  # exact equality, not approx


class TestRequestEnvelope:
    def test_valid_ops(self):
        for op in ("hello", "register", "subscribe", "ingest", "flush"):
            assert validate_request({"op": op}) == op

    def test_missing_op(self):
        with pytest.raises(ProtocolError):
            validate_request({"id": 1})

    def test_unknown_op(self):
        with pytest.raises(ProtocolError):
            validate_request({"op": "explode"})

    def test_bad_id_type(self):
        with pytest.raises(ProtocolError):
            validate_request({"op": "hello", "id": [1]})


class TestTupleValidation:
    def test_accepts_flat_tuple(self):
        tup = validate_tuple({"time": 0.5, "id": "a", "x": 1.0, "ok": True})
        assert tup["time"] == 0.5
        assert tup["id"] == "a"

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            validate_tuple([1, 2])

    def test_rejects_missing_time(self):
        with pytest.raises(ProtocolError):
            validate_tuple({"x": 1.0})

    def test_rejects_boolean_time(self):
        with pytest.raises(ProtocolError):
            validate_tuple({"time": True, "x": 1.0})

    def test_rejects_nested_containers(self):
        with pytest.raises(ProtocolError):
            validate_tuple({"time": 0.0, "x": {"nested": 1}})
        with pytest.raises(ProtocolError):
            validate_tuple({"time": 0.0, "x": [1.0]})

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_rejects_nonfinite_values(self, bad):
        with pytest.raises(ProtocolError) as info:
            validate_tuple({"time": 0.0, "x": bad})
        assert info.value.code == "nonfinite"

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_rejects_nonfinite_time(self, bad):
        with pytest.raises(ProtocolError) as info:
            validate_tuple({"time": bad, "x": 1.0})
        assert info.value.code == "nonfinite"

    def test_wire_nan_literal_is_rejected_after_json_parse(self):
        # json.loads admits the non-standard literals; the validator is
        # the boundary that keeps them out of the engine.
        obj = json.loads('{"time": 0.0, "x": NaN}')
        assert math.isnan(obj["x"])  # it really did parse
        with pytest.raises(ProtocolError):
            validate_tuple(obj)


class TestResultSerialization:
    def test_tuple(self):
        assert serialize_tuple({"time": 1.0, "x": 2.0}) == {
            "time": 1.0,
            "x": 2.0,
        }

    def test_segment(self):
        seg = Segment(
            ("a",),
            0.0,
            1.0,
            {"x": Polynomial([2.0, 0.5])},
            constants={"id": "a"},
        )
        out = serialize_segment(seg)
        assert out == {
            "key": ["a"],
            "t_start": 0.0,
            "t_end": 1.0,
            "models": {"x": [2.0, 0.5]},
            "constants": {"id": "a"},
        }
        # and it survives the encoder
        decode_line(encode(out))

    def test_mixed_results(self):
        seg = Segment(("a",), 0.0, 1.0, {"x": Polynomial([1.0])})
        out = serialize_results([seg, {"time": 0.0, "x": 1.0}])
        assert "models" in out[0]
        assert out[1]["x"] == 1.0


class TestErrorMapping:
    def test_protocol_error_keeps_code(self):
        msg = error_response(7, ProtocolError("bad", code="nonfinite"))
        assert msg == {
            "type": "error",
            "code": "nonfinite",
            "error": "bad",
            "id": 7,
        }

    def test_pulse_error_is_plan(self):
        assert error_response(None, PulseError("x"))["code"] == "plan"

    def test_other_is_server(self):
        assert error_response(None, RuntimeError("x"))["code"] == "server"

    def test_no_id_omitted(self):
        assert "id" not in error_response(None, PulseError("x"))
