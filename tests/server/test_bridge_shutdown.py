"""Bridge lifecycle: graceful drain, typed rejection, final checkpoint.

The shutdown contract: commands queued before ``stop()`` run to
completion (outputs delivered), anything later fails *fast* with a
typed :class:`BridgeClosed` — a future must never hang because the
engine thread it was waiting on quietly exited.
"""

import pytest

from repro.server.bridge import BridgeClosed, EngineBridge, FitSpec
from repro.server.client import PulseClient, ServerError
from repro.server.server import ServerConfig, ServerThread

QUERY = "select * from ticks where x > 0"
FIT = FitSpec(attrs=("x",), key_fields=("sym",))


def tuples(n=8):
    from repro.engine.tuples import StreamTuple

    return [
        StreamTuple({"time": float(i + 1), "sym": "a", "x": float(i + 1)})
        for i in range(n)
    ]


class TestGracefulShutdown:
    def test_queued_commands_drain_before_exit(self):
        bridge = EngineBridge()
        bridge.start()
        bridge.register_query("q", QUERY, FIT)
        bridge.subscribe(1, "q", "continuous", 0.05)
        futures = [
            bridge.ingest(None, "ticks", tuples(4))
            for _ in range(5)
        ]
        bridge.stop()
        # Every pre-stop command completed normally: drained, not
        # rejected.
        for future in futures:
            assert future.result(timeout=0)["accepted"] == 4

    def test_submit_after_stop_fails_typed(self):
        bridge = EngineBridge()
        bridge.start()
        bridge.stop()
        future = bridge.ingest(None, "ticks", tuples(1))
        with pytest.raises(BridgeClosed):
            future.result(timeout=0)

    def test_restart_after_stop_refused(self):
        bridge = EngineBridge()
        bridge.start()
        bridge.stop()
        with pytest.raises(BridgeClosed):
            bridge.start()

    def test_stop_without_start_rejects_queued(self):
        bridge = EngineBridge()
        future = bridge.flush()  # queued; engine thread never ran
        bridge.stop()
        with pytest.raises(BridgeClosed):
            future.result(timeout=0)

    def test_stop_is_idempotent(self):
        bridge = EngineBridge()
        bridge.start()
        bridge.stop()
        bridge.stop()  # second stop: no thread, no error, no hang

    def test_clean_stop_checkpoints_so_restart_replays_nothing(
        self, tmp_path
    ):
        wal = str(tmp_path)
        bridge = EngineBridge(wal_dir=wal, fsync_every=1)
        bridge.start()
        bridge.register_query("q", QUERY, FIT)
        bridge.ingest(None, "ticks", tuples(6)).result(timeout=10)
        bridge.stop()

        reborn = EngineBridge(wal_dir=wal, fsync_every=1)
        reborn.start()
        report = reborn.recovery_report
        assert report["replayed"] == 0  # the final checkpoint covered it
        assert reborn.ingest_tuples == 6
        reborn.stop()


class TestReconnectSession:
    def test_reconnect_restores_policy_and_session(self):
        with ServerThread(ServerConfig()) as handle:
            client = PulseClient(
                "127.0.0.1",
                handle.port,
                reconnect_attempts=4,
                reconnect_base_s=0.01,
            )
            client.connect(backpressure="shed-newest")
            client.register("q", QUERY, fit=dict(FIT.__dict__))
            # Simulate a dropped connection (both directions torn).
            import socket

            client._sock.shutdown(socket.SHUT_RDWR)
            with pytest.raises((ServerError, OSError)):
                client.stats()
            hello = client.reconnect()
            assert hello["type"] == "hello"
            # The pinned policy re-rides the fresh hello, and the new
            # session is fully functional against surviving state.
            assert client._backpressure == "shed-newest"
            assert "q" in client.stats()["engine"]["queries"]
