"""Tests for the network ingest/subscribe server."""
