"""Subscription churn soak: 1k subscribe→ingest→unsubscribe cycles.

The shared-plan runtime's cleanup contract: the *last* unsubscribe
tears the shared graph down completely — runtime registration, delta
tracker, fitting builders — so unbounded subscription churn leaves the
process exactly where it started.  Asserted two ways:

* the ``subs.active`` / ``subs.shared_graphs`` gauges read zero (and
  the bridge's stats tables are empty) after the soak, and
* ``gc``-level object counts for the leak-prone classes
  (``_SharedGraph``, scheduler ``_Registration``, ``DeltaTracker``,
  ``StreamModelBuilder``) return to their pre-churn baseline.

Each cycle also exercises the retarget machinery (a tight and a loose
subscriber join, the tight one leaves first → one relax re-solve per
cycle), so the soak covers the full tighten/relax/teardown path, not
just the no-op join.
"""

import gc

from repro.core.delta import DeltaTracker
from repro.engine.metrics import get_counter, get_gauge
from repro.engine.scheduler import _Registration
from repro.engine.tuples import StreamTuple
from repro.fitting.model_builder import StreamModelBuilder
from repro.server.bridge import EngineBridge, FitSpec, _SharedGraph

SQL = "select * from objects where x > 0"
STREAM = "objects"
FIT = FitSpec(attrs=("x",), key_fields=("id",))
CYCLES = 1000
#: Classes whose live-instance count must return to baseline.
TRACKED = (_SharedGraph, _Registration, DeltaTracker, StreamModelBuilder)


def _live(cls) -> int:
    gc.collect()
    return sum(1 for obj in gc.get_objects() if type(obj) is cls)


def test_churn_soak_leaves_zero_residue():
    bridge = EngineBridge()
    bridge.start()
    try:
        bridge.register_query("q", SQL, FIT).result()
        baseline = {cls: _live(cls) for cls in TRACKED}
        active = get_gauge("subs.active")
        graphs = get_gauge("subs.shared_graphs")
        retightens = get_counter("subs.retighten_resolves")
        retightens_before = retightens.value
        t = 0.0
        for i in range(CYCLES):
            tight_id, loose_id = 2 * i + 1, 2 * i + 2
            tight = bridge.subscribe(
                tight_id, "q", "continuous", 0.01
            ).result()
            loose = bridge.subscribe(
                loose_id, "q", "continuous", 1.0
            ).result()
            assert tight["graph"] == loose["graph"]
            assert active.value == 2
            assert graphs.value == 1
            # a zig-zag no line fits at 0.01: forces real segment cuts
            batch = [
                StreamTuple(
                    {"time": t + j * 0.1, "id": "k", "x": float(5 * (j % 2))}
                )
                for j in range(4)
            ]
            t += 1.0
            ack = bridge.ingest(None, STREAM, batch).result()
            assert ack["accepted"] == 4
            if i % 100 == 0:
                bridge.flush().result()
            # tightest leaves first: one relax re-solve per cycle
            bridge.unsubscribe(tight_id).result()
            # last leaves: full teardown
            bridge.unsubscribe(loose_id).result()
            assert active.value == 0
            assert graphs.value == 0
        assert retightens.value - retightens_before == CYCLES
        stats = bridge.stats().result()
        assert stats["graphs"] == {}
        assert stats["subscriptions"] == {}
        assert stats["total_pending"] == 0
        assert not stats["queue_depths"]
        for cls in TRACKED:
            assert _live(cls) <= baseline[cls], (
                f"{cls.__name__} instances leaked across churn"
            )
    finally:
        bridge.stop()


def test_discrete_churn_also_tears_down():
    """Discrete subscriptions (no bounds, no builders) follow the same
    last-out-tears-down rule."""
    bridge = EngineBridge()
    bridge.start()
    try:
        bridge.register_query("q", SQL, None).result()
        graphs = get_gauge("subs.shared_graphs")
        for i in range(50):
            bridge.subscribe(i + 1, "q", "discrete", None).result()
            ack = bridge.ingest(
                None,
                STREAM,
                [StreamTuple({"time": float(i), "id": "k", "x": 1.0})],
            ).result()
            assert ack["accepted"] == 1
            bridge.unsubscribe(i + 1).result()
            assert graphs.value == 0
        stats = bridge.stats().result()
        assert stats["graphs"] == {}
    finally:
        bridge.stop()
