"""Fleet chaos: SIGKILL a worker mid-ingest; the merged stream must
not tear.

Three durable subprocess workers sit behind an in-process router.  One
of them is SIGKILLed — no atexit, no WAL close — while the client is
streaming, then restarted on the same port with the same WAL dir.  The
router rides the outage with its fleet recovery protocol (bounded
reconnect, ``attach(from_cursor)`` replay from the worker's retained
tail, retransmission of un-persisted tuples), and the subscriber-side
assertion is the strongest one available: the merged result stream is
**bit-exact** against an unkilled single-engine reference — no
duplicate, no gap, no reordering, wherever the kill happened to land.
"""

import threading

import pytest

from repro.core.transform import to_continuous_plan
from repro.engine.lowering import to_discrete_plan
from repro.engine.tuples import StreamTuple
from repro.fitting.model_builder import StreamModelBuilder
from repro.query import parse_query, plan_query
from repro.server import PulseClient, PulseRouter, RouterConfig
from repro.server.protocol import serialize_results
from repro.testing.chaos_server import WorkerFleet
from repro.workloads import MovingObjectConfig, MovingObjectGenerator

pytestmark = pytest.mark.resilience

QUERY = "select * from objects where x > 0"
STREAM = "objects"
FIT = {"attrs": ["x", "y"], "key_fields": ["id"]}
BOUND = 0.05
NUM_WORKERS = 3


def moving_tuples(n, seed=11):
    gen = MovingObjectGenerator(MovingObjectConfig(rate=float(n), seed=seed))
    return [dict(t) for t in gen.tuples(n)]


def discrete_reference(tuples):
    query = to_discrete_plan(plan_query(parse_query(QUERY)))
    outputs = []
    for tup in tuples:
        outputs.extend(query.push(STREAM, StreamTuple(tup)))
    outputs.extend(query.flush())
    return serialize_results(outputs)


def continuous_reference(tuples, bound=BOUND):
    builder = StreamModelBuilder(
        tuple(FIT["attrs"]),
        bound,
        key_fields=tuple(FIT["key_fields"]),
        constants=tuple(FIT["key_fields"]),
    )
    query = to_continuous_plan(plan_query(parse_query(QUERY)))
    outputs = []
    for tup in tuples:
        for seg in builder.add(StreamTuple(tup)):
            outputs.extend(query.push(STREAM, seg))
    for seg in builder.finish():
        outputs.extend(query.push(STREAM, seg))
    return serialize_results(outputs)


def run_fleet(tmp_path, tuples, mode, on_batch):
    """Stream ``tuples`` through a 3-worker fleet in small batches,
    calling ``on_batch(fleet, index)`` between batches; returns the
    merged result stream and the router's final stats."""
    fleet = WorkerFleet(NUM_WORKERS, str(tmp_path), checkpoint_every=7)
    addrs = fleet.start()
    router = None
    try:
        router = PulseRouter(RouterConfig(workers=tuple(addrs))).start()
        with PulseClient("127.0.0.1", router.port, timeout=120.0) as client:
            client.connect()
            client.register("q", QUERY, fit=FIT)
            kwargs = (
                {"mode": "discrete"}
                if mode == "discrete"
                else {"error_bound": BOUND}
            )
            sub = client.subscribe("q", **kwargs)
            batch = 16
            for index, start in enumerate(range(0, len(tuples), batch)):
                on_batch(fleet, index)
                client.ingest(STREAM, tuples[start:start + batch])
            client.flush()
            results = client.drain_results(sub["subscription"])
            stats = client.stats()
        return results, stats
    finally:
        if router is not None:
            router.stop()
        fleet.stop()


class TestWorkerSigkill:
    def test_kill_and_restart_between_batches(self, tmp_path):
        """Deterministic outage: the worker dies while idle, and the
        router discovers it on the next run routed its way."""
        tuples = moving_tuples(360)

        def on_batch(fleet, index):
            if index == 10:
                fleet.kill(1)
                fleet.restart(1)

        results, stats = run_fleet(tmp_path, tuples, "discrete", on_batch)
        assert [w["recoveries"] for w in stats["workers"]] == [0, 1, 0]
        expected = discrete_reference(tuples)
        assert len(results) == len(expected) > 0
        assert results == expected  # exactly-once: no dup, no gap

    def test_kill_mid_ingest_concurrent(self, tmp_path):
        """Asynchronous outage: SIGKILL lands wherever the race puts
        it — possibly mid-request, losing an in-flight run and its
        result pushes.  Bit-exactness must hold regardless."""
        tuples = moving_tuples(480)
        fired = threading.Event()
        done = threading.Event()

        def killer(fleet):
            fired.wait(timeout=60)
            fleet.kill(1)
            fleet.restart(1)
            done.set()

        thread = None

        def on_batch(fleet, index):
            nonlocal thread
            if index == 0:
                thread = threading.Thread(
                    target=killer, args=(fleet,), daemon=True
                )
                thread.start()
            if index == 8:
                fired.set()  # kill races the remaining batches

        results, stats = run_fleet(
            tmp_path, tuples, "continuous", on_batch
        )
        assert done.wait(timeout=60)
        thread.join(timeout=60)
        assert stats["workers"][1]["recoveries"] == 1
        expected = continuous_reference(tuples)
        assert len(results) == len(expected) > 0
        assert results == expected

    def test_durable_offsets_reconcile_after_recovery(self, tmp_path):
        """After recovery and a flush barrier, the router's sent
        accounting equals every worker's durable WAL offset."""
        tuples = moving_tuples(240)

        def on_batch(fleet, index):
            if index == 5:
                fleet.kill(2)
                fleet.restart(2)

        _results, stats = run_fleet(tmp_path, tuples, "discrete", on_batch)
        for worker in stats["workers"]:
            assert worker["unacked"] == 0
            assert not worker["dead"]
            assert worker["durable_tuples"] == worker["sent"]
        assert sum(w["sent"] for w in stats["workers"]) == len(tuples)
