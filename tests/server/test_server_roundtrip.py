"""Loopback protocol round-trips: the server against an in-process run.

The headline property is **parity**: tuples streamed through a real TCP
socket produce bit-for-bit the results an in-process execution of the
same query over the same tuples produces, in both engine modes.  JSON
floats round-trip exactly (``repr`` precision), so plain ``==`` on the
serialized forms is a bit-exact comparison, not an approximation.

Everything runs over loopback against a :class:`ServerThread`; no test
here sleeps or polls — the flush-ack ordering guarantee (results are
written before the ack that produced them) makes drains deterministic.
"""

import json
import socket

import pytest

from repro.core.transform import to_continuous_plan
from repro.engine import tracing
from repro.engine.lowering import to_discrete_plan
from repro.engine.metrics import get_counter
from repro.engine.tuples import StreamTuple
from repro.fitting.model_builder import StreamModelBuilder
from repro.query import parse_query, plan_query
from repro.server import (
    PulseClient,
    ServerConfig,
    ServerError,
    ServerThread,
)
from repro.server.protocol import serialize_results
from repro.workloads import MovingObjectConfig, MovingObjectGenerator

QUERY = "select * from objects where x > 0"
STREAM = "objects"
FIT = {"attrs": ["x", "y"], "key_fields": ["id"]}


def moving_tuples(n=200, seed=7):
    gen = MovingObjectGenerator(
        MovingObjectConfig(rate=float(n), seed=seed)
    )
    return [dict(t) for t in gen.tuples(n)]


@pytest.fixture(scope="module")
def server():
    config = ServerConfig()
    with ServerThread(config, [(
        "q", QUERY, None
    )]) as handle:
        yield handle


@pytest.fixture()
def client(server):
    with PulseClient("127.0.0.1", server.port) as c:
        c.connect()
        yield c


def discrete_reference(tuples):
    query = to_discrete_plan(plan_query(parse_query(QUERY)))
    outputs = []
    for tup in tuples:
        outputs.extend(query.push(STREAM, StreamTuple(tup)))
    outputs.extend(query.flush())
    return serialize_results(outputs)


def continuous_reference(tuples, bound):
    builder = StreamModelBuilder(
        tuple(FIT["attrs"]),
        bound,
        key_fields=tuple(FIT["key_fields"]),
        constants=tuple(FIT["key_fields"]),
    )
    query = to_continuous_plan(plan_query(parse_query(QUERY)))
    outputs = []
    for tup in tuples:
        for seg in builder.add(StreamTuple(tup)):
            outputs.extend(query.push(STREAM, seg))
    for seg in builder.finish():
        outputs.extend(query.push(STREAM, seg))
    return serialize_results(outputs)


class TestHandshake:
    def test_hello_reports_queries_and_streams(self, client):
        assert client.hello["server"] == "pulse-repro"
        assert client.hello["protocol"] == 1
        assert "q" in client.hello["queries"]
        assert STREAM in client.hello["streams"]

    def test_bad_backpressure_policy_rejected(self, server):
        with PulseClient("127.0.0.1", server.port) as c:
            with pytest.raises(ServerError):
                c.connect(backpressure="yolo")


class TestDiscreteParity:
    def test_bit_exact_roundtrip(self, client):
        tuples = moving_tuples(200)
        sub = client.subscribe("q", mode="discrete")
        client.ingest(STREAM, tuples)
        client.flush()
        results = client.drain_results(sub["subscription"])
        expected = discrete_reference(tuples)
        assert len(results) == len(expected) > 0
        assert results == expected  # bit-exact, including float bits
        assert json.dumps(results, sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )
        client.unsubscribe(sub["subscription"])

    def test_results_arrive_before_flush_ack(self, client):
        """The ordering guarantee itself: after ingest+flush return,
        every result is already buffered — no sleep happened."""
        sub = client.subscribe("q", mode="discrete")
        client.ingest(STREAM, moving_tuples(50))
        client.flush()
        assert len(client.drain_results(sub["subscription"])) > 0
        client.unsubscribe(sub["subscription"])


class TestContinuousParity:
    def test_bit_exact_roundtrip(self, server):
        tuples = moving_tuples(300)
        bound = 0.05
        with PulseClient("127.0.0.1", server.port) as c:
            c.connect()
            c.register("qc", QUERY, fit=FIT)
            sub = c.subscribe("qc", mode="continuous", error_bound=bound)
            assert sub["error_bound"] == bound
            c.ingest(STREAM, tuples)
            c.flush()
            results = c.drain_results(sub["subscription"])
        expected = continuous_reference(tuples, bound)
        assert len(results) == len(expected) > 0
        assert results == expected

    def test_shared_graph_serves_both_bounds_at_tightest(self, server):
        """Two bounds, one shared graph: both subscribers are served by
        the single graph solved at the tightest subscribed bound — a
        solution within 0.01 is trivially within 10.0 (Sec. IV bound
        inversion), and each subscriber's stream is bit-exact with the
        tightest-bound in-process reference."""
        tuples = moving_tuples(400)
        with PulseClient("127.0.0.1", server.port) as c:
            c.connect()
            c.register("qb", QUERY, fit=FIT)
            tight = c.subscribe("qb", mode="continuous", error_bound=0.01)
            loose = c.subscribe("qb", mode="continuous", error_bound=10.0)
            assert tight["graph"] == loose["graph"]
            assert tight["error_bound"] == 0.01
            assert loose["error_bound"] == 10.0
            assert loose["solve_bound"] == 0.01  # tightest wins
            c.ingest(STREAM, tuples)
            c.flush()
            tight_results = c.drain_results(tight["subscription"])
            loose_results = c.drain_results(loose["subscription"])
        expected = continuous_reference(tuples, 0.01)
        assert tight_results == expected
        assert loose_results == expected

    def test_later_tighter_subscriber_retightens_shared_graph(self, server):
        with PulseClient("127.0.0.1", server.port) as c:
            c.connect()
            c.register("qs", QUERY, fit=FIT)
            a = c.subscribe("qs", mode="continuous", error_bound=0.5)
            assert a["solve_bound"] == 0.5
            b = c.subscribe("qs", mode="continuous", error_bound=0.1)
            assert a["graph"] == b["graph"]
            assert b["solve_bound"] == 0.1
            graphs = c.stats()["engine"]["graphs"]
            info = graphs[a["graph"]]
            assert info["subscribers"] == 2
            assert info["retightens"] == 1
            # dropping the tight subscriber relaxes back to 0.5
            c.unsubscribe(b["subscription"])
            graphs = c.stats()["engine"]["graphs"]
            info = graphs[a["graph"]]
            assert info["error_bound"] == 0.5
            assert info["retightens"] == 2

    def test_continuous_without_fit_spec_errors(self, server):
        with PulseClient("127.0.0.1", server.port) as c:
            c.connect()
            with pytest.raises(ServerError) as info:
                c.subscribe("q", mode="continuous")
            assert info.value.code == "plan"


class TestIngestBoundary:
    def test_nonfinite_wire_literal_rejected_and_counted(self, server):
        """NaN over the wire: json.loads admits it, the server rejects
        it per-tuple, counts it, and the engine never sees it."""
        counter = get_counter("server.rejected_nonfinite")
        before = counter.value
        raw = socket.create_connection(
            ("127.0.0.1", server.port), timeout=10
        )
        try:
            f = raw.makefile("rb")
            raw.sendall(
                b'{"op":"ingest","id":1,"stream":"objects","tuples":'
                b'[{"time":0.0,"id":"a","x":NaN,"y":1.0},'
                b'{"time":0.1,"id":"a","x":Infinity,"y":1.0},'
                b'{"time":0.2,"id":"a","x":-Infinity,"y":1.0},'
                b'{"time":0.3,"id":"a","x":1.0,"y":1.0}]}\n'
            )
            ack = json.loads(f.readline())
        finally:
            raw.close()
        assert ack["type"] == "ack"
        assert ack["rejected"] == 3
        assert ack["rejected_nonfinite"] == 3
        # the one finite tuple passes the boundary (whether a consumer
        # graph is live at this point is another test's business)
        assert ack["accepted"] + ack["no_consumer"] == 1
        assert counter.value == before + 3

    def test_malformed_tuples_rejected_not_fatal(self, client):
        ack = client.ingest(
            STREAM,
            [
                {"time": 0.0, "x": 1.0, "y": 1.0, "id": "a"},
                {"x": 1.0},  # no time
            ],
        )
        assert ack["rejected"] == 1
        # the session is still alive
        assert client.stats()["type"] == "stats"

    def test_unknown_stream_counts_no_consumer(self, client):
        ack = client.ingest("nowhere", [{"time": 0.0, "x": 1.0}])
        assert ack["no_consumer"] == 1
        assert ack["accepted"] == 0

    def test_fit_rejection_counted(self, server):
        """A tuple missing a modeled attr can't be fitted; it is
        rejected by the fit precondition, not crashed on."""
        with PulseClient("127.0.0.1", server.port) as c:
            c.connect()
            c.register("qf", QUERY, fit=FIT)
            c.subscribe("qf", mode="continuous", error_bound=0.5)
            ack = c.ingest(
                STREAM, [{"time": 0.0, "id": "a", "x": 1.0}]  # no 'y'
            )
            # counted once per continuous consumer instance of the
            # stream, and at least by the one this test registered
            assert ack["fit_rejected"] >= 1


class TestErrors:
    def test_unknown_query_subscribe(self, client):
        with pytest.raises(ServerError) as info:
            client.subscribe("nope", mode="discrete")
        assert info.value.code == "plan"

    def test_duplicate_register(self, client):
        client.register("qd", QUERY)
        with pytest.raises(ServerError):
            client.register("qd", QUERY)

    def test_unknown_op(self, server):
        raw = socket.create_connection(
            ("127.0.0.1", server.port), timeout=10
        )
        try:
            f = raw.makefile("rb")
            raw.sendall(b'{"op":"explode","id":9}\n')
            msg = json.loads(f.readline())
            assert msg["type"] == "error"
            assert msg["code"] == "protocol"
            assert msg["id"] == 9
            # session survives a protocol error
            raw.sendall(b'{"op":"stats","id":10}\n')
            assert json.loads(f.readline())["id"] == 10
        finally:
            raw.close()

    def test_invalid_json_line(self, server):
        raw = socket.create_connection(
            ("127.0.0.1", server.port), timeout=10
        )
        try:
            f = raw.makefile("rb")
            raw.sendall(b"{broken\n")
            assert json.loads(f.readline())["type"] == "error"
        finally:
            raw.close()

    def test_unsubscribe_foreign_subscription(self, client):
        with pytest.raises(ServerError):
            client.unsubscribe(999_999)


class TestBackpressure:
    def test_shed_newest_counts_and_notifies(self):
        config = ServerConfig(queue_capacity=10)
        with ServerThread(config, [("q", QUERY, None)]) as handle:
            with PulseClient("127.0.0.1", handle.port) as c:
                c.connect(backpressure="shed-newest")
                sub = c.subscribe("q", mode="discrete")
                # one big batch: all 100 enqueue before the pump runs,
                # so the 10-deep queue must shed
                ack = c.ingest(STREAM, moving_tuples(100))
                assert ack["shed"] > 0
                assert ack["accepted"] + ack["shed"] == 100
                notices = c.drain_notices("backpressure")
                assert notices and notices[0]["shed"] > 0
                # accepted tuples still produced results
                c.flush()
                assert len(
                    c.drain_results(sub["subscription"])
                ) <= ack["accepted"]

    def test_block_policy_counts_blocked(self):
        config = ServerConfig(queue_capacity=10)
        with ServerThread(config, [("q", QUERY, None)]) as handle:
            with PulseClient("127.0.0.1", handle.port) as c:
                c.connect(backpressure="block")
                c.subscribe("q", mode="discrete")
                ack = c.ingest(STREAM, moving_tuples(100))
                assert ack["blocked"] > 0


class TestSessionLifecycle:
    def test_stats_reflect_session(self, server):
        with PulseClient("127.0.0.1", server.port) as c:
            c.connect()
            c.ingest("nowhere", [{"time": 0.0, "x": 1.0}])
            stats = c.stats()
            assert stats["session"]["requests"] >= 2
            assert stats["engine"]["queries"]
            assert "queue_depths" in stats["engine"]

    def test_disconnect_tears_down_shared_graph(self, server):
        """Regression: the last subscriber's disconnect must tear the
        shared graph down — it used to stay registered (builders, delta
        tracker and all) forever after the session died."""
        with PulseClient("127.0.0.1", server.port) as c:
            c.connect()
            c.register("qgone", QUERY, fit=FIT)
            sub = c.subscribe("qgone", mode="continuous", error_bound=0.3)
            assert sub["graph"] in c.stats()["engine"]["graphs"]
        # session closed; its subscription died with it, and with no
        # subscribers left the graph is gone — later ingest finds no
        # consumer instead of feeding an orphaned graph
        with PulseClient("127.0.0.1", server.port) as c:
            c.connect()
            engine = c.stats()["engine"]
            assert sub["graph"] not in engine["graphs"]
            assert str(sub["subscription"]) not in engine["subscriptions"]
            ack = c.ingest(STREAM, moving_tuples(20))
            assert ack["no_consumer"] == 20
            assert ack["accepted"] == 0
            assert c.stats()["type"] == "stats"

    def test_clean_shutdown_under_load(self):
        """Stopping a server with live sessions joins both threads."""
        with ServerThread(ServerConfig(), [("q", QUERY, None)]) as handle:
            c = PulseClient("127.0.0.1", handle.port)
            c.connect()
            c.subscribe("q", mode="discrete")
            c.ingest(STREAM, moving_tuples(50))
            # exit without closing the client: stop() must still join
        c.close()


class TestTraceSpans:
    def test_session_and_ingest_spans_recorded(self):
        records: list = []
        tracing.enable_observability(records)
        try:
            with ServerThread(
                ServerConfig(), [("q", QUERY, None)]
            ) as handle:
                with PulseClient("127.0.0.1", handle.port) as c:
                    c.connect()
                    sub = c.subscribe("q", mode="discrete")
                    c.ingest(STREAM, moving_tuples(30))
                    c.flush()
                    c.drain_results(sub["subscription"])
        finally:
            tracing.disable_observability()
        by_kind = {}
        for rec in records:
            by_kind.setdefault(rec["kind"], []).append(rec)
        assert "session" in by_kind
        assert "ingest" in by_kind
        assert "emit" in by_kind
        session_ids = {r["span_id"] for r in by_kind["session"]}
        # ingest + emit spans parent into the session span
        assert all(
            r["parent_id"] in session_ids for r in by_kind["ingest"]
        )
        assert any(
            r["parent_id"] in session_ids for r in by_kind["emit"]
        )
        ingest = by_kind["ingest"][0]
        assert ingest["attrs"]["stream"] == STREAM
        assert ingest["attrs"]["accepted"] == 30


class TestEgressShedding:
    """Outbound-queue overflow accounting, driven white-box.

    The writer coroutine never runs here: a bare ``_Connection`` with a
    tiny ``outbound_limit`` lets each ``_send`` decision — shed-oldest,
    drop-new, notice injection — be asserted deterministically.
    """

    @staticmethod
    def _server(limit):
        from repro.server.server import PulseServer

        srv = PulseServer.__new__(PulseServer)
        srv.config = ServerConfig(outbound_limit=limit)
        srv._dropped_counter = get_counter("server.results_dropped")
        return srv

    @staticmethod
    def _conn():
        from repro.server.server import _Connection

        return _Connection(session_id=1, writer=None, peer="test")

    @staticmethod
    def _result(n):
        return {"type": "result", "results": [{"x": float(i)} for i in range(n)]}

    def test_shed_oldest_result_first(self):
        srv, conn = self._server(2), self._conn()
        srv._send(conn, self._result(3), sheddable=True)
        srv._send(conn, {"type": "ack"})
        srv._send(conn, self._result(1), sheddable=True)  # over limit
        queued = [m for m, _ in conn.outbound]
        # the oldest *result* was shed; the ack survived; the notice
        # lands immediately, ahead of the result that triggered it
        assert [m["type"] for m in queued] == [
            "ack", "backpressure", "result"
        ]
        assert queued[1]["dropped_results"] == 3
        assert len(queued[2]["results"]) == 1
        assert conn.results_dropped == 3
        assert conn.dropped_since_notice == 0

    def test_drop_new_is_counted_not_silent(self):
        srv, conn = self._server(2), self._conn()
        srv._send(conn, {"type": "ack"})
        srv._send(conn, {"type": "ack"})
        before = len(conn.outbound)
        srv._send(conn, self._result(4), sheddable=True)
        # nothing sheddable was queued, so the new push itself was
        # dropped — and accounted exactly like a shed
        assert len(conn.outbound) == before
        assert conn.results_dropped == 4
        assert conn.dropped_since_notice == 4

    def test_notice_precedes_next_result_and_resets(self):
        srv, conn = self._server(2), self._conn()
        srv._send(conn, {"type": "ack"})
        srv._send(conn, {"type": "ack"})
        srv._send(conn, self._result(4), sheddable=True)  # drop-new
        conn.outbound.clear()  # writer drains the acks
        srv._send(conn, self._result(2), sheddable=True)
        queued = [m for m, _ in conn.outbound]
        assert [m["type"] for m in queued] == ["backpressure", "result"]
        assert queued[0]["dropped_results"] == 4
        assert conn.dropped_since_notice == 0

    def test_acks_never_shed(self):
        srv, conn = self._server(1), self._conn()
        for _ in range(5):
            srv._send(conn, {"type": "ack"})
        assert len(conn.outbound) == 5
        assert conn.results_dropped == 0
