"""Router fleet round-trips: key-routed fan-out with a deterministic
merge edge, against single-engine references.

The headline property extends the single-server parity gate across a
fleet: tuples streamed through the router to N key-partitioned workers
produce, at the merged subscriber edge, bit-for-bit the results an
in-process single-engine execution produces — same values, same order,
including the flush tail (which the router re-sorts from worker-major
back into first-arrival key order).

Workers here are in-process :class:`ServerThread` instances (crash
recovery has its own subprocess harness in ``test_router_chaos.py``).
The client-side reconnect regressions (backoff cap, half-open socket)
and the retained-output replay layer the fleet recovery rides on are
pinned at the bottom.
"""

import socket
import threading
from contextlib import contextmanager

import pytest

from repro.core.transform import to_continuous_plan
from repro.engine.lowering import to_discrete_plan
from repro.engine.sharding import shard_of
from repro.engine.tuples import StreamTuple
from repro.fitting.model_builder import StreamModelBuilder
from repro.query import parse_query, plan_query
from repro.server import (
    PulseClient,
    PulseRouter,
    ReconnectExhausted,
    RouterConfig,
    ServerConfig,
    ServerError,
    ServerThread,
)
from repro.server.protocol import serialize_results
from repro.workloads import MovingObjectConfig, MovingObjectGenerator

QUERY = "select * from objects where x > 0"
STREAM = "objects"
FIT = {"attrs": ["x", "y"], "key_fields": ["id"]}
BOUND = 0.05


def moving_tuples(n=200, seed=7):
    gen = MovingObjectGenerator(MovingObjectConfig(rate=float(n), seed=seed))
    return [dict(t) for t in gen.tuples(n)]


def discrete_reference(tuples):
    query = to_discrete_plan(plan_query(parse_query(QUERY)))
    outputs = []
    for tup in tuples:
        outputs.extend(query.push(STREAM, StreamTuple(tup)))
    outputs.extend(query.flush())
    return serialize_results(outputs)


def continuous_reference(tuples, bound=BOUND):
    builder = StreamModelBuilder(
        tuple(FIT["attrs"]),
        bound,
        key_fields=tuple(FIT["key_fields"]),
        constants=tuple(FIT["key_fields"]),
    )
    query = to_continuous_plan(plan_query(parse_query(QUERY)))
    outputs = []
    for tup in tuples:
        for seg in builder.add(StreamTuple(tup)):
            outputs.extend(query.push(STREAM, seg))
    for seg in builder.finish():
        outputs.extend(query.push(STREAM, seg))
    return serialize_results(outputs)


@contextmanager
def loopback_fleet(num_workers, **router_kwargs):
    """N in-process workers behind one router."""
    handles = []
    router = None
    try:
        for _ in range(num_workers):
            handles.append(ServerThread(ServerConfig()).start())
        addrs = tuple(("127.0.0.1", h.port) for h in handles)
        router = PulseRouter(
            RouterConfig(workers=addrs, **router_kwargs)
        ).start()
        yield router
    finally:
        if router is not None:
            router.stop()
        for handle in handles:
            handle.stop()


@contextmanager
def fleet_client(num_workers=3, **router_kwargs):
    with loopback_fleet(num_workers, **router_kwargs) as router:
        with PulseClient("127.0.0.1", router.port) as client:
            client.connect()
            yield client


class TestFleetHandshake:
    def test_hello_reports_role_and_width(self):
        with fleet_client(3) as client:
            assert client.hello["role"] == "router"
            assert client.hello["workers"] == 3
            assert client.hello["server"] == "pulse-repro"

    def test_register_fans_out_and_learns_keys(self):
        with fleet_client(2) as client:
            ack = client.register("q", QUERY, fit=FIT)
            assert ack["registered"] == "q"
            assert ack["workers"] == 2
            assert STREAM in ack["streams"]
            stats = client.stats()
            assert stats["role"] == "router"
            assert stats["streams"][STREAM] == ["id"]
            assert len(stats["workers"]) == 2

    def test_per_session_backpressure_rejected(self):
        with loopback_fleet(2) as router:
            with PulseClient("127.0.0.1", router.port) as client:
                with pytest.raises(ServerError):
                    client.connect(backpressure="shed-newest")


class TestMergedParity:
    def test_discrete_merged_stream_bit_exact(self):
        tuples = moving_tuples(240)
        with fleet_client(3) as client:
            client.register("q", QUERY, fit=FIT)
            sub = client.subscribe("q", mode="discrete")
            for start in range(0, len(tuples), 50):
                client.ingest(STREAM, tuples[start:start + 50])
            client.flush()
            results = client.drain_results(sub["subscription"])
        expected = discrete_reference(tuples)
        assert len(results) == len(expected) > 0
        assert results == expected  # bit-exact, including float bits

    def test_continuous_merged_stream_bit_exact(self):
        tuples = moving_tuples(240)
        with fleet_client(3) as client:
            client.register("q", QUERY, fit=FIT)
            sub = client.subscribe("q", error_bound=BOUND)
            for start in range(0, len(tuples), 60):
                client.ingest(STREAM, tuples[start:start + 60])
            client.flush()
            results = client.drain_results(sub["subscription"])
        expected = continuous_reference(tuples)
        assert len(results) == len(expected) > 0
        assert results == expected

    def test_ingest_actually_spreads_across_workers(self):
        tuples = moving_tuples(240)
        keys = {t["id"] for t in tuples}
        shards = {shard_of((k,), 3) for k in keys}
        assert shards == {0, 1, 2}, "workload keys must hit every shard"
        with fleet_client(3) as client:
            client.register("q", QUERY, fit=FIT)
            client.subscribe("q", mode="discrete")
            ack = client.ingest(STREAM, tuples)
            assert ack["accepted"] == len(tuples)
            assert ack["runs"] > 3  # interleaved keys -> many runs
            stats = client.stats()
            sent = [w["sent"] for w in stats["workers"]]
            assert all(s > 0 for s in sent)
            assert sum(sent) == len(tuples)

    def test_merged_pushes_carry_contiguous_seq(self):
        tuples = moving_tuples(150)
        with fleet_client(3) as client:
            client.register("q", QUERY, fit=FIT)
            sub = client.subscribe("q", mode="discrete")
            client.ingest(STREAM, tuples)
            client.flush()
            seen = 0
            for msg in list(client.pushed):
                if msg.get("type") != "result":
                    continue
                assert msg["subscription"] == sub["subscription"]
                assert msg["seq"] == seen
                assert msg["cursor"] == seen
                assert "worker" in msg
                seen += len(msg["results"])
            assert seen == len(discrete_reference(tuples))

    def test_rejected_tuples_counted_at_router(self):
        """Malformed and non-finite tuples are rejected at the router
        edge — workers never see them (raw wire bytes, because the
        client's own encoder refuses non-finite floats)."""
        with fleet_client(2) as client:
            client.register("q", QUERY, fit=FIT)
            client.subscribe("q", mode="discrete")
            line = (
                b'{"op":"ingest","id":99,"stream":"objects","tuples":['
                b'{"time":0.0,"id":"a","x":1.0,"y":0.0},'
                b'{"time":Infinity,"id":"a","x":1.0,"y":0.0},'
                b'{"id":"b","x":1.0,"y":0.0}]}\n'
            )
            client._sock.sendall(line)
            ack = client.read_reply(99)
            assert ack["accepted"] == 1
            assert ack["rejected"] == 2
            assert ack["rejected_nonfinite"] == 1


class TestSubscriptionLifecycle:
    def test_unsubscribe_stops_delivery_fleetwide(self):
        tuples = moving_tuples(120)
        with fleet_client(3) as client:
            client.register("q", QUERY, fit=FIT)
            sub = client.subscribe("q", mode="discrete")
            client.ingest(STREAM, tuples[:60])
            client.unsubscribe(sub["subscription"])
            drained = client.drain_results(sub["subscription"])
            client.ingest(STREAM, tuples[60:])
            client.flush()
            assert client.drain_results(sub["subscription"]) == []
            assert len(drained) > 0

    def test_two_subscribers_same_query(self):
        tuples = moving_tuples(120)
        with fleet_client(2) as client:
            client.register("q", QUERY, fit=FIT)
            sub_a = client.subscribe("q", mode="discrete")
            sub_b = client.subscribe("q", mode="discrete")
            client.ingest(STREAM, tuples)
            client.flush()
            a = client.drain_results(sub_a["subscription"])
            b = client.drain_results(sub_b["subscription"])
        expected = discrete_reference(tuples)
        assert a == expected
        assert b == expected

    def test_attach_rebinds_to_new_session(self):
        tuples = moving_tuples(100)
        with loopback_fleet(2) as router:
            with PulseClient("127.0.0.1", router.port) as first:
                first.connect()
                first.register("q", QUERY, fit=FIT)
                sub = first.subscribe("q", mode="discrete")
                first.ingest(STREAM, tuples[:50])
                got = len(first.drain_results(sub["subscription"]))
                with PulseClient("127.0.0.1", router.port) as second:
                    second.connect()
                    ack = second.attach(sub["subscription"])
                    assert ack["cursor"] == got
                    second.ingest(STREAM, tuples[50:])
                    second.flush()
                    tail = second.drain_results(sub["subscription"])
                    assert len(tail) > 0
                    # the old session no longer receives anything
                    assert first.drain_results(sub["subscription"]) == []

    def test_router_level_replay_is_a_typed_refusal(self):
        with fleet_client(2) as client:
            client.register("q", QUERY, fit=FIT)
            sub = client.subscribe("q", mode="discrete")
            with pytest.raises(ServerError):
                client.attach(sub["subscription"], from_cursor=0)


# ----------------------------------------------------------------------
# satellite regressions: the reconnect loop the fleet recovery rides on
# ----------------------------------------------------------------------
class TestReconnectBackoff:
    def test_jittered_sleep_never_exceeds_cap(self, monkeypatch):
        """Regression: the jitter multiplier used to be applied *after*
        the clamp, so sleeps reached 2x ``reconnect_max_s``."""
        with ServerThread(ServerConfig()) as handle:
            client = PulseClient(
                "127.0.0.1",
                handle.port,
                reconnect_attempts=8,
                reconnect_base_s=0.05,
                reconnect_max_s=0.08,
            )
            client.connect()
        # server gone; every attempt now fails with connection refused
        client._rng.seed(1234)
        sleeps = []
        monkeypatch.setattr(
            "repro.server.client.time.sleep", sleeps.append
        )
        with pytest.raises(ReconnectExhausted):
            client.reconnect()
        assert len(sleeps) == 8
        assert all(delay <= 0.08 for delay in sleeps)
        # jitter still jitters below the cap (first delays are uncapped)
        assert sleeps[0] > 0.05

    def test_half_open_socket_closed_on_failed_hello(self, monkeypatch):
        """Regression: a TCP connect that succeeded but whose hello
        failed used to leak the socket and abort the retry budget."""
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        accepted = []

        def garbage_server():
            for _ in range(3):
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return
                accepted.append(conn)
                try:
                    conn.recv(4096)  # the hello request
                    conn.sendall(b"this is not json\n")
                finally:
                    conn.close()

        thread = threading.Thread(target=garbage_server, daemon=True)
        thread.start()
        client = PulseClient.__new__(PulseClient)
        client._addr = ("127.0.0.1", port)
        client._timeout = 5.0
        client.reconnect_attempts = 3
        client.reconnect_base_s = 0.001
        client.reconnect_max_s = 0.002
        import random

        client._rng = random.Random(7)
        client._backpressure = None
        client._next_id = 1
        from collections import deque

        client.pushed = deque()
        client.hello = None
        client._sock = socket.socket()  # stand-in for the dead socket
        client._file = client._sock.makefile("rb")
        monkeypatch.setattr("repro.server.client.time.sleep", lambda s: None)
        with pytest.raises(ReconnectExhausted) as excinfo:
            client.reconnect()
        # the budget was spent on retries (not aborted by the first
        # protocol error), and no attempt left a half-open socket
        assert excinfo.value.attempts == 3
        assert client._sock.fileno() == -1
        listener.close()
        thread.join(timeout=5)


# ----------------------------------------------------------------------
# retained-output replay: the attach(from_cursor) layer fleet recovery
# depends on
# ----------------------------------------------------------------------
class TestRetainedReplay:
    def test_attach_from_cursor_replays_tail(self):
        tuples = moving_tuples(80)
        config = ServerConfig(retain_results=16)
        with ServerThread(config, [("q", QUERY, None)]) as handle:
            with PulseClient("127.0.0.1", handle.port) as client:
                client.connect()
                sub = client.subscribe("q", mode="discrete")
                client.ingest(STREAM, tuples)
                client.flush()
                results = client.drain_results(sub["subscription"])
                assert len(results) > 5
                cursor = len(results)
                ack = client.attach(
                    sub["subscription"], from_cursor=cursor - 5
                )
                assert ack["cursor"] == cursor
                replayed = client.drain_results(sub["subscription"])
                assert replayed == results[-5:]  # bit-exact re-delivery

    def test_attach_from_current_cursor_replays_nothing(self):
        config = ServerConfig(retain_results=16)
        with ServerThread(config, [("q", QUERY, None)]) as handle:
            with PulseClient("127.0.0.1", handle.port) as client:
                client.connect()
                sub = client.subscribe("q", mode="discrete")
                client.ingest(STREAM, moving_tuples(40))
                client.flush()
                cursor = len(client.drain_results(sub["subscription"]))
                client.attach(sub["subscription"], from_cursor=cursor)
                assert client.drain_results(sub["subscription"]) == []

    def test_replay_past_retention_is_a_typed_error(self):
        tuples = moving_tuples(80)
        config = ServerConfig(retain_results=2)
        with ServerThread(config, [("q", QUERY, None)]) as handle:
            with PulseClient("127.0.0.1", handle.port) as client:
                client.connect()
                sub = client.subscribe("q", mode="discrete")
                client.ingest(STREAM, tuples)
                client.flush()
                n = len(client.drain_results(sub["subscription"]))
                assert n > 2
                with pytest.raises(ServerError, match="retention"):
                    client.attach(sub["subscription"], from_cursor=0)

    def test_retention_disabled_rejects_from_cursor_gap(self):
        with ServerThread(
            ServerConfig(), [("q", QUERY, None)]
        ) as handle:
            with PulseClient("127.0.0.1", handle.port) as client:
                client.connect()
                sub = client.subscribe("q", mode="discrete")
                client.ingest(STREAM, moving_tuples(40))
                client.flush()
                n = len(client.drain_results(sub["subscription"]))
                assert n > 0
                with pytest.raises(ServerError, match="retention"):
                    client.attach(sub["subscription"], from_cursor=0)
