"""Tests for the planner: AST -> logical plan."""

import pytest

from repro.core.errors import PlanError
from repro.query import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalProject,
    LogicalScan,
    explain,
    parse_query,
    plan_query,
)


def plan(sql):
    return plan_query(parse_query(sql))


class TestBasicPlans:
    def test_scan_project(self):
        p = plan("select x, y from objects")
        assert isinstance(p.root, LogicalProject)
        assert isinstance(p.root.child, LogicalScan)
        assert [pr.name for pr in p.root.projections] == ["x", "y"]

    def test_select_star_no_project(self):
        p = plan("select * from objects")
        assert isinstance(p.root, LogicalScan)

    def test_where_filter(self):
        p = plan("select * from objects where x > 5")
        assert isinstance(p.root, LogicalFilter)

    def test_join(self):
        p = plan(
            "select * from objects R join objects S on (R.id <> S.id)"
        )
        assert isinstance(p.root, LogicalJoin)
        assert p.root.left_alias == "r"
        assert p.root.right_alias == "s"

    def test_self_join_gets_distinct_sources(self):
        p = plan("select * from objects R join objects S on (R.id <> S.id)")
        assert p.stream_sources["objects"] == ["objects#1", "objects#2"]

    def test_join_window_from_scan_windows(self):
        p = plan(
            "select * from s [size 10 advance 1] as a "
            "join s [size 10 advance 1] as b on (a.id <> b.id)"
        )
        assert p.root.window == 10.0

    def test_join_window_default(self):
        p = plan("select * from a join b on (a.x < b.y)")
        from repro.query.planner import DEFAULT_JOIN_WINDOW

        assert p.root.window == DEFAULT_JOIN_WINDOW

    def test_error_and_sample_specs_carried(self):
        p = plan("select * from s error within 2% sample period 0.5")
        assert p.error_spec.bound == pytest.approx(0.02)
        assert p.sample_spec.period == 0.5


class TestAggregatePlans:
    def test_aggregate_requires_window(self):
        with pytest.raises(PlanError):
            plan("select avg(x) as m from s")

    def test_windowed_aggregate(self):
        p = plan("select avg(x) as m from s [size 10 advance 2]")
        project = p.root
        agg = project.child
        assert isinstance(agg, LogicalAggregate)
        assert agg.func == "avg"
        assert agg.attr == "x"
        assert agg.window == 10.0
        assert agg.slide == 2.0
        assert agg.output_attr == "m"

    def test_implicit_group_by_select_attrs(self):
        p = plan("select symbol, avg(price) as ap from s [size 10 advance 2]")
        agg = p.root.child
        assert agg.group_fields == ("symbol",)

    def test_explicit_group_by(self):
        p = plan(
            "select avg(x) as m from s [size 10 advance 2] group by id"
        )
        agg = p.root.child
        assert agg.group_fields == ("id",)

    def test_having_becomes_post_filter(self):
        p = plan(
            "select id, avg(x) as m from s [size 10 advance 2] "
            "group by id having avg(x) < 5"
        )
        # Project(Filter(Aggregate(...))).
        assert isinstance(p.root, LogicalProject)
        having = p.root.child
        assert isinstance(having, LogicalFilter)
        assert isinstance(having.child, LogicalAggregate)
        # HAVING's avg(x) was rewritten to the aggregate output attr.
        atom = next(iter(having.predicate.atoms()))
        from repro.core.expr import Attr

        assert atom.left == Attr("m")

    def test_having_without_aggregate_rejected(self):
        with pytest.raises(PlanError):
            plan("select x from s having x < 5")

    def test_aggregate_in_where_rejected(self):
        with pytest.raises(PlanError):
            plan("select x from s [size 10 advance 2] where avg(x) < 5")

    def test_where_applies_before_aggregation(self):
        p = plan(
            "select avg(x) as m from s [size 10 advance 2] where x > 0"
        )
        agg = p.root.child
        assert isinstance(agg, LogicalAggregate)
        assert isinstance(agg.child, LogicalFilter)

    def test_aggregate_over_expression_inserts_project(self):
        p = plan("select avg(x + y) as m from s [size 10 advance 2]")
        agg = p.root.child
        assert isinstance(agg, LogicalAggregate)
        assert isinstance(agg.child, LogicalProject)
        assert agg.attr.startswith("__agg_arg")


class TestPaperQueryPlans:
    MACD = """
    select symbol, S.ap - L.ap as diff from
        (select symbol, avg(price) as ap from
            trades [size 10 advance 2]) as S
    join
        (select symbol, avg(price) as ap from
            trades [size 60 advance 2]) as L
    on (S.symbol = L.symbol)
    where S.ap > L.ap
    error within 1%
    """

    FOLLOWING = """
    select id1, id2, avg(dist) as avg_dist from
        (select S1.id as id1, S2.id as id2,
                sqrt(pow(S1.x - S2.x, 2) + pow(S1.y - S2.y, 2)) as dist
         from vessels [size 10 advance 1] as S1
         join vessels as S2 [size 10 advance 1]
         on (S1.id <> S2.id)) [size 600 advance 10] as Candidates
    group by id1, id2 having avg(dist) < 1000
    error within 0.05%
    """

    def test_macd_plan_shape(self):
        p = plan(self.MACD)
        # Project(Filter(Join(Project(Agg(Scan)), Project(Agg(Scan))))).
        assert isinstance(p.root, LogicalProject)
        filt = p.root.child
        assert isinstance(filt, LogicalFilter)
        join = filt.child
        assert isinstance(join, LogicalJoin)
        for side in (join.left, join.right):
            assert isinstance(side, LogicalProject)
            assert isinstance(side.child, LogicalAggregate)
        aggs = [join.left.child, join.right.child]
        assert sorted(a.window for a in aggs) == [10.0, 60.0]
        assert all(a.group_fields == ("symbol",) for a in aggs)
        assert p.stream_sources["trades"] == ["trades#1", "trades#2"]

    def test_following_plan_shape(self):
        p = plan(self.FOLLOWING)
        assert isinstance(p.root, LogicalProject)
        having = p.root.child
        assert isinstance(having, LogicalFilter)
        agg = having.child
        assert isinstance(agg, LogicalAggregate)
        assert agg.window == 600.0
        assert agg.slide == 10.0
        assert agg.attr == "dist"
        assert set(agg.group_fields) == {"id1", "id2"}
        inner_project = agg.child
        assert isinstance(inner_project, LogicalProject)
        join = inner_project.child
        assert isinstance(join, LogicalJoin)
        assert join.window == 10.0

    def test_explain_renders(self):
        text = explain(plan(self.MACD).root)
        assert "Join" in text and "Aggregate" in text and "Scan" in text
