"""Tests for the query lexer and parser, including the paper's queries."""

import pytest

from repro.core.errors import QuerySyntaxError
from repro.core.expr import Attr, Const, Sqrt, Sub
from repro.core.predicate import And, Comparison
from repro.core.relation import Rel
from repro.query.ast_nodes import (
    AggregateCall,
    JoinClause,
    StreamRef,
    SubQuery,
)
from repro.query.lexer import tokenize
from repro.query.parser import parse_expression, parse_predicate, parse_query

MACD_QUERY = """
select symbol, S.ap - L.ap as diff from
    (select symbol, avg(price) as ap from
        stream trades [size 10 advance 2]) as S
join
    (select symbol, avg(price) as ap from
        stream trades [size 60 advance 2]) as L
on (S.symbol = L.symbol)
where S.ap > L.ap
error within 1%
"""

FOLLOWING_QUERY = """
select id1, id2, avg(dist) as avg_dist from
    (select S1.id as id1, S2.id as id2,
            sqrt(pow(S1.x - S2.x, 2) + pow(S1.y - S2.y, 2)) as dist
     from vessels [size 10 advance 1] as S1
     join vessels as S2 [size 10 advance 1]
     on (S1.id <> S2.id)) [size 600 advance 10] as Candidates
group by id1, id2 having avg(dist) < 1000
error within 0.05%
"""

COLLISION_QUERY = """
select from objects R
join objects S on (R.id <> S.id)
where abs(distance(R.x, R.y, S.x, S.y)) < 100
"""

MODEL_QUERY = """
SELECT * from A MODEL A.x = A.x + A.v * t
JOIN B MODEL B.y = B.v * t + B.a * t^2
ON (A.x < B.y)
"""


class TestLexer:
    def test_keywords_case_insensitive(self):
        toks = tokenize("SELECT Select select")
        assert all(t.is_keyword("select") for t in toks[:-1])

    def test_numbers(self):
        toks = tokenize("1 2.5 0.05 1e3 2.5e-2")
        values = [float(t.text) for t in toks[:-1]]
        assert values == [1.0, 2.5, 0.05, 1000.0, 0.025]

    def test_qualified_name_not_decimal(self):
        toks = tokenize("S1.id")
        kinds = [t.kind for t in toks[:-1]]
        assert kinds == ["IDENT", "PUNCT", "IDENT"]

    def test_operators(self):
        toks = tokenize("<= >= <> != < >")
        assert [t.text for t in toks[:-1]] == ["<=", ">=", "<>", "!=", "<", ">"]

    def test_string_literal(self):
        toks = tokenize("'IBM'")
        assert toks[0].kind == "STRING" and toks[0].text == "IBM"

    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("'IBM")

    def test_comment_skipped(self):
        toks = tokenize("select -- comment\nfrom")
        assert [t.text for t in toks[:-1]] == ["select", "from"]

    def test_bad_character(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("select @")

    def test_error_position(self):
        with pytest.raises(QuerySyntaxError) as exc:
            tokenize("select\n  @")
        assert exc.value.line == 2


class TestExpressions:
    def test_precedence(self):
        e = parse_expression("a + b * c")
        env = {"a": 1.0, "b": 2.0, "c": 3.0}
        assert e.evaluate(env) == 7.0

    def test_parens(self):
        e = parse_expression("(a + b) * c")
        assert e.evaluate({"a": 1.0, "b": 2.0, "c": 3.0}) == 9.0

    def test_unary_minus(self):
        assert parse_expression("-a + 5").evaluate({"a": 2.0}) == 3.0

    def test_power(self):
        assert parse_expression("a^2").evaluate({"a": 3.0}) == 9.0

    def test_power_requires_integer(self):
        with pytest.raises(QuerySyntaxError):
            parse_expression("a^2.5")

    def test_qualified_attr(self):
        e = parse_expression("S.price")
        assert e == Attr("s.price")

    def test_functions(self):
        assert parse_expression("sqrt(x)").evaluate({"x": 9.0}) == 3.0
        assert parse_expression("abs(x)").evaluate({"x": -2.0}) == 2.0
        assert parse_expression("pow(x, 3)").evaluate({"x": 2.0}) == 8.0

    def test_distance_builtin(self):
        e = parse_expression("distance(x1, y1, x2, y2)")
        env = {"x1": 0.0, "y1": 0.0, "x2": 3.0, "y2": 4.0}
        assert e.evaluate(env) == pytest.approx(5.0)

    def test_pow_requires_literal_exponent(self):
        with pytest.raises(QuerySyntaxError):
            parse_expression("pow(x, y)")

    def test_unknown_function(self):
        with pytest.raises(QuerySyntaxError):
            parse_expression("frobnicate(x)")

    def test_aggregate_call_node(self):
        e = parse_expression("avg(price)")
        assert isinstance(e, AggregateCall)
        assert e.func == "avg"


class TestPredicates:
    def test_simple_comparison(self):
        p = parse_predicate("x < 5")
        assert isinstance(p, Comparison)
        assert p.rel is Rel.LT

    def test_and_or_precedence(self):
        p = parse_predicate("a < 1 or b < 2 and c < 3")
        # AND binds tighter: Or(a<1, And(b<2, c<3)).
        from repro.core.predicate import Or

        assert isinstance(p, Or)

    def test_parenthesized_predicate(self):
        p = parse_predicate("(a < 1 or b < 2) and c < 3")
        assert isinstance(p, And)

    def test_parenthesized_arithmetic_lhs(self):
        p = parse_predicate("(a + b) * c < 10")
        assert isinstance(p, Comparison)
        assert p.evaluate({"a": 1.0, "b": 1.0, "c": 2.0})

    def test_not(self):
        p = parse_predicate("not x < 5")
        assert not p.evaluate({"x": 1.0})

    def test_missing_relop(self):
        with pytest.raises(QuerySyntaxError):
            parse_predicate("x + 5")


class TestSelectStatements:
    def test_simple_select(self):
        q = parse_query("select x, y from objects")
        assert len(q.items) == 2
        assert isinstance(q.source, StreamRef)
        assert q.source.name == "objects"

    def test_select_star(self):
        q = parse_query("select * from objects")
        assert q.items[0].is_star

    def test_bare_select_from(self):
        q = parse_query("select from objects")
        assert q.items[0].is_star

    def test_alias_and_window(self):
        q = parse_query("select x from s [size 10 advance 2] as S1")
        assert q.source.alias == "s1"
        assert q.source.window.size == 10
        assert q.source.window.advance == 2

    def test_window_after_alias(self):
        q = parse_query("select x from s as S1 [size 10 advance 2]")
        assert q.source.alias == "s1"
        assert q.source.window.size == 10

    def test_where_group_having(self):
        q = parse_query(
            "select sym, avg(x) as m from s group by sym having avg(x) < 10"
        )
        assert q.group_by == ("sym",)
        assert q.having is not None

    def test_error_spec_percent(self):
        q = parse_query("select x from s error within 1%")
        assert q.error_spec.relative
        assert q.error_spec.bound == pytest.approx(0.01)

    def test_error_spec_absolute(self):
        q = parse_query("select x from s error within 0.5 absolute")
        assert not q.error_spec.relative
        assert q.error_spec.bound == 0.5

    def test_sample_spec(self):
        q = parse_query("select x from s sample period 0.1")
        assert q.sample_spec.period == pytest.approx(0.1)

    def test_macd_query(self):
        q = parse_query(MACD_QUERY)
        assert isinstance(q.source, JoinClause)
        left, right = q.source.left, q.source.right
        assert isinstance(left, SubQuery) and left.alias == "s"
        assert isinstance(right, SubQuery) and right.alias == "l"
        assert left.query.source.window.size == 10
        assert right.query.source.window.size == 60
        assert q.error_spec.bound == pytest.approx(0.01)
        # diff column is S.ap - L.ap.
        diff = q.items[1]
        assert diff.alias == "diff"
        assert isinstance(diff.expr, Sub)

    def test_following_query(self):
        q = parse_query(FOLLOWING_QUERY)
        assert isinstance(q.source, SubQuery)
        assert q.source.alias == "candidates"
        assert q.source.window.size == 600
        inner = q.source.query
        assert isinstance(inner.source, JoinClause)
        dist = inner.items[2]
        assert dist.alias == "dist"
        assert isinstance(dist.expr, Sqrt)
        assert q.group_by == ("id1", "id2")
        assert q.error_spec.bound == pytest.approx(0.0005)

    def test_collision_query(self):
        q = parse_query(COLLISION_QUERY)
        assert isinstance(q.source, JoinClause)
        assert q.source.left.alias == "r"
        assert q.where is not None

    def test_model_clause_query(self):
        q = parse_query(MODEL_QUERY)
        join = q.source
        assert isinstance(join, JoinClause)
        a, b = join.left, join.right
        assert len(a.models) == 1
        assert a.models[0].attr == "a.x"
        # Model expression references coefficients and t.
        assert "t" in a.models[0].expr.attributes()
        assert b.models[0].attr == "b.y"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("select x from s garbage garbage")

    def test_missing_from(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("select x")
