"""Tests for the synthetic workload generators and trace replay."""

import math

import numpy as np
import pytest

from repro.workloads import (
    AisConfig,
    AisVesselGenerator,
    MovingObjectConfig,
    MovingObjectGenerator,
    NyseConfig,
    NyseTradeGenerator,
    read_trace,
    take,
    write_trace,
)


class TestMovingObjects:
    def test_schema_fields(self):
        gen = MovingObjectGenerator()
        tup = next(gen.tuples(1))
        assert set(tup) == {"time", "id", "x", "y", "vx", "vy"}

    def test_timestamps_monotone_at_rate(self):
        cfg = MovingObjectConfig(rate=100.0)
        gen = MovingObjectGenerator(cfg)
        times = [t.time for t in gen.tuples(50)]
        assert times == sorted(times)
        assert times[1] - times[0] == pytest.approx(0.01)

    def test_deterministic_with_seed(self):
        a = list(MovingObjectGenerator(MovingObjectConfig(seed=1)).tuples(20))
        b = list(MovingObjectGenerator(MovingObjectConfig(seed=1)).tuples(20))
        assert a == b

    def test_velocity_constant_within_epoch(self):
        cfg = MovingObjectConfig(num_objects=1, tuples_per_segment=10, noise=0.0)
        gen = MovingObjectGenerator(cfg)
        tuples = list(gen.tuples(10))
        assert len({t["vx"] for t in tuples[:9]}) == 1

    def test_position_consistent_with_velocity(self):
        cfg = MovingObjectConfig(
            num_objects=1, rate=100.0, tuples_per_segment=1000, noise=0.0
        )
        gen = MovingObjectGenerator(cfg)
        tuples = list(gen.tuples(5))
        dt = 1.0 / 100.0
        for a, b in zip(tuples[:-1], tuples[1:]):
            assert b["x"] - a["x"] == pytest.approx(a["vx"] * dt, rel=1e-6)

    def test_ground_truth_segments_tile_time(self):
        cfg = MovingObjectConfig(num_objects=2, rate=100.0, tuples_per_segment=10)
        gen = MovingObjectGenerator(cfg)
        segs = list(gen.segments(6))
        per_obj = {}
        for s in segs:
            per_obj.setdefault(s.key, []).append(s)
        for series in per_obj.values():
            for a, b in zip(series[:-1], series[1:]):
                assert a.t_end == pytest.approx(b.t_start)
                # Position continuity at the boundary.
                assert a.value_at("x", a.t_end) == pytest.approx(
                    b.value_at("x", b.t_start), rel=1e-9
                )


class TestNyse:
    def test_schema(self):
        tup = next(NyseTradeGenerator().tuples(1))
        assert set(tup) == {"time", "symbol", "price", "qty"}

    def test_symbols_cycle(self):
        gen = NyseTradeGenerator(NyseConfig(num_symbols=3))
        symbols = [t["symbol"] for t in gen.tuples(6)]
        assert symbols[:3] == symbols[3:]

    def test_prices_positive_and_tick_quantized(self):
        cfg = NyseConfig(tick=0.01)
        for tup in NyseTradeGenerator(cfg).tuples(500):
            assert tup["price"] > 0
            cents = tup["price"] / 0.01
            assert abs(cents - round(cents)) < 1e-6

    def test_deterministic(self):
        a = [t["price"] for t in NyseTradeGenerator(NyseConfig(seed=2)).tuples(50)]
        b = [t["price"] for t in NyseTradeGenerator(NyseConfig(seed=2)).tuples(50)]
        assert a == b

    def test_volatility_scales_dispersion(self):
        def dispersion(vol):
            gen = NyseTradeGenerator(NyseConfig(num_symbols=1, volatility=vol, seed=4))
            prices = np.array([t["price"] for t in gen.tuples(2000)])
            return np.std(np.diff(np.log(prices)))

        assert dispersion(1e-3) > dispersion(1e-5)


class TestAis:
    def test_schema(self):
        tup = next(AisVesselGenerator().tuples(1))
        assert set(tup) == {"time", "id", "x", "vx", "y", "vy"}

    def test_follower_stays_close_to_leader(self):
        cfg = AisConfig(
            num_vessels=4, follower_pairs=1, rate=100.0, follow_distance=300.0
        )
        gen = AisVesselGenerator(cfg)
        leader_id, follower_id = gen.follower_pairs[0]
        last = {}
        max_dist = 0.0
        for tup in gen.tuples(4000):
            last[tup["id"]] = (tup["x"], tup["y"])
            if leader_id in last and follower_id in last:
                lx, ly = last[leader_id]
                fx, fy = last[follower_id]
                max_dist = max(max_dist, math.hypot(lx - fx, ly - fy))
        assert max_dist < 1000.0

    def test_non_followers_disperse(self):
        cfg = AisConfig(num_vessels=4, follower_pairs=0, rate=100.0, seed=9)
        gen = AisVesselGenerator(cfg)
        first = {}
        last = {}
        for tup in gen.tuples(4000):
            first.setdefault(tup["id"], (tup["x"], tup["y"]))
            last[tup["id"]] = (tup["x"], tup["y"])
        moved = [
            math.hypot(last[k][0] - first[k][0], last[k][1] - first[k][1])
            for k in first
        ]
        assert max(moved) > 10.0

    def test_rejects_too_many_pairs(self):
        with pytest.raises(ValueError):
            AisConfig(num_vessels=3, follower_pairs=2)


class TestReplay:
    def test_roundtrip(self, tmp_path):
        gen = NyseTradeGenerator(NyseConfig(num_symbols=2))
        tuples = take(gen.tuples(20), 20)
        path = tmp_path / "trace.csv"
        count = write_trace(path, tuples, ("time", "symbol", "price", "qty"))
        assert count == 20
        replayed = list(read_trace(path))
        assert len(replayed) == 20
        assert replayed[0]["symbol"] == tuples[0]["symbol"]
        assert replayed[0]["price"] == pytest.approx(tuples[0]["price"])
        assert isinstance(replayed[0]["price"], float)

    def test_take(self):
        assert take(iter(range(100)), 5) == [0, 1, 2, 3, 4]
        assert take(iter(range(3)), 10) == [0, 1, 2]


class TestMalformedTraces:
    def damaged(self, tmp_path):
        path = tmp_path / "damaged.csv"
        path.write_text(
            "time,x\n"
            "0.0,1.0\n"
            "1.0\n"            # truncated row
            "2.0,not-a-float\n"  # unparsable numeric
            "\n"               # blank line: not damage
            "3.0,4.0,extra\n"  # too many fields
            "4.0,5.0\n"
        )
        return path

    def test_lenient_skips_and_counts(self, tmp_path):
        from repro.engine.metrics import get_counter

        counter = get_counter("replay.skipped_rows")
        counter.reset()
        skipped = []
        rows = list(
            read_trace(
                self.damaged(tmp_path),
                on_skip=lambda n, row, exc: skipped.append(n),
            )
        )
        assert [r["x"] for r in rows] == [1.0, 5.0]
        assert skipped == [2, 3, 5]
        assert counter.value == 3

    def test_strict_raises_typed_error_with_row_number(self, tmp_path):
        from repro.core.errors import TraceError

        with pytest.raises(TraceError) as info:
            list(read_trace(self.damaged(tmp_path), strict=True))
        assert "row 2" in str(info.value)

    def test_missing_header_always_raises(self, tmp_path):
        from repro.core.errors import TraceError

        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(TraceError):
            list(read_trace(empty))
