"""The trace-replay damage matrix: every failure class, both modes.

Each damage class that can appear in a CSV trace gets a strict-mode
expectation (typed :class:`TraceError` with the 1-based row number) and
a lenient-mode expectation (skip + count + ``on_skip`` report).  The
non-finite rows are the regression pin for the replay boundary bug:
``float("nan")`` parses, so without the explicit finite-check those
values sailed straight into segment fitting.
"""

import math

import pytest

from repro.core.errors import TraceError
from repro.engine.metrics import get_counter
from repro.engine.tuples import StreamTuple
from repro.workloads import read_trace, write_trace


def trace(tmp_path, body, header="time,id,x"):
    path = tmp_path / "trace.csv"
    path.write_text(header + "\n" + body)
    return path


def read_all(path, **kwargs):
    return list(read_trace(path, **kwargs))


class TestNonFiniteRows:
    """nan/inf/-inf parse as floats but are damage, not data."""

    BODY = (
        "0.0,a,1.0\n"
        "0.1,a,nan\n"
        "0.2,a,inf\n"
        "0.3,a,-inf\n"
        "0.4,a,Infinity\n"
        "0.5,a,2.0\n"
    )

    def test_lenient_skips_and_counts_each_variant(self, tmp_path):
        skipped = get_counter("replay.skipped_rows")
        nonfinite = get_counter("replay.nonfinite_rows")
        skipped.reset()
        nonfinite.reset()
        rows = read_all(trace(tmp_path, self.BODY))
        assert [r["x"] for r in rows] == [1.0, 2.0]
        assert skipped.value == 4
        assert nonfinite.value == 4

    def test_lenient_reports_on_skip(self, tmp_path):
        reported = []
        read_all(
            trace(tmp_path, self.BODY),
            on_skip=lambda n, row, exc: reported.append((n, str(exc))),
        )
        assert [n for n, _ in reported] == [2, 3, 4, 5]
        assert all("non-finite" in msg for _, msg in reported)

    def test_strict_raises_typed_error_with_row(self, tmp_path):
        with pytest.raises(TraceError) as info:
            read_all(trace(tmp_path, self.BODY), strict=True)
        assert info.value.row == 2
        assert "non-finite" in str(info.value)

    def test_nonfinite_time_field_also_rejected(self, tmp_path):
        body = "nan,a,1.0\n0.1,a,2.0\n"
        rows = read_all(trace(tmp_path, body))
        assert len(rows) == 1
        with pytest.raises(TraceError):
            read_all(trace(tmp_path, body), strict=True)

    def test_no_nonfinite_value_survives_replay(self, tmp_path):
        rows = read_all(trace(tmp_path, self.BODY))
        for row in rows:
            for value in row.values():
                if isinstance(value, float):
                    assert math.isfinite(value)


class TestShapeDamage:
    def test_short_row(self, tmp_path):
        path = trace(tmp_path, "0.0,a,1.0\n0.1,a\n0.2,a,2.0\n")
        assert [r["x"] for r in read_all(path)] == [1.0, 2.0]
        with pytest.raises(TraceError) as info:
            read_all(path, strict=True)
        assert info.value.row == 2

    def test_long_row(self, tmp_path):
        path = trace(tmp_path, "0.0,a,1.0\n0.1,a,2.0,extra\n0.2,a,3.0\n")
        assert [r["x"] for r in read_all(path)] == [1.0, 3.0]
        with pytest.raises(TraceError) as info:
            read_all(path, strict=True)
        assert info.value.row == 2

    def test_blank_lines_are_not_damage(self, tmp_path):
        skipped = get_counter("replay.skipped_rows")
        skipped.reset()
        path = trace(tmp_path, "0.0,a,1.0\n\n\n0.1,a,2.0\n")
        assert len(read_all(path, strict=True)) == 2
        assert skipped.value == 0

    def test_unparsable_numeric(self, tmp_path):
        nonfinite = get_counter("replay.nonfinite_rows")
        nonfinite.reset()
        path = trace(tmp_path, "0.0,a,not-a-float\n0.1,a,2.0\n")
        assert [r["x"] for r in read_all(path)] == [2.0]
        # text damage is skipped but NOT counted as non-finite
        assert nonfinite.value == 0


class TestHeaderDamage:
    def test_empty_file_raises_both_modes(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TraceError):
            read_all(path)
        with pytest.raises(TraceError):
            read_all(path, strict=True)

    def test_unknown_numeric_field_raises_both_modes(self, tmp_path):
        path = trace(tmp_path, "0.0,a,1.0\n")
        for strict in (False, True):
            with pytest.raises(TraceError) as info:
                read_all(path, numeric_fields=["nope"], strict=strict)
            assert "nope" in str(info.value)


class TestWriteDamage:
    def test_missing_field_raises_typed_error(self, tmp_path):
        path = tmp_path / "out.csv"
        tuples = [
            StreamTuple({"time": 0.0, "id": "a", "x": 1.0}),
            StreamTuple({"time": 0.1, "id": "a", "x": 2.0}),
            StreamTuple({"time": 0.2, "id": "a"}),  # no 'x'
        ]
        with pytest.raises(TraceError) as info:
            write_trace(path, tuples, ("time", "id", "x"))
        assert info.value.row == 3
        assert info.value.field == "x"

    def test_partial_output_is_flushed_and_complete(self, tmp_path):
        path = tmp_path / "out.csv"
        tuples = [
            StreamTuple({"time": 0.0, "id": "a", "x": 1.0}),
            StreamTuple({"time": 0.1, "id": "a"}),
        ]
        with pytest.raises(TraceError):
            write_trace(path, tuples, ("time", "id", "x"))
        # header + exactly the complete rows before the failure
        lines = path.read_text().splitlines()
        assert lines[0] == "time,id,x"
        assert lines[1:] == ["0.0,a,1.0"]
        # and the partial trace replays cleanly
        assert [r["x"] for r in read_all(path, strict=True)] == [1.0]

    def test_partial_then_roundtrip(self, tmp_path):
        """A resumed export (skip the bad tuple) replays bit-exact."""
        path = tmp_path / "out.csv"
        good = [
            StreamTuple({"time": float(i), "id": "a", "x": i * 1.5})
            for i in range(5)
        ]
        write_trace(path, good, ("time", "id", "x"))
        replayed = read_all(path, strict=True)
        assert [r["x"] for r in replayed] == [t["x"] for t in good]
