"""The per-key circuit breaker: state machine, windows, metrics."""

import pytest

from repro.engine.metrics import counter_snapshot, get_gauge
from repro.engine.resilience import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)

pytestmark = pytest.mark.resilience

Q = "q"
K = ("k",)


def breaker(**kw):
    defaults = dict(
        failure_threshold=3,
        violation_window=8,
        violation_threshold=0.5,
        min_window=4,
        backoff=4,
        probe_successes=1,
    )
    defaults.update(kw)
    return CircuitBreaker(BreakerConfig(**defaults))


class TestFailureTrip:
    def test_stays_closed_below_threshold(self):
        b = breaker()
        b.record_failure(Q, K)
        b.record_failure(Q, K)
        assert b.state(Q, K) is BreakerState.CLOSED
        assert b.allow(Q, K)

    def test_opens_at_threshold(self):
        b = breaker()
        for _ in range(3):
            b.record_failure(Q, K)
        assert b.state(Q, K) is BreakerState.OPEN
        assert not b.allow(Q, K)
        assert counter_snapshot("resilience.breaker.opened") == {
            "resilience.breaker.opened": 1
        }
        assert get_gauge("resilience.breaker.open_keys").value == 1

    def test_success_resets_consecutive_count(self):
        b = breaker()
        b.record_failure(Q, K)
        b.record_failure(Q, K)
        b.record_success(Q, K)
        b.record_failure(Q, K)
        b.record_failure(Q, K)
        assert b.state(Q, K) is BreakerState.CLOSED

    def test_keys_are_independent(self):
        b = breaker()
        for _ in range(3):
            b.record_failure(Q, ("bad",))
        assert b.state(Q, ("bad",)) is BreakerState.OPEN
        assert b.state(Q, ("good",)) is BreakerState.CLOSED
        assert b.allow(Q, ("good",))

    def test_untracked_keys_carry_no_state(self):
        b = breaker()
        b.record_success(Q, K)
        b.record_valid(Q, K)
        assert list(b.tracked_keys()) == []


class TestQuarantineAndRecovery:
    def trip(self, b):
        for _ in range(3):
            b.record_failure(Q, K)

    def test_backoff_then_half_open_probe(self):
        b = breaker(backoff=4)
        self.trip(b)
        refused = [b.allow(Q, K) for _ in range(3)]
        assert refused == [False, False, False]
        # The 4th arrival becomes the probe.
        assert b.allow(Q, K)
        assert b.state(Q, K) is BreakerState.HALF_OPEN
        snap = counter_snapshot("resilience.breaker")
        assert snap["resilience.breaker.shed"] == 3
        assert snap["resilience.breaker.half_open"] == 1

    def test_probe_success_closes(self):
        b = breaker(backoff=1)
        self.trip(b)
        assert b.allow(Q, K)  # straight to probe
        b.record_success(Q, K)
        assert b.state(Q, K) is BreakerState.CLOSED
        assert b.allow(Q, K)
        snap = counter_snapshot("resilience.breaker")
        assert snap["resilience.breaker.closed"] == 1
        assert get_gauge("resilience.breaker.open_keys").value == 0

    def test_probe_failure_reopens(self):
        b = breaker(backoff=2)
        self.trip(b)
        assert not b.allow(Q, K)
        assert b.allow(Q, K)  # backoff elapsed: the probe
        b.record_failure(Q, K)
        assert b.state(Q, K) is BreakerState.OPEN
        assert not b.allow(Q, K)  # a fresh quarantine has begun
        snap = counter_snapshot("resilience.breaker")
        assert snap["resilience.breaker.probe_failures"] == 1
        assert snap["resilience.breaker.opened"] == 2

    def test_multiple_probe_successes_required(self):
        b = breaker(backoff=1, probe_successes=2)
        self.trip(b)
        assert b.allow(Q, K)
        b.record_success(Q, K)
        assert b.state(Q, K) is BreakerState.HALF_OPEN
        b.record_success(Q, K)
        assert b.state(Q, K) is BreakerState.CLOSED


class TestViolationRateTrip:
    def test_no_trip_below_min_window(self):
        b = breaker(min_window=4)
        for _ in range(3):
            b.record_violation(Q, K)
        assert b.state(Q, K) is BreakerState.CLOSED

    def test_trips_on_rate_over_window(self):
        b = breaker(min_window=4, violation_threshold=0.5)
        for _ in range(4):
            b.record_violation(Q, K)
        assert b.state(Q, K) is BreakerState.OPEN

    def test_valid_traffic_keeps_rate_low(self):
        b = breaker(min_window=4, violation_window=8)
        b.record_violation(Q, K)  # creates tracking
        for _ in range(20):
            b.record_valid(Q, K)
            b.record_valid(Q, K)
            b.record_violation(Q, K)
        # Rate stays at ~1/3, never above the > 0.5 threshold.
        assert b.state(Q, K) is BreakerState.CLOSED

    def test_window_slides(self):
        b = breaker(min_window=4, violation_window=4)
        for _ in range(3):
            b.record_violation(Q, K)
        # Three clean outcomes push the violations out of the window.
        for _ in range(3):
            b.record_valid(Q, K)
        b.record_violation(Q, K)
        assert b.state(Q, K) is BreakerState.CLOSED


class TestObservation:
    def test_open_keys_lists_unhealthy_only(self):
        b = breaker()
        for _ in range(3):
            b.record_failure(Q, ("bad",))
        b.record_failure(Q, ("meh",))
        assert b.open_keys() == [(Q, ("bad",))]

    def test_snapshot_counts_states(self):
        b = breaker(backoff=1)
        for _ in range(3):
            b.record_failure(Q, ("open",))
        for _ in range(3):
            b.record_failure(Q, ("probing",))
        b.allow(Q, ("probing",))
        b.record_failure(Q, ("tracked",))
        snap = b.snapshot()
        assert snap["open"] == 1
        assert snap["half_open"] == 1
        assert snap["closed"] == 1
        assert snap["tracked"] == 3

    def test_recovered_fraction(self):
        b = breaker(backoff=1)
        assert b.recovered_fraction() == 1.0  # nothing ever tripped
        for key in (("a",), ("b",)):
            for _ in range(3):
                b.record_failure(Q, key)
        assert b.recovered_fraction() == 0.0
        b.allow(Q, ("a",))
        b.record_success(Q, ("a",))
        assert b.recovered_fraction() == 0.5
        b.allow(Q, ("b",))
        b.record_success(Q, ("b",))
        assert b.recovered_fraction() == 1.0
