"""The runtime under fault injection: containment, fallback, recovery."""

import math

import pytest

from repro.core.polynomial import Polynomial
from repro.core.segment import Segment
from repro.core.transform import to_continuous_plan
from repro.engine.lowering import to_discrete_plan
from repro.engine.metrics import counter_snapshot, get_gauge
from repro.engine.resilience import BreakerConfig, BreakerState
from repro.engine.scheduler import QueryRuntime
from repro.engine.tuples import StreamTuple
from repro.query import parse_query, plan_query
from repro.testing import (
    corrupt_tuples,
    force_eigvals_failures,
    inject_solver_faults,
)

pytestmark = pytest.mark.resilience

KEYS = [(f"k{i}",) for i in range(10)]


def planned(threshold=0.0):
    return plan_query(parse_query(f"select * from s where x > {threshold}"))


def runtime(**kw):
    kw.setdefault(
        "breaker",
        BreakerConfig(failure_threshold=2, backoff=3, probe_successes=1),
    )
    rt = QueryRuntime(batch_size=8, **kw)
    p = planned()
    rt.register("q", to_continuous_plan(p), fallback=to_discrete_plan(p))
    return rt


def feed(rt, phase, rounds, keys=KEYS):
    """Enqueue ``rounds`` distinct segments per key (cache-busting)."""
    for j in range(rounds):
        for i, key in enumerate(keys):
            t0 = float(phase * 1000 + j * 10)
            value = 1.0 + i + 0.01 * j + 0.001 * phase
            rt.enqueue(
                "s", Segment(key, t0, t0 + 1.0, {"x": Polynomial([value])})
            )


class TestFaultContainment:
    def test_solver_raise_faults_never_escape_step(self):
        rt = runtime()
        feed(rt, 0, 3)
        with inject_solver_faults(rate=1.0) as stats:
            rt.run_until_idle()
        assert stats.injected > 0
        assert rt.step_errors > 0
        assert rt.total_pending == 0
        # Every arrival was served by the discrete twin instead.
        res = rt.resilience_stats()
        assert res["fallback_items"]["q"] > 0
        outputs = rt.outputs("q")
        assert outputs  # x > 0 everywhere: the fallback still answers
        assert all(isinstance(o, StreamTuple) for o in outputs)

    def test_eigvals_faults_contained(self):
        rt = runtime()
        # Quintic models force the companion-matrix eigensolve
        # (degrees 1-4 take the closed-form kernels).
        for i, key in enumerate(KEYS[:4]):
            rt.enqueue(
                "s",
                Segment(
                    key, 0.0, 10.0,
                    {"x": Polynomial([-(i + 1.0), 0.0, 0.0, 0.0, 0.0, 1.0])},
                ),
            )
        with force_eigvals_failures(rate=1.0):
            rt.run_until_idle()
        assert rt.step_errors == 4
        assert rt.resilience_stats()["fallback_items"]["q"] == 4

    def test_corrupt_tuples_contained_on_discrete_path(self):
        rt = QueryRuntime()
        rt.register("d", to_discrete_plan(planned()))
        clean = [
            StreamTuple({"time": float(i), "x": 1.0}) for i in range(100)
        ]
        for tup in corrupt_tuples(clean, rate=0.3, seed=2, modes=("drop-field",)):
            rt.enqueue("s", tup)
        rt.run_until_idle()  # must not raise
        assert rt.step_errors > 0
        assert len(rt.outputs("d")) == 100 - rt.step_errors

    def test_nan_poisoned_models_contained(self):
        rt = runtime()
        rt.enqueue(
            "s", Segment(("k0",), 0.0, 1.0, {"x": Polynomial([math.nan])})
        )
        rt.run_until_idle()
        assert rt.step_errors == 1


class TestBreakerIntegration:
    def test_transitions_visible_in_metrics(self):
        rt = runtime()
        feed(rt, 0, 3)
        with inject_solver_faults(rate=1.0):
            rt.run_until_idle()
        snap = counter_snapshot("resilience.breaker")
        assert snap["resilience.breaker.opened"] >= len(KEYS)
        assert get_gauge("resilience.breaker.open_keys").value > 0
        # Recovery phase: faults stop, arrivals keep coming.
        feed(rt, 1, 6)
        rt.run_until_idle()
        snap = counter_snapshot("resilience.breaker")
        assert snap["resilience.breaker.half_open"] >= len(KEYS)
        assert snap["resilience.breaker.closed"] >= len(KEYS)
        assert snap["resilience.breaker.shed"] > 0
        assert get_gauge("resilience.breaker.open_keys").value == 0

    def test_quarantined_keys_served_by_fallback(self):
        rt = runtime()
        feed(rt, 0, 2)
        with inject_solver_faults(rate=1.0):
            rt.run_until_idle()
        # All keys are OPEN now; clean arrivals for them degrade to the
        # discrete twin while quarantined (before the probe).
        before = rt.resilience_stats()["fallback_items"]["q"]
        feed(rt, 1, 1)
        rt.run_until_idle()
        assert rt.resilience_stats()["fallback_items"]["q"] > before

    def test_recovery_fraction_meets_acceptance_bar(self):
        """>= 95% of affected keys back on the continuous path."""
        rt = runtime()
        feed(rt, 0, 3)
        with inject_solver_faults(rate=1.0):
            rt.run_until_idle()
        assert rt.breaker.recovered_fraction() == 0.0
        feed(rt, 1, 6)
        rt.run_until_idle()
        assert rt.breaker.recovered_fraction() >= 0.95
        for key in KEYS:
            assert rt.breaker.state("q", key) is BreakerState.CLOSED
        # Healthy again: continuous outputs are segments once more.
        rt.outputs("q")
        feed(rt, 2, 1)
        rt.run_until_idle()
        outputs = rt.outputs("q")
        assert any(isinstance(o, Segment) for o in outputs)

    def test_partial_fault_rate_only_trips_unlucky_keys(self):
        rt = runtime()
        feed(rt, 0, 4)
        with inject_solver_faults(rate=0.3, seed=4):
            rt.run_until_idle()
        tracked = rt.breaker.snapshot()["tracked"]
        assert 0 < tracked <= len(KEYS)

    def test_no_breaker_still_degrades(self):
        rt = runtime(breaker=None)
        feed(rt, 0, 1)
        with inject_solver_faults(rate=1.0):
            rt.run_until_idle()
        assert rt.step_errors == len(KEYS)
        assert rt.resilience_stats()["fallback_items"]["q"] == len(KEYS)


class TestBackPressureUnderFaults:
    def test_shed_oldest_admits_new_arrivals(self):
        rt = QueryRuntime(
            queue_capacity=4, backpressure="shed-oldest", batch_size=8
        )
        rt.register("q", to_continuous_plan(planned()))
        for j in range(8):
            assert rt.enqueue(
                "s",
                Segment((f"k{j}",), j, j + 1.0, {"x": Polynomial([1.0])}),
            )
        assert rt.total_pending == 4
        assert rt.items_shed == 4
        assert counter_snapshot("runtime.shed_oldest") == {
            "runtime.shed_oldest": 4
        }

    def test_shed_newest_drops_incoming(self):
        rt = QueryRuntime(queue_capacity=4, backpressure="shed-newest")
        rt.register("q", to_continuous_plan(planned()))
        accepted = 0
        for j in range(8):
            accepted += rt.enqueue(
                "s",
                Segment((f"k{j}",), j, j + 1.0, {"x": Polynomial([1.0])}),
            )
        assert accepted == 4
        assert rt.items_shed == 4
        assert counter_snapshot("runtime.shed_newest") == {
            "runtime.shed_newest": 4
        }

    def test_block_policy_counts_refusals(self):
        rt = QueryRuntime(queue_capacity=2, backpressure="block")
        rt.register("q", to_continuous_plan(planned()))
        for j in range(5):
            rt.enqueue(
                "s",
                Segment((f"k{j}",), j, j + 1.0, {"x": Polynomial([1.0])}),
            )
        assert counter_snapshot("runtime.blocked") == {"runtime.blocked": 3}
