"""Breaker durability round-trips: restore must change *nothing*.

The pinned property: a breaker restored from ``state_dict()`` makes the
same next routing decision — and the same decision after *any* further
outcome — as the original would have.  Each test drives an original and
its restored twin through the identical event sequence and asserts the
states stay in lockstep, for every reachable breaker state including
the mid-flight ones a wall-clock checkpoint can land in: OPEN with
partial quarantine, HALF_OPEN mid-probe, a half-full violation window.
"""

import pytest

from repro.engine.resilience import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)

pytestmark = pytest.mark.resilience

Q = "q"
K = ("k",)


def breaker(**kw):
    defaults = dict(
        failure_threshold=3,
        violation_window=8,
        violation_threshold=0.5,
        min_window=4,
        backoff=4,
        probe_successes=2,
    )
    defaults.update(kw)
    return CircuitBreaker(BreakerConfig(**defaults))


def restored(original):
    twin = CircuitBreaker()
    twin.load_state(original.state_dict())
    return twin


def assert_lockstep(a, b, events, keys=(K,)):
    """Drive both breakers through ``events`` asserting identical
    decisions at every step.  Events are (method, key) pairs; ``allow``
    is a decision *and* a mutation (quarantine ticks), so interleaving
    it exercises the arrival-counted backoff clock."""
    for method, key in events:
        ra = getattr(a, method)(Q, key)
        rb = getattr(b, method)(Q, key)
        assert ra == rb, f"diverged on {method}({key}): {ra} vs {rb}"
        for k in keys:
            assert a.state(Q, k) is b.state(Q, k)


class TestPlainStates:
    def test_untouched_breaker_round_trips(self):
        b = breaker()
        t = restored(b)
        assert t.state(Q, K) is BreakerState.CLOSED
        assert t.allow(Q, K)
        assert t.config == b.config

    def test_closed_with_partial_failures(self):
        b = breaker()
        b.record_failure(Q, K)
        b.record_failure(Q, K)  # one below threshold
        t = restored(b)
        assert_lockstep(b, t, [("record_failure", K)])
        assert t.state(Q, K) is BreakerState.OPEN  # third strike lands

    def test_open_round_trips(self):
        b = breaker()
        for _ in range(3):
            b.record_failure(Q, K)
        t = restored(b)
        assert t.state(Q, K) is BreakerState.OPEN
        assert not t.allow(Q, K)
        assert t.state_dict()["health"][0]["times_opened"] == 1


class TestMidFlightStates:
    def test_open_with_partial_quarantine(self):
        # backoff=4: consume 2 ticks, checkpoint, restore — the twin
        # must refuse exactly one more arrival, then probe.
        b = breaker()
        for _ in range(3):
            b.record_failure(Q, K)
        assert not b.allow(Q, K)
        assert not b.allow(Q, K)
        t = restored(b)
        assert_lockstep(b, t, [("allow", K)] * 3)
        assert t.state(Q, K) is BreakerState.HALF_OPEN

    def test_half_open_mid_probe(self):
        # probe_successes=2: record one success, checkpoint mid-probe.
        b = breaker()
        for _ in range(3):
            b.record_failure(Q, K)
        for _ in range(4):
            b.allow(Q, K)  # exhaust backoff → HALF_OPEN
        b.record_success(Q, K)
        assert b.state(Q, K) is BreakerState.HALF_OPEN
        t = restored(b)
        assert t.state_dict()["health"][0]["probe_successes"] == 1
        # One more success closes both; a fresh breaker would need two.
        assert_lockstep(b, t, [("record_success", K)])
        assert t.state(Q, K) is BreakerState.CLOSED

    def test_half_open_probe_failure_reopens_twin(self):
        b = breaker()
        for _ in range(3):
            b.record_failure(Q, K)
        for _ in range(4):
            b.allow(Q, K)
        t = restored(b)
        assert_lockstep(b, t, [("record_failure", K)])
        assert t.state(Q, K) is BreakerState.OPEN
        assert t.state_dict()["health"][0]["times_opened"] == 2

    def test_violation_window_contents_survive(self):
        # Window [T, F, T]: one below min_window=4.  The restored twin
        # must trip on the same next violation the original trips on.
        b = breaker()
        b.record_violation(Q, K)
        b.record_valid(Q, K)
        b.record_violation(Q, K)
        t = restored(b)
        assert t.state_dict()["health"][0]["violations"] == [
            True, False, True,
        ]
        assert_lockstep(b, t, [("record_violation", K)])
        # [T,F,T,T] → 3/4 > 0.5 with window full: OPEN.
        assert t.state(Q, K) is BreakerState.OPEN


class TestPopulationAndConfig:
    def test_multiple_keys_round_trip_independently(self):
        b = breaker()
        k2, k3 = ("x",), ("y",)
        for _ in range(3):
            b.record_failure(Q, K)       # OPEN
        b.record_failure(Q, k2)          # CLOSED, 1 strike
        b.record_violation(Q, k3)        # CLOSED, window started
        t = restored(b)
        assert t.state(Q, K) is BreakerState.OPEN
        assert t.state(Q, k2) is BreakerState.CLOSED
        assert t.state(Q, k3) is BreakerState.CLOSED
        assert_lockstep(
            b,
            t,
            [
                ("allow", K),
                ("record_failure", k2),
                ("record_failure", k2),
                ("record_violation", k3),
                ("allow", K),
            ],
            keys=(K, k2, k3),
        )

    def test_config_is_part_of_the_state(self):
        b = breaker(failure_threshold=7, backoff=11)
        t = restored(b)
        assert t.config.failure_threshold == 7
        assert t.config.backoff == 11

    def test_open_keys_gauge_resyncs_on_load(self):
        from repro.engine.metrics import get_gauge

        b = breaker()
        for _ in range(3):
            b.record_failure(Q, K)
        fresh = CircuitBreaker()
        get_gauge("resilience.breaker.open_keys").set(0)
        fresh.load_state(b.state_dict())
        assert get_gauge("resilience.breaker.open_keys").value == 1

    def test_long_lockstep_fuzz(self):
        # A scripted 60-event mixed sequence with a checkpoint in the
        # middle: restore at an arbitrary cut point, then both must
        # track each other to the end.
        import random

        rng = random.Random(123)
        keys = [("a",), ("b",), ("c",)]
        methods = (
            "allow",
            "record_failure",
            "record_success",
            "record_violation",
            "record_valid",
        )
        b = breaker()
        prefix = [
            (rng.choice(methods), rng.choice(keys)) for _ in range(30)
        ]
        for method, key in prefix:
            getattr(b, method)(Q, key)
        t = restored(b)
        suffix = [
            (rng.choice(methods), rng.choice(keys)) for _ in range(30)
        ]
        assert_lockstep(b, t, suffix, keys=keys)
