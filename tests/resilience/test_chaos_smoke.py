"""Chaos smoke: the Fig. 5 filter workload with injected solver faults.

The acceptance run from the issue: a realistic moving-object workload,
5% of solves failing, and the system must produce nonzero output with
zero uncaught exceptions while the breakers degrade and recover.
"""

import pytest

from repro.core.transform import to_continuous_plan
from repro.engine.lowering import to_discrete_plan
from repro.engine.resilience import BreakerConfig
from repro.engine.scheduler import QueryRuntime
from repro.fitting import build_segments
from repro.query import parse_query, plan_query
from repro.testing import inject_solver_faults
from repro.workloads import MovingObjectConfig, MovingObjectGenerator

pytestmark = pytest.mark.resilience


def workload(n=1500, tuples_per_segment=25):
    gen = MovingObjectGenerator(
        MovingObjectConfig(
            num_objects=5,
            rate=10_000.0,
            tuples_per_segment=tuples_per_segment,
            seed=42,
        )
    )
    tuples = list(gen.tuples(n))
    segments = build_segments(
        tuples, attrs=("x",), tolerance=1e-6,
        key_fields=("id",), constants=("id",),
    )
    return tuples, segments


@pytest.mark.parametrize("rate", [0.05, 0.10])
def test_fig5_filter_survives_injected_faults(rate):
    _, segments = workload()
    p = plan_query(parse_query("select * from s where x > 0"))
    rt = QueryRuntime(
        batch_size=16,
        breaker=BreakerConfig(failure_threshold=2, backoff=2),
    )
    rt.register("q", to_continuous_plan(p), fallback=to_discrete_plan(p))
    with inject_solver_faults(rate=rate, seed=7) as stats:
        for seg in segments:
            rt.enqueue("s", seg)
        rt.run_until_idle()  # an uncaught exception fails the test
    assert stats.injected > 0, "the chaos run must actually inject faults"
    assert rt.total_pending == 0
    assert rt.outputs("q"), "faulted run must still produce output"
    res = rt.resilience_stats()
    assert res["step_errors"] == rt.step_errors


def test_faulted_run_recovers_after_chaos_ends():
    _, segments = workload()
    p = plan_query(parse_query("select * from s where x > 0"))
    rt = QueryRuntime(
        batch_size=16,
        breaker=BreakerConfig(failure_threshold=1, backoff=2),
    )
    rt.register("q", to_continuous_plan(p), fallback=to_discrete_plan(p))
    half = len(segments) // 2
    with inject_solver_faults(rate=0.10, seed=3):
        for seg in segments[:half]:
            rt.enqueue("s", seg)
        rt.run_until_idle()
    # Chaos over: the rest of the trace drives probes and closes.
    for seg in segments[half:]:
        rt.enqueue("s", seg)
    rt.run_until_idle()
    assert rt.breaker.recovered_fraction() >= 0.95
