"""Shared fixtures for the resilience suite.

Fault injection and breaker tests assert on the *global* metrics
registry and rely on every solve being a cache miss (the fault hook only
sees misses), so each test starts and ends with a clean slate.
"""

import pytest

from repro.core import batch_solver
from repro.core.solve_cache import reset_global_solve_cache
from repro.engine.metrics import reset_counters


@pytest.fixture(autouse=True)
def clean_slate():
    reset_global_solve_cache()
    reset_counters()
    yield
    # Injectors restore on exit, but a test that failed mid-context
    # must not leak its hook into the next test.
    batch_solver.set_fault_hook(None)
    reset_global_solve_cache()
    reset_counters()
