"""``Outcome.UNKNOWN`` routing: unmodelled tuples always process.

The paper's validation only ever *drops* a tuple when an active model
plus an inverted bound (or slack) vouches for it.  Any gap — no model,
out of range, no allocation, or a model deactivated by a solver failure
— must route the tuple to processing.  These tests pin that contract,
including the breaker-forced re-model path.
"""

import pytest

from repro.core.errors import PulseError
from repro.core.polynomial import Polynomial
from repro.core.segment import Segment
from repro.core.transform import to_continuous_plan
from repro.core.validation import ErrorBound, Outcome, QueryValidator
from repro.query import parse_query, plan_query
from repro.testing import inject_solver_faults

pytestmark = pytest.mark.resilience


def build(sql="select * from s where x > 0", bound=1.0):
    planned = plan_query(parse_query(sql))
    return QueryValidator(to_continuous_plan(planned), ErrorBound(bound))


def seg(lo, hi, value, key=("k",)):
    return Segment(key, lo, hi, {"x": Polynomial([value])})


class TestUnknownIsNeverDroppable:
    def test_unknown_cannot_drop(self):
        assert not Outcome.UNKNOWN.can_drop

    def test_no_model_counts_unknown(self):
        v = build()
        assert v.validate(("nope",), "x", 0.0, 1.0) is Outcome.UNKNOWN
        assert v.stats.unknown == 1
        assert v.stats.dropped == 0

    def test_out_of_range_counts_unknown(self):
        v = build()
        v.ingest("s", seg(0, 10, 5.0))
        assert v.validate(("k",), "x", 50.0, 5.0) is Outcome.UNKNOWN
        assert v.stats.unknown == 1

    def test_unmodelled_attr_counts_unknown(self):
        v = build()
        v.ingest("s", seg(0, 10, 5.0))
        assert v.validate(("k",), "x", 3.0, 5.2) is Outcome.ACCURATE
        assert v.validate(("k",), "y", 3.0, 5.2) is Outcome.UNKNOWN
        assert v.stats.unknown == 1

    def test_no_bound_and_no_slack_counts_unknown(self):
        # Ingest nothing: the key has a model only after ingest, so
        # activate() alone (no allocation, no slack) is the gap case.
        v = build()
        v.activate(seg(0, 10, 5.0))
        assert v.validate(("k",), "x", 3.0, 5.0) is Outcome.UNKNOWN
        assert v.stats.unknown == 1


class TestOutcomeListener:
    def test_listener_sees_every_outcome(self):
        v = build()
        seen = []
        v.outcome_listener = lambda key, outcome: seen.append((key, outcome))
        v.ingest("s", seg(0, 10, 5.0))
        v.validate(("k",), "x", 3.0, 5.2)   # ACCURATE
        v.validate(("k",), "x", 3.0, 9.0)   # VIOLATION
        v.validate(("other",), "x", 3.0, 9.0)  # UNKNOWN
        assert seen == [
            (("k",), Outcome.ACCURATE),
            (("k",), Outcome.VIOLATION),
            (("other",), Outcome.UNKNOWN),
        ]


class TestSolverFailureDeactivation:
    def test_failed_ingest_routes_key_to_unknown(self):
        v = build()
        # A healthy model first, so the key would otherwise validate.
        v.ingest("s", seg(0, 10, 5.0))
        assert v.validate(("k",), "x", 3.0, 5.2) is Outcome.ACCURATE
        # Re-model under a total solver fault: ingest raises, the key's
        # model is deactivated.
        with inject_solver_faults(rate=1.0):
            with pytest.raises(PulseError):
                v.ingest("s", seg(10, 20, 6.0))
        assert v.stats.solver_failures == 1
        # Tuples for the key now route to processing, never dropped.
        out = v.validate(("k",), "x", 12.0, 6.0)
        assert out is Outcome.UNKNOWN
        assert v.stats.unknown == 1

    def test_recovery_after_clean_remodel(self):
        """The breaker-forced re-model: a later clean ingest restores
        validated dropping for the key."""
        v = build()
        with inject_solver_faults(rate=1.0):
            with pytest.raises(PulseError):
                v.ingest("s", seg(0, 10, 5.0))
        assert v.validate(("k",), "x", 3.0, 5.0) is Outcome.UNKNOWN
        v.ingest("s", seg(10, 20, 5.0))
        assert v.validate(("k",), "x", 12.0, 5.2) is Outcome.ACCURATE
        assert v.stats.dropped == 1
