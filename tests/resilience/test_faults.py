"""The fault injectors themselves: rates, determinism, restoration."""

import math

import pytest

from repro.core import batch_solver
from repro.core.errors import SolverFailure
from repro.core.polynomial import Polynomial
from repro.core.relation import Rel
from repro.core.roots import real_roots
from repro.core.batch_solver import real_roots_batch, solve_tasks
from repro.engine.tuples import StreamTuple
from repro.testing import (
    corrupt_tuples,
    force_eigvals_failures,
    inject_solver_faults,
)

pytestmark = pytest.mark.resilience


def tasks(n, lo=0.0, hi=10.0):
    """Distinct linear tasks so nothing hits the solve cache."""
    return [
        (Polynomial([-(i + 1.0), 1.0]), Rel.GT, lo, hi) for i in range(n)
    ]


def quintics(n):
    """Distinct quintics with real roots (degree >= 5 hits the
    eigensolver; degrees 1-4 take closed forms and never touch it)."""
    return [
        (Polynomial([-(i + 1.0), 0.0, 0.0, 0.0, 0.0, 1.0]), -100.0, 100.0)
        for i in range(n)
    ]


class TestSolverFaultInjector:
    def test_raise_kind_records_typed_failures(self):
        failures = {}
        with inject_solver_faults(rate=1.0, kind="raise") as stats:
            results = solve_tasks(tasks(8), failures)
        assert stats.calls == 8
        assert stats.injected == 8
        assert set(failures) == set(range(8))
        for exc in failures.values():
            assert isinstance(exc, SolverFailure)
            assert exc.reason == "injected"
        assert all(r.is_empty for r in results)

    def test_raise_kind_propagates_without_failures_dict(self):
        with inject_solver_faults(rate=1.0, kind="raise"):
            with pytest.raises(SolverFailure) as info:
                solve_tasks(tasks(1))
        assert info.value.reason == "injected"

    def test_nan_kind_exercises_coefficient_guardrails(self):
        failures = {}
        with inject_solver_faults(rate=1.0, kind="nan"):
            solve_tasks(tasks(4), failures)
        assert set(failures) == set(range(4))
        for exc in failures.values():
            assert exc.reason == "invalid-coefficients"

    def test_timeout_kind(self):
        failures = {}
        with inject_solver_faults(rate=1.0, kind="timeout", delay=0.0):
            solve_tasks(tasks(3), failures)
        assert {exc.reason for exc in failures.values()} == {"timeout"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            with inject_solver_faults(kind="segfault"):
                pass  # pragma: no cover

    def test_partial_rate_leaves_healthy_rows_correct(self):
        ts = tasks(200, hi=1000.0)
        failures = {}
        with inject_solver_faults(rate=0.25, seed=3) as stats:
            results = solve_tasks(ts, failures)
        assert 0.10 < stats.observed_rate < 0.45
        assert 0 < len(failures) < len(ts)
        for i, (poly, rel, lo, hi) in enumerate(ts):
            if i in failures:
                assert results[i].is_empty
            else:
                # Healthy rows are untouched by their poisoned neighbours.
                assert results[i].contains((i + 1.0) + 0.5)
                assert not results[i].contains((i + 1.0) - 0.5)

    def test_same_seed_same_victims(self):
        first, second = {}, {}
        with inject_solver_faults(rate=0.3, seed=11):
            solve_tasks(tasks(50), first)
        from repro.core.solve_cache import reset_global_solve_cache

        reset_global_solve_cache()
        with inject_solver_faults(rate=0.3, seed=11):
            solve_tasks(tasks(50), second)
        assert set(first) == set(second)

    def test_hook_restored_on_exit(self):
        assert batch_solver.fault_hook() is None
        with inject_solver_faults(rate=1.0):
            assert batch_solver.fault_hook() is not None
            with inject_solver_faults(rate=0.0):
                pass
            # Nesting restores the outer hook, not None.
            assert batch_solver.fault_hook() is not None
        assert batch_solver.fault_hook() is None

    def test_hook_restored_when_body_raises(self):
        with pytest.raises(RuntimeError):
            with inject_solver_faults(rate=1.0):
                raise RuntimeError("boom")
        assert batch_solver.fault_hook() is None


class TestEigvalsFaultInjector:
    def test_total_failure_yields_typed_eigvals_failures(self):
        failures = {}
        with force_eigvals_failures(rate=1.0) as stats:
            results = real_roots_batch(quintics(4), failures)
        assert stats.injected > 0
        assert set(failures) == set(range(4))
        for exc in failures.values():
            assert isinstance(exc, SolverFailure)
            assert exc.reason == "eigvals"
        assert all(r == [] for r in results)

    def test_stacked_only_failure_falls_back_row_by_row(self):
        """One poisoned stacked call cannot sink its degree bucket."""
        items = quintics(6)
        failures = {}
        with force_eigvals_failures(rate=1.0, only_stacked=True) as stats:
            results = real_roots_batch(items, failures)
        assert stats.injected > 0  # the stacked call did fail
        assert failures == {}      # ...but every row was rescued
        for (poly, lo, hi), roots in zip(items, results):
            assert roots == real_roots(poly, lo, hi)

    def test_patch_restored_on_exit(self):
        original = batch_solver._stacked_companion_eigvals
        with force_eigvals_failures(rate=1.0):
            assert batch_solver._stacked_companion_eigvals is not original
        assert batch_solver._stacked_companion_eigvals is original


class TestTupleCorruption:
    def tuples(self, n):
        return [
            StreamTuple({"time": float(i), "x": 1.0 + i, "id": "a"})
            for i in range(n)
        ]

    def test_rate_zero_is_identity(self):
        src = self.tuples(20)
        out = list(corrupt_tuples(src, rate=0.0))
        assert out == src

    def test_observed_rate_and_damage(self):
        from repro.testing import InjectionStats

        stats = InjectionStats()
        out = list(
            corrupt_tuples(self.tuples(500), rate=0.2, seed=5, stats=stats)
        )
        assert len(out) == 500
        assert 0.1 < stats.observed_rate < 0.35
        damaged = [
            t
            for t in out
            if "x" not in t or not math.isfinite(t["x"]) or abs(t["x"]) > 1e6
        ]
        assert len(damaged) == stats.injected

    def test_time_field_never_corrupted_by_default(self):
        out = list(corrupt_tuples(self.tuples(200), rate=1.0, seed=1))
        for t in out:
            assert math.isfinite(t["time"])

    def test_explicit_fields_and_modes(self):
        out = list(
            corrupt_tuples(
                self.tuples(50), rate=1.0, modes=("nan",), fields=("x",)
            )
        )
        assert all(math.isnan(t["x"]) for t in out)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            list(corrupt_tuples(self.tuples(1), modes=("bitflip",)))

    def test_deterministic_by_seed(self):
        a = list(corrupt_tuples(self.tuples(100), rate=0.3, seed=9))
        b = list(corrupt_tuples(self.tuples(100), rate=0.3, seed=9))
        assert a == b
