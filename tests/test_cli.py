"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestExplain:
    def test_prints_plan(self, capsys):
        rc = main(["explain", "--query", "select * from s where x > 0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Filter" in out and "Scan" in out

    def test_prints_specs(self, capsys):
        rc = main(
            ["explain", "--query",
             "select * from s where x > 0 error within 1% sample period 0.5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "error bound: 0.01 (relative)" in out
        assert "sample period: 0.5" in out

    def test_syntax_error_reported(self, capsys):
        rc = main(["explain", "--query", "selec broken"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestRun:
    def test_both_modes(self, capsys):
        rc = main(
            ["run", "--query", "select * from objects where x > 0",
             "--workload", "moving", "--tuples", "300",
             "--tolerance", "0.001", "--mode", "both"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "discrete engine:" in out
        assert "continuous engine:" in out
        assert "compression" in out

    def test_discrete_only(self, capsys):
        rc = main(
            ["run", "--query", "select * from objects where x > 0",
             "--workload", "moving", "--tuples", "200",
             "--mode", "discrete"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "discrete engine:" in out
        assert "continuous engine:" not in out

    def test_nyse_workload(self, capsys):
        rc = main(
            ["run", "--query", "select * from trades where price > 0",
             "--workload", "nyse", "--tuples", "300",
             "--mode", "continuous"]
        )
        assert rc == 0
        assert "result segments" in capsys.readouterr().out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--query", "select * from s", "--workload", "bogus"])


class TestParams:
    def test_prints_table(self, capsys):
        rc = main(["params"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Page pool" in out
        assert "NYSE" in out
