"""Tests for Fourier-series fitting and piecewise conversion."""

import math

import numpy as np
import pytest

from repro.core.expr import Attr, Const
from repro.core.operators import ContinuousFilter
from repro.core.predicate import Comparison
from repro.core.relation import Rel
from repro.fitting.fourier import (
    FourierModel,
    conversion_error,
    estimate_period,
    fit_fourier,
    fourier_segments,
    fourier_to_piecewise,
)


def sinusoid(t, amp=2.0, period=10.0, phase=0.3, offset=5.0):
    return offset + amp * np.sin(2 * math.pi * t / period + phase)


@pytest.fixture
def sampled():
    t = np.linspace(0, 30, 400)
    return t, sinusoid(t)


class TestFitFourier:
    def test_recovers_pure_sinusoid(self, sampled):
        t, y = sampled
        model = fit_fourier(t, y, period=10.0, harmonics=2)
        assert np.max(np.abs(model(t) - y)) < 1e-8

    def test_offset_recovered(self, sampled):
        t, y = sampled
        model = fit_fourier(t, y, period=10.0)
        assert model.a0 == pytest.approx(5.0, abs=1e-6)

    def test_harmonic_content(self):
        t = np.linspace(0, 20, 600)
        y = np.sin(2 * math.pi * t / 10) + 0.5 * np.sin(4 * math.pi * t / 10)
        model = fit_fourier(t, y, period=10.0, harmonics=3)
        assert abs(model.sine[0]) == pytest.approx(1.0, abs=1e-6)
        assert abs(model.sine[1]) == pytest.approx(0.5, abs=1e-6)
        assert abs(model.sine[2]) < 1e-6

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            fit_fourier([0, 1], [0, 1], period=0.0)
        with pytest.raises(ValueError):
            fit_fourier([0, 1], [0, 1], period=1.0, harmonics=0)
        with pytest.raises(ValueError):
            fit_fourier([0, 1, 2], [0, 1, 2], period=1.0, harmonics=3)

    def test_derivative(self):
        model = FourierModel(0.0, (0.0,), (1.0,), omega=2.0)  # sin(2t)
        deriv = model.derivative()  # 2 cos(2t)
        for t in (0.0, 0.4, 1.1):
            assert deriv(t) == pytest.approx(2.0 * math.cos(2.0 * t))

    def test_noise_robustness(self):
        rng = np.random.default_rng(14)
        t = np.linspace(0, 40, 800)
        y = sinusoid(t) + rng.normal(0, 0.1, t.size)
        model = fit_fourier(t, y, period=10.0)
        clean = sinusoid(t)
        assert np.max(np.abs(model(t) - clean)) < 0.1


class TestEstimatePeriod:
    def test_finds_dominant_period(self, sampled):
        t, y = sampled
        assert estimate_period(t, y) == pytest.approx(10.0, rel=0.1)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            estimate_period([0, 1, 2], [0, 1, 2])


class TestPiecewiseConversion:
    def test_conversion_error_small(self, sampled):
        t, y = sampled
        model = fit_fourier(t, y, period=10.0)
        pieces = fourier_to_piecewise(model, 0.0, 30.0)
        # Cubic per eighth-period: error well under 1% of the amplitude.
        assert conversion_error(model, pieces) < 0.02

    def test_pieces_tile_range(self, sampled):
        t, y = sampled
        model = fit_fourier(t, y, period=10.0)
        pieces = fourier_to_piecewise(model, 0.0, 30.0)
        assert pieces[0][0] == pytest.approx(0.0)
        assert pieces[-1][1] == pytest.approx(30.0)
        for (_, hi, _), (lo, _, _) in zip(pieces[:-1], pieces[1:]):
            assert hi == pytest.approx(lo)

    def test_more_pieces_reduce_error(self, sampled):
        t, y = sampled
        model = fit_fourier(t, y, period=10.0)
        coarse = fourier_to_piecewise(model, 0.0, 30.0, pieces_per_period=4)
        fine = fourier_to_piecewise(model, 0.0, 30.0, pieces_per_period=16)
        assert conversion_error(model, fine) < conversion_error(model, coarse)

    def test_empty_range_rejected(self):
        model = FourierModel(0.0, (1.0,), (0.0,), omega=1.0)
        with pytest.raises(ValueError):
            fourier_to_piecewise(model, 5.0, 5.0)


class TestEndToEnd:
    def test_periodic_signal_through_filter(self, sampled):
        """Fit a periodic temperature signal, convert, run the filter
        query — the future-work path exercised end to end."""
        t, y = sampled
        model = fit_fourier(t, y, period=10.0)
        segments = fourier_segments(
            model, "temp", ("sensor1",), 0.0, 30.0
        )
        op = ContinuousFilter(Comparison(Attr("temp"), Rel.GT, Const(6.0)))
        covered = 0.0
        for seg in segments:
            for out in op.process(seg):
                covered += out.duration
        # temp = 5 + 2 sin(...) > 6 <=> sin > 0.5: one third of each
        # period, three periods in range.
        assert covered == pytest.approx(10.0, rel=0.02)
