"""Tests for regression, segmentation algorithms and segment building."""

import numpy as np
import pytest

from repro.core.polynomial import Polynomial
from repro.engine.tuples import StreamTuple
from repro.fitting import (
    OnlineSegmenter,
    StreamModelBuilder,
    bottom_up_segmentation,
    build_segments,
    compile_model_clause,
    fit_polynomial,
    interpolate_line,
    predictive_segment,
    sliding_window_segmentation,
    swab_segmentation,
)
from repro.query import parse_expression


class TestRegression:
    def test_exact_line_recovered(self):
        t = np.linspace(0, 10, 20)
        y = 3.0 + 2.0 * t
        fit = fit_polynomial(t, y, degree=1)
        assert fit.poly.approx_equal(Polynomial([3.0, 2.0]), tol=1e-8)
        assert fit.max_error < 1e-9

    def test_quadratic_fit(self):
        t = np.linspace(0, 5, 30)
        y = 1.0 - t + 0.5 * t**2
        fit = fit_polynomial(t, y, degree=2)
        assert fit.max_error < 1e-9

    def test_single_point(self):
        fit = fit_polynomial([2.0], [7.0])
        assert fit.poly(2.0) == 7.0
        assert fit.max_error == 0.0

    def test_degree_clamped(self):
        fit = fit_polynomial([0.0, 1.0], [1.0, 2.0], degree=5)
        assert fit.poly.degree <= 1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            fit_polynomial([], [])

    def test_large_timestamps_conditioning(self):
        t = 1.7e9 + np.linspace(0, 10, 50)
        y = 5.0 + 0.25 * (t - 1.7e9)
        fit = fit_polynomial(t, y, degree=1)
        assert fit.max_error < 1e-5

    def test_interpolate_line(self):
        line = interpolate_line(1.0, 2.0, 3.0, 6.0)
        assert line(1.0) == pytest.approx(2.0)
        assert line(3.0) == pytest.approx(6.0)


def _piecewise_signal(n_pieces=4, points_per_piece=25, slope_scale=2.0, seed=3):
    """A noiseless piecewise-linear test signal with known breakpoints."""
    rng = np.random.default_rng(seed)
    t_all, y_all = [], []
    t = 0.0
    y = 0.0
    for _ in range(n_pieces):
        slope = rng.uniform(-slope_scale, slope_scale)
        ts = t + np.arange(points_per_piece) * 0.1
        ys = y + slope * (ts - t)
        t_all.extend(ts)
        y_all.extend(ys)
        t = ts[-1] + 0.1
        y = ys[-1] + slope * 0.1
    return np.array(t_all), np.array(y_all)


class TestSegmentationAlgorithms:
    @pytest.mark.parametrize(
        "algo",
        [sliding_window_segmentation, bottom_up_segmentation, swab_segmentation],
    )
    def test_error_bound_respected(self, algo):
        t, y = _piecewise_signal()
        pieces = algo(t, y, tolerance=0.05)
        for piece in pieces:
            assert piece.max_error <= 0.05 + 1e-9

    @pytest.mark.parametrize(
        "algo",
        [sliding_window_segmentation, bottom_up_segmentation, swab_segmentation],
    )
    def test_pieces_tile_the_time_axis(self, algo):
        t, y = _piecewise_signal()
        pieces = algo(t, y, tolerance=0.05)
        assert pieces[0].t_start == t[0]
        for a, b in zip(pieces[:-1], pieces[1:]):
            assert a.t_end == pytest.approx(b.t_start)

    @pytest.mark.parametrize(
        "algo",
        [sliding_window_segmentation, bottom_up_segmentation, swab_segmentation],
    )
    def test_piece_count_near_ground_truth(self, algo):
        t, y = _piecewise_signal(n_pieces=4)
        pieces = algo(t, y, tolerance=0.05)
        assert 3 <= len(pieces) <= 8

    def test_empty_input(self):
        assert sliding_window_segmentation([], [], 1.0) == []
        assert bottom_up_segmentation([], [], 1.0) == []
        assert swab_segmentation([], [], 1.0) == []

    def test_bottom_up_merges_constant_signal_to_one(self):
        t = np.linspace(0, 10, 40)
        y = np.full_like(t, 5.0)
        assert len(bottom_up_segmentation(t, y, tolerance=0.01)) == 1

    def test_noise_increases_piece_count(self):
        rng = np.random.default_rng(5)
        t = np.linspace(0, 10, 200)
        smooth = 2.0 * t
        noisy = smooth + rng.normal(0, 0.5, size=t.size)
        clean_count = len(sliding_window_segmentation(t, smooth, 0.1))
        noisy_count = len(sliding_window_segmentation(t, noisy, 0.1))
        assert noisy_count > clean_count


class TestOnlineSegmenter:
    def test_exact_line_never_cuts(self):
        seg = OnlineSegmenter(tolerance=0.01)
        for i in range(100):
            assert seg.add(i * 0.1, 1.0 + 0.2 * i * 0.1) is None
        final = seg.finish()
        assert final is not None
        assert final.poly.approx_equal(Polynomial([1.0, 0.2]), tol=1e-6)

    def test_slope_change_cuts(self):
        seg = OnlineSegmenter(tolerance=0.01)
        cuts = []
        for i in range(50):
            t = i * 0.1
            y = t if t < 2.5 else 2.5 - 5 * (t - 2.5)
            piece = seg.add(t, y)
            if piece is not None:
                cuts.append(piece)
        assert len(cuts) == 1
        assert cuts[0].t_end == pytest.approx(2.6, abs=0.2)

    def test_points_consumed_counter(self):
        seg = OnlineSegmenter(tolerance=1.0)
        for i in range(10):
            seg.add(float(i), 0.0)
        assert seg.points_consumed == 10

    def test_rejects_higher_degree(self):
        with pytest.raises(ValueError):
            OnlineSegmenter(tolerance=0.1, degree=2)

    def test_finish_on_empty(self):
        assert OnlineSegmenter(tolerance=0.1).finish() is None


class TestModelBuilder:
    def _tuples(self, n=60):
        # Two keys with different exact lines.
        out = []
        for i in range(n):
            t = i * 0.1
            out.append(StreamTuple({"time": t, "id": "a", "x": 1.0 + 2.0 * t}))
            out.append(StreamTuple({"time": t, "id": "b", "x": 5.0 - 1.0 * t}))
        return out

    def test_build_segments_per_key(self):
        segs = build_segments(
            self._tuples(), attrs=("x",), tolerance=0.01,
            key_fields=("id",), constants=("id",),
        )
        keys = {s.key for s in segs}
        assert keys == {("a",), ("b",)}
        for s in segs:
            expected = (
                Polynomial([1.0, 2.0]) if s.key == ("a",) else Polynomial([5.0, -1.0])
            )
            assert s.model("x").approx_equal(expected, tol=1e-6)
            assert s.constants["id"] == s.key[0]

    def test_builder_counts(self):
        builder = StreamModelBuilder(("x",), tolerance=0.01, key_fields=("id",))
        for tup in self._tuples(10):
            builder.add(tup)
        builder.finish()
        assert builder.tuples_consumed == 20
        assert builder.segments_emitted >= 2

    def test_multi_attribute_shared_cut(self):
        # x cuts at t=2.5, y is a perfect line: both must cut together.
        tuples = []
        for i in range(50):
            t = i * 0.1
            x = t if t < 2.5 else 2.5 - 5 * (t - 2.5)
            tuples.append(
                StreamTuple({"time": t, "id": "a", "x": x, "y": 3.0 + t})
            )
        segs = build_segments(
            tuples, attrs=("x", "y"), tolerance=0.01, key_fields=("id",)
        )
        assert len(segs) == 2
        for s in segs:
            assert set(s.models) == {"x", "y"}


class TestModelClause:
    def test_compile_linear_model(self):
        # MODEL A.x = A.x + A.v * t with x=4, v=2 at origin 10.
        expr = parse_expression("A.x + A.v * t")
        poly = compile_model_clause(expr, {"x": 4.0, "v": 2.0}, t_origin=10.0)
        assert poly(10.0) == pytest.approx(4.0)
        assert poly(11.0) == pytest.approx(6.0)

    def test_compile_quadratic_model(self):
        expr = parse_expression("B.v * t + B.a * t^2")
        poly = compile_model_clause(expr, {"v": 1.0, "a": 0.5}, t_origin=0.0)
        assert poly(2.0) == pytest.approx(2.0 + 2.0)

    def test_missing_coefficient_raises(self):
        expr = parse_expression("A.x + A.v * t")
        with pytest.raises(KeyError):
            compile_model_clause(expr, {"x": 4.0}, t_origin=0.0)

    def test_predictive_segment(self):
        expr = parse_expression("x + vx * t")
        tup = StreamTuple({"time": 5.0, "id": "a", "x": 10.0, "vx": 3.0})
        seg = predictive_segment(
            tup, {"x": expr}, horizon=2.0, key_fields=("id",), constants=("id",)
        )
        assert (seg.t_start, seg.t_end) == (5.0, 7.0)
        assert seg.value_at("x", 6.0) == pytest.approx(13.0)
        assert seg.key == ("a",)
