"""Tests for the benchmark harness utilities (series, tables, runners)."""

import pytest

from repro.bench import (
    Series,
    best_of,
    crossover,
    fast_validate_loop,
    format_params_table,
    format_table,
    growth_ratio,
    is_monotone_increasing,
    is_roughly_flat,
    model_table,
    time_historical_path,
    time_modeling_only,
    time_pulse_online_path,
    time_tuple_path,
)
from repro.bench.queries import collision_planned, following_planned, macd_planned
from repro.core.polynomial import Polynomial
from repro.core.segment import Segment
from repro.engine.tuples import StreamTuple
from repro.query import parse_query, plan_query
from repro.workloads import NyseConfig, NyseTradeGenerator


class TestSeries:
    def test_add_and_lookup(self):
        s = Series("t/s")
        s.add(1.0, 10.0)
        s.add(2.0, 20.0)
        assert s.y_at(2.0) == 20.0
        assert s.max_y == 20.0

    def test_crossover_interpolates(self):
        xs = [0.0, 1.0, 2.0]
        a = [0.0, 1.0, 4.0]   # overtakes b between x=1 and x=2
        b = [2.0, 2.0, 2.0]
        c = crossover(xs, a, b)
        assert 1.0 < c < 2.0
        # Linear interpolation: a-b goes -1 -> +2, crossing at 1/3.
        assert c == pytest.approx(1.0 + 1.0 / 3.0)

    def test_crossover_at_first_point(self):
        assert crossover([5.0, 6.0], [3.0, 3.0], [1.0, 1.0]) == 5.0

    def test_crossover_never(self):
        assert crossover([1.0, 2.0], [0.0, 0.0], [1.0, 1.0]) is None

    def test_monotone_and_flat_predicates(self):
        assert is_monotone_increasing([1, 2, 3, 4])
        assert is_monotone_increasing([1, 2, 1.9, 4])  # small dip tolerated
        assert not is_monotone_increasing([4, 3, 2, 1])
        assert is_roughly_flat([1.0, 1.5, 2.0], factor=3.0)
        assert not is_roughly_flat([1.0, 10.0], factor=3.0)

    def test_growth_ratio(self):
        assert growth_ratio([2.0, 8.0]) == 4.0
        assert growth_ratio([0.0, 1.0]) == float("inf")

    def test_format_table_alignment(self):
        s = Series("alpha")
        s.add(1, 10.0)
        s.add(2, 20.0)
        text = format_table("x", [1, 2], [s], y_format="{:.1f}")
        lines = text.splitlines()
        assert "alpha" in lines[0]
        assert "10.0" in text and "20.0" in text

    def test_params_table_renders(self):
        text = format_params_table()
        assert "Page pool" in text


class TestValidationLoop:
    def _segments(self):
        return [
            Segment(("a",), 0.0, 5.0, {"x": Polynomial([1.0, 1.0])},
                    constants={"id": "a"}),
            Segment(("a",), 5.0, 10.0, {"x": Polynomial([11.0])},
                    constants={"id": "a"}),
        ]

    def test_model_table_structure(self):
        table = model_table(self._segments(), "x")
        assert set(table) == {"a"}
        assert len(table["a"]) == 2
        assert table["a"][0][0] == 0.0

    def test_fast_validate_counts_violations(self):
        table = model_table(self._segments(), "x")
        tuples = [
            StreamTuple({"time": 1.0, "id": "a", "x": 2.0}),   # exact
            StreamTuple({"time": 2.0, "id": "a", "x": 3.4}),   # within 0.5
            StreamTuple({"time": 6.0, "id": "a", "x": 20.0}),  # violation
        ]
        assert fast_validate_loop(tuples, table, "x", 0.5) == 1

    def test_unknown_key_skipped(self):
        table = model_table(self._segments(), "x")
        tuples = [StreamTuple({"time": 1.0, "id": "zz", "x": 0.0})]
        assert fast_validate_loop(tuples, table, "x", 0.5) == 0

    def test_cursor_advances_between_pieces(self):
        table = model_table(self._segments(), "x")
        tuples = [
            StreamTuple({"time": t, "id": "a", "x": (1.0 + t if t < 5 else 11.0)})
            for t in [0.5, 2.5, 4.5, 5.5, 8.5]
        ]
        assert fast_validate_loop(tuples, table, "x", 0.01) == 0

    def test_best_of_returns_minimum(self):
        values = iter([3.0, 1.0, 2.0])
        assert best_of(lambda: next(values), repeats=3) == 1.0


class TestPathRunners:
    @pytest.fixture(scope="class")
    def nyse(self):
        gen = NyseTradeGenerator(NyseConfig(num_symbols=2, rate=100.0, seed=31))
        return list(gen.tuples(800))

    def test_time_tuple_path(self, nyse):
        planned = plan_query(parse_query("select * from trades where price > 0"))
        run = time_tuple_path(planned, nyse, "trades")
        assert run.tuples == len(nyse)
        assert run.outputs == len(nyse)  # prices always positive
        assert run.throughput > 0
        assert run.service_time > 0

    def test_time_modeling_only(self, nyse):
        run = time_modeling_only(
            nyse, attrs=("price",), tolerance=0.05, key_fields=("symbol",)
        )
        assert run.tuples == len(nyse)
        assert 0 < run.outputs < len(nyse)  # segments, compressed

    def test_time_historical_path(self, nyse):
        from repro.fitting import build_segments

        planned = macd_planned(short=2.0, long=4.0, slide=1.0)
        segments = build_segments(
            nyse, attrs=("price",), tolerance=0.05,
            key_fields=("symbol",), constants=("symbol",),
        )
        run = time_historical_path(planned, segments, "trades", len(nyse))
        assert run.tuples == len(nyse)

    def test_time_pulse_online_path_counts_violations(self, nyse):
        planned = plan_query(parse_query("select * from trades where price > 0"))
        run = time_pulse_online_path(
            planned, nyse, "trades",
            attrs=("price",), tolerance=0.01,
            key_fields=("symbol",), constants=("symbol",),
            bound=1e-9,  # absurdly tight: essentially every check violates
        )
        # Checks only run once a model is active (after the first piece
        # closes per key); from then on virtually everything violates.
        assert run.violations > len(nyse) // 4


class TestQueryBuilders:
    def test_macd_windows_rescaled(self):
        planned = macd_planned(short=3.0, long=9.0, slide=1.5)
        from repro.query import LogicalAggregate

        aggs = [
            n for n in planned.root.walk() if isinstance(n, LogicalAggregate)
        ]
        assert sorted(a.window for a in aggs) == [3.0, 9.0]
        assert all(a.slide == 1.5 for a in aggs)

    def test_following_windows_rescaled(self):
        planned = following_planned(join_window=4.0, avg_window=100.0, slide=20.0)
        from repro.query import LogicalAggregate, LogicalJoin

        agg = next(
            n for n in planned.root.walk() if isinstance(n, LogicalAggregate)
        )
        join = next(
            n for n in planned.root.walk() if isinstance(n, LogicalJoin)
        )
        assert agg.window == 100.0 and agg.slide == 20.0
        assert join.window == 4.0

    def test_collision_radius(self):
        planned = collision_planned(radius=10.0)
        from repro.query import LogicalFilter

        filt = next(
            n for n in planned.root.walk() if isinstance(n, LogicalFilter)
        )
        # The radius appears squared in the predicate.
        assert "100" in repr(filt.predicate)
