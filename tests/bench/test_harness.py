"""The result-recording harness: provenance stamping must never fail.

``git_revision`` degrades ("unknown" / "-dirty") instead of raising so
a benchmark can always record its artifact — from an exported tarball,
a broken git environment, or a dirty working tree — and a recorded
number is never wrongly attributed to a clean revision.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))
import harness  # noqa: E402
from harness import git_revision, record_result  # noqa: E402


def _git(cwd, *args):
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
        cwd=cwd, check=True, capture_output=True,
    )


@pytest.fixture
def git_repo(tmp_path):
    _git(tmp_path, "init", "-q")
    (tmp_path / "f.txt").write_text("one\n")
    _git(tmp_path, "add", "f.txt")
    _git(tmp_path, "commit", "-q", "-m", "init")
    return tmp_path


class TestGitRevision:
    def test_clean_checkout_reports_bare_rev(self, git_repo):
        rev = git_revision(git_repo)
        assert len(rev) == 40 and not rev.endswith("-dirty")
        int(rev, 16)  # a hex SHA, not a message

    def test_dirty_tree_gets_suffix(self, git_repo):
        (git_repo / "f.txt").write_text("two\n")
        assert git_revision(git_repo).endswith("-dirty")

    def test_untracked_file_counts_as_dirty(self, git_repo):
        (git_repo / "new.txt").write_text("x\n")
        assert git_revision(git_repo).endswith("-dirty")

    def test_outside_a_checkout_is_unknown(self, tmp_path):
        assert git_revision(tmp_path) == "unknown"

    def test_repo_without_commits_is_unknown(self, tmp_path):
        _git(tmp_path, "init", "-q")
        assert git_revision(tmp_path) == "unknown"

    def test_unprovable_cleanliness_reports_dirty(
        self, git_repo, monkeypatch
    ):
        # rev-parse succeeds but `git status` blows up: the revision is
        # known, its cleanliness is not — never claim a clean rev.
        real_run = subprocess.run

        def failing_status(cmd, **kwargs):
            if "status" in cmd:
                raise OSError("no git for you")
            return real_run(cmd, **kwargs)

        monkeypatch.setattr(harness.subprocess, "run", failing_status)
        assert git_revision(git_repo).endswith("-dirty")

    def test_git_binary_missing_is_unknown(self, git_repo, monkeypatch):
        def no_git(cmd, **kwargs):
            raise FileNotFoundError("git")

        monkeypatch.setattr(harness.subprocess, "run", no_git)
        assert git_revision(git_repo) == "unknown"


class TestRecordResult:
    def test_writes_artifact_with_provenance(self, tmp_path):
        path = record_result(
            "unit_test", {"wall_time_s": 1.5, "custom": 3},
            results_dir=tmp_path,
        )
        doc = json.loads(path.read_text())
        assert path.name == "BENCH_unit_test.json"
        assert doc["name"] == "unit_test"
        assert doc["git_rev"]  # never empty, even if "unknown"
        assert doc["wall_time_s"] == 1.5  # promoted to top level
        assert doc["metrics"]["custom"] == 3
        assert "metrics_snapshot" in doc

    def test_promotes_short_aliases(self, tmp_path):
        doc = json.loads(
            record_result(
                "alias", {"wall_time": 2.0, "throughput": 10.0},
                results_dir=tmp_path,
            ).read_text()
        )
        assert doc["wall_time_s"] == 2.0
        assert doc["throughput_items_per_s"] == 10.0

    def test_snapshot_carries_histograms(self, tmp_path):
        from repro.engine.metrics import get_histogram

        get_histogram("harness_test.latency").observe(0.25)
        doc = json.loads(
            record_result("snap", {}, results_dir=tmp_path).read_text()
        )
        hists = doc["metrics_snapshot"]["histograms"]
        assert hists["harness_test.latency"]["count"] >= 1

    @pytest.mark.parametrize("bad", ["", "no/slash", "no space", "a.b"])
    def test_rejects_unsafe_names(self, bad, tmp_path):
        with pytest.raises(ValueError):
            record_result(bad, {}, results_dir=tmp_path)
