"""Integration: Section IV-A's output-semantics observations, quantified.

Pulse vs tuple processing on the same workload, measured with
:mod:`repro.bench.accuracy`: near-perfect agreement with exact models,
bounded asymmetries (false positives from superset semantics, false
negatives from precision drops) when the models approximate.
"""

import pytest

from repro.bench.accuracy import AgreementReport, compare_outputs
from repro.core.transform import to_continuous_plan
from repro.engine.lowering import to_discrete_plan
from repro.fitting import build_segments
from repro.query import parse_query, plan_query
from repro.workloads import MovingObjectConfig, MovingObjectGenerator

SQL = "select * from objects where x > 0"


def run_both(noise: float, tolerance: float, n=2000, seed=33):
    gen = MovingObjectGenerator(
        MovingObjectConfig(
            num_objects=3, rate=300.0, tuples_per_segment=100,
            noise=noise, seed=seed,
        )
    )
    tuples = list(gen.tuples(n))
    planned = plan_query(parse_query(SQL))

    discrete = to_discrete_plan(planned)
    rows = []
    for tup in tuples:
        rows.extend(discrete.push("objects", tup))

    segments = build_segments(
        tuples, attrs=("x",), tolerance=tolerance,
        key_fields=("id",), constants=("id",),
    )
    continuous = to_continuous_plan(planned)
    segs = []
    for s in segments:
        segs.extend(continuous.push("objects", s))
    return rows, segs


def report_for(rows, segs) -> AgreementReport:
    return compare_outputs(
        rows,
        segs,
        row_key=lambda r: (r["id"],),
        segment_key=lambda s: (s.constants["id"],),
        time_slack=1e-6,
    )


class TestExactModels:
    def test_near_perfect_agreement(self):
        rows, segs = run_both(noise=0.0, tolerance=1e-6)
        report = report_for(rows, segs)
        assert report.discrete_rows > 0
        assert report.false_negative_rate < 0.01
        assert report.false_positive_rate < 0.05
        assert report.agreement > 0.97


class TestApproximateModels:
    def test_disagreement_grows_with_model_error(self):
        rows_a, segs_a = run_both(noise=0.5, tolerance=2.0)
        rows_b, segs_b = run_both(noise=0.5, tolerance=20.0)
        tight = report_for(rows_a, segs_a)
        loose = report_for(rows_b, segs_b)
        # Looser models (bigger fitting tolerance) disagree more.
        assert loose.agreement <= tight.agreement + 0.02
        assert tight.agreement > 0.9

    def test_false_negative_from_precision_drop(self):
        """Observation 2: a tuple just over the threshold whose model sits
        just under it (within the precision bound) yields a discrete row
        with no continuous counterpart."""
        from repro.core.polynomial import Polynomial
        from repro.core.segment import Segment
        from repro.engine.tuples import StreamTuple

        rows = [StreamTuple({"time": 5.0, "id": "a", "x": 0.3})]  # passes
        # The fitted model says x = -0.3 everywhere: no continuous output.
        segs = []  # filter over the model emits nothing
        report = report_for(rows, segs)
        assert report.false_negatives == 1
        assert report.false_positive_rate == 0.0

    def test_false_positive_from_unwitnessed_crossing(self):
        """Observation 1: the model crosses the threshold between two
        samples; Pulse emits the crossing window although no discrete
        tuple falls inside it (superset semantics)."""
        from repro.core.polynomial import Polynomial
        from repro.core.segment import Segment
        from repro.engine.tuples import StreamTuple

        # Discrete samples at t=0 and t=1 are both negative: no rows.
        rows: list[StreamTuple] = []
        # The model x = -1 + 2.2(t - 0.25) pokes above 0 on (0.7, 1.0)...
        segs = [
            Segment(
                ("a",), 0.7, 0.95, {"x": Polynomial([-2.54, 2.2])},
                constants={"id": "a"},
            )
        ]
        report = compare_outputs(
            rows, segs,
            row_key=lambda r: (r["id"],),
            segment_key=lambda s: (s.constants["id"],),
            probe_period=0.1,
        )
        assert report.false_positives > 0
        assert report.false_negative_rate == 0.0


class TestReportArithmetic:
    def test_empty_runs(self):
        report = compare_outputs(
            [], [], row_key=lambda r: (), segment_key=lambda s: ()
        )
        assert report.agreement == 1.0
        assert report.false_negative_rate == 0.0
        assert report.false_positive_rate == 0.0

    def test_rates(self):
        report = AgreementReport(
            discrete_rows=10, matched_rows=8,
            probe_instants=20, confirmed_instants=15,
        )
        assert report.false_negatives == 2
        assert report.false_negative_rate == pytest.approx(0.2)
        assert report.false_positives == 5
        assert report.false_positive_rate == pytest.approx(0.25)
        assert report.agreement == pytest.approx(23 / 30)
