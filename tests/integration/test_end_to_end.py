"""End-to-end integration: the same queries on both processing paths.

These tests run full parsed queries through (a) the discrete baseline
engine on raw tuples and (b) the continuous engine on segments fitted
from the same tuples, then check that the two paths approximately agree
— "approximately" because the paper's Section IV-A explicitly allows
false positives/negatives at result boundaries.
"""

import math

import pytest

from repro.core.operators import OutputSampler
from repro.core.transform import to_continuous_plan
from repro.engine.lowering import to_discrete_plan
from repro.fitting import build_segments
from repro.query import parse_query, plan_query
from repro.workloads import (
    MovingObjectConfig,
    MovingObjectGenerator,
    NyseConfig,
    NyseTradeGenerator,
)


def run_discrete(planned, stream, tuples):
    query = to_discrete_plan(planned)
    outputs = []
    for tup in tuples:
        outputs.extend(query.push(stream, tup))
    outputs.extend(query.flush())
    return outputs


def run_continuous(planned, stream, segments):
    query = to_continuous_plan(planned)
    outputs = []
    for seg in segments:
        outputs.extend(query.push(stream, seg))
    return outputs


class TestFilterQuery:
    SQL = "select * from objects where x > 0"

    def test_paths_agree_on_sampled_times(self):
        gen = MovingObjectGenerator(
            MovingObjectConfig(num_objects=3, rate=300.0, tuples_per_segment=50)
        )
        tuples = list(gen.tuples(1500))
        planned = plan_query(parse_query(self.SQL))

        discrete_out = run_discrete(planned, "objects", tuples)
        discrete_pass = {
            (t["id"], round(t.time, 6)) for t in discrete_out
        }

        segments = build_segments(
            tuples, attrs=("x", "y"), tolerance=1e-6,
            key_fields=("id",), constants=("id",),
        )
        continuous_out = run_continuous(planned, "objects", segments)

        # Check every tuple's pass/fail against the continuous solution.
        agree = 0
        total = 0
        for tup in tuples:
            t = tup.time
            key = (tup["id"], round(t, 6))
            in_continuous = any(
                seg.constants.get("id") == tup["id"] and seg.contains_time(t)
                for seg in continuous_out
            )
            total += 1
            if in_continuous == (key in discrete_pass):
                agree += 1
        assert total > 0
        # Boundary tuples may flip (paper's false positives/negatives);
        # the bulk must agree.
        assert agree / total > 0.98

    def test_continuous_output_values_match_models(self):
        gen = MovingObjectGenerator(
            MovingObjectConfig(num_objects=2, rate=200.0, tuples_per_segment=40)
        )
        tuples = list(gen.tuples(400))
        planned = plan_query(parse_query(self.SQL))
        segments = build_segments(
            tuples, attrs=("x", "y"), tolerance=1e-6,
            key_fields=("id",), constants=("id",),
        )
        outputs = run_continuous(planned, "objects", segments)
        for seg in outputs:
            mid = 0.5 * (seg.t_start + seg.t_end)
            assert seg.value_at("x", mid) > -1e-6


class TestProximityJoinQuery:
    SQL = """
    select from objects R join objects S on (R.id <> S.id)
    where pow(R.x - S.x, 2) + pow(R.y - S.y, 2) < 10000
    """

    def test_join_detects_proximity_on_both_paths(self):
        gen = MovingObjectGenerator(
            MovingObjectConfig(
                num_objects=4, rate=400.0, tuples_per_segment=50, speed=30.0
            )
        )
        tuples = list(gen.tuples(2000))
        planned = plan_query(parse_query(self.SQL))

        discrete_out = run_discrete(planned, "objects", tuples)
        segments = build_segments(
            tuples, attrs=("x", "y"), tolerance=1e-6,
            key_fields=("id",), constants=("id",),
        )
        continuous_out = run_continuous(planned, "objects", segments)

        discrete_pairs = {
            frozenset((t["r.id"], t["s.id"])) for t in discrete_out
        }
        continuous_pairs = {
            frozenset(
                (seg.constants["r.id"], seg.constants["s.id"])
            )
            for seg in continuous_out
        }
        # Both paths must find the same close-encounter pairs.
        assert discrete_pairs == continuous_pairs

    def test_continuous_ranges_cover_discrete_hits(self):
        gen = MovingObjectGenerator(
            MovingObjectConfig(
                num_objects=4, rate=400.0, tuples_per_segment=50, speed=30.0
            )
        )
        tuples = list(gen.tuples(2000))
        planned = plan_query(parse_query(self.SQL))
        discrete_out = run_discrete(planned, "objects", tuples)
        segments = build_segments(
            tuples, attrs=("x", "y"), tolerance=1e-6,
            key_fields=("id",), constants=("id",),
        )
        continuous_out = run_continuous(planned, "objects", segments)
        covered = 0
        for hit in discrete_out:
            pair = frozenset((hit["r.id"], hit["s.id"]))
            t = hit.time
            for seg in continuous_out:
                seg_pair = frozenset(
                    (seg.constants["r.id"], seg.constants["s.id"])
                )
                if seg_pair == pair and seg.t_start - 0.02 <= t <= seg.t_end + 0.02:
                    covered += 1
                    break
        if discrete_out:
            assert covered / len(discrete_out) > 0.95


class TestMacdQuery:
    SQL = """
    select symbol, S.ap - L.ap as diff from
        (select symbol, avg(price) as ap from
            trades [size 5 advance 1]) as S
    join
        (select symbol, avg(price) as ap from
            trades [size 15 advance 1]) as L
    on (S.symbol = L.symbol)
    where S.ap > L.ap
    """

    @pytest.fixture(scope="class")
    def runs(self):
        gen = NyseTradeGenerator(
            NyseConfig(num_symbols=2, rate=100.0, volatility=5e-5,
                       drift_period=30.0, seed=21)
        )
        tuples = list(gen.tuples(5000))  # 50 seconds
        planned = plan_query(parse_query(self.SQL))
        discrete_out = run_discrete(planned, "trades", tuples)
        segments = build_segments(
            tuples, attrs=("price",), tolerance=0.02,
            key_fields=("symbol",), constants=("symbol",),
        )
        continuous_out = run_continuous(planned, "trades", segments)
        return tuples, discrete_out, continuous_out

    def test_both_paths_produce_results(self, runs):
        _, discrete_out, continuous_out = runs
        assert discrete_out
        assert continuous_out

    def test_diff_values_close_at_shared_closes(self, runs):
        """Discrete MACD signals away from the crossing boundary are
        reproduced by the continuous path with matching diff values.

        Warmup closes (the long window not yet filled: the discrete
        engine emits over partial windows while the continuous window
        function requires full coverage) and near-zero diffs (the
        paper's boundary false negatives) are excluded.
        """
        _, discrete_out, continuous_out = runs
        checked = 0
        eligible = 0
        for row in discrete_out:
            c = row.time
            if c < 20.0 or row["diff"] < 0.05:
                continue
            eligible += 1
            sym = row["symbol"]
            for seg in continuous_out:
                if (
                    seg.constants.get("symbol") == sym
                    and seg.t_start <= c < seg.t_end
                ):
                    cont_diff = seg.value_at("diff", c)
                    assert cont_diff == pytest.approx(row["diff"], abs=0.15)
                    checked += 1
                    break
        assert eligible > 0
        assert checked >= 0.8 * eligible

    def test_positive_diff_invariant(self, runs):
        """The WHERE clause guarantees diff > 0 on both paths."""
        _, discrete_out, continuous_out = runs
        assert all(row["diff"] > 0 for row in discrete_out)
        sampler = OutputSampler(period=0.5)
        for seg in continuous_out:
            for row in sampler.tuples(seg):
                assert row["diff"] > -1e-6
