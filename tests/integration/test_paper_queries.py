"""Integration: the paper's dataset queries end-to-end on both paths."""

import math

import pytest

from repro.bench.queries import collision_planned, following_planned
from repro.core.transform import to_continuous_plan
from repro.engine.lowering import to_discrete_plan
from repro.fitting import build_segments
from repro.workloads import AisConfig, AisVesselGenerator


@pytest.fixture(scope="module")
def ais_workload():
    gen = AisVesselGenerator(
        AisConfig(num_vessels=6, follower_pairs=2, rate=40.0,
                  follow_distance=400.0, course_period=30.0, seed=17)
    )
    tuples = list(gen.tuples(4000))  # 100 seconds
    return gen, tuples


class TestFollowingQuery:
    @pytest.fixture(scope="class")
    def runs(self, ais_workload):
        gen, tuples = ais_workload
        planned = following_planned(join_window=2.0, avg_window=20.0, slide=5.0)

        discrete = to_discrete_plan(planned)
        rows = []
        for tup in tuples:
            rows.extend(discrete.push("vessels", tup))
        rows.extend(discrete.flush())

        segments = build_segments(
            tuples, attrs=("x", "y"), tolerance=1.0,
            key_fields=("id",), constants=("id",),
        )
        continuous = to_continuous_plan(planned)
        segs_out = []
        for seg in segments:
            segs_out.extend(continuous.push("vessels", seg))
        return gen, rows, segs_out

    def test_discrete_finds_injected_pairs(self, runs):
        gen, rows, _ = runs
        found = {tuple(sorted((r["id1"], r["id2"]))) for r in rows}
        for pair in gen.follower_pairs:
            assert tuple(sorted(pair)) in found

    def test_continuous_finds_injected_pairs(self, runs):
        gen, _, segs_out = runs
        found = {
            tuple(sorted((s.constants["id1"], s.constants["id2"])))
            for s in segs_out
        }
        for pair in gen.follower_pairs:
            assert tuple(sorted(pair)) in found

    def test_no_false_pairs_beyond_symmetry(self, runs):
        gen, rows, segs_out = runs
        injected = {tuple(sorted(p)) for p in gen.follower_pairs}
        disc_found = {tuple(sorted((r["id1"], r["id2"]))) for r in rows}
        cont_found = {
            tuple(sorted((s.constants["id1"], s.constants["id2"])))
            for s in segs_out
        }
        assert disc_found == injected
        assert cont_found == injected

    def test_continuous_avg_dist_below_threshold(self, runs):
        _, _, segs_out = runs
        for seg in segs_out:
            mid = 0.5 * (seg.t_start + seg.t_end)
            assert seg.value_at("avg_dist", mid) < 1000.0 + 1e-6

    def test_sqrt_projection_was_approximated(self, ais_workload):
        """The distance projection leaves the polynomial class; the
        continuous map must have re-approximated it per segment."""
        from repro.core.operators.map_op import ContinuousMap

        gen, tuples = ais_workload
        planned = following_planned(join_window=2.0, avg_window=20.0, slide=5.0)
        continuous = to_continuous_plan(planned)
        segments = build_segments(
            tuples[:1500], attrs=("x", "y"), tolerance=1.0,
            key_fields=("id",), constants=("id",),
        )
        for seg in segments:
            continuous.push("vessels", seg)
        maps = [
            op for op in continuous.plan.operators()
            if isinstance(op, ContinuousMap)
        ]
        assert any(m.approximations > 0 for m in maps)


class TestCollisionQueryPredictive:
    def test_collision_predicted_before_it_happens(self):
        """Predictive processing: trajectories known at t=0, collision
        window reported immediately even though it lies in the future."""
        from repro.core import Polynomial, Segment

        planned = collision_planned(radius=50.0)
        query = to_continuous_plan(planned)
        head_on = [
            Segment(("a",), 0.0, 100.0,
                    {"x": Polynomial([0.0, 10.0]), "y": Polynomial([0.0])},
                    constants={"id": "a"}),
            Segment(("b",), 0.0, 100.0,
                    {"x": Polynomial([1000.0, -10.0]), "y": Polynomial([0.0])},
                    constants={"id": "b"}),
        ]
        outputs = []
        for seg in head_on:
            outputs.extend(query.push("objects", seg))
        assert outputs
        # Closing speed 20 m/s from 1000 m: |gap| < 50 within
        # t in (47.5, 52.5).
        hit = outputs[0]
        assert hit.t_start == pytest.approx(47.5, abs=0.01)
        assert hit.t_end == pytest.approx(52.5, abs=0.01)

    def test_parallel_courses_never_alert(self):
        from repro.core import Polynomial, Segment

        planned = collision_planned(radius=50.0)
        query = to_continuous_plan(planned)
        parallel = [
            Segment(("a",), 0.0, 100.0,
                    {"x": Polynomial([0.0, 10.0]), "y": Polynomial([0.0])},
                    constants={"id": "a"}),
            Segment(("b",), 0.0, 100.0,
                    {"x": Polynomial([0.0, 10.0]), "y": Polynomial([500.0])},
                    constants={"id": "b"}),
        ]
        outputs = []
        for seg in parallel:
            outputs.extend(query.push("objects", seg))
        assert outputs == []
