"""Smoke tests: every example script runs to completion.

The examples double as executable documentation; these tests keep them
from rotting.  Each is executed in-process (``runpy``) with stdout
captured, and its headline output is sanity-checked.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "continuous path" in out
        assert "discrete path" in out
        assert "the two paths agree" in out

    def test_collision_detection(self, capsys):
        out = run_example("collision_detection.py", capsys)
        assert "alpha <-> bravo" in out
        assert "charlie" not in out.split("predicted close encounters")[1]

    def test_macd_trading(self, capsys):
        out = run_example("macd_trading.py", capsys)
        assert "discrete engine:" in out
        assert "pulse historical mode:" in out
        assert "validated execution:" in out

    @pytest.mark.slow  # ~20s: full AIS trace through both engines
    def test_vessel_following(self, capsys):
        out = run_example("vessel_following.py", capsys)
        assert "discrete: 2/2" in out
        assert "pulse: 2/2" in out

    def test_whatif_historical(self, capsys):
        out = run_example("whatif_historical.py", capsys)
        assert "model fitted once" in out
        assert "speedup" in out

    def test_periodic_sensor(self, capsys):
        out = run_example("periodic_sensor.py", capsys)
        assert "predicted overheating windows" in out

    def test_every_example_is_covered(self):
        scripts = {p.name for p in EXAMPLES.glob("*.py")}
        covered = {
            "quickstart.py",
            "collision_detection.py",
            "macd_trading.py",
            "vessel_following.py",
            "whatif_historical.py",
            "periodic_sensor.py",
        }
        assert scripts == covered, "new examples need a smoke test"
