"""Golden-trace regression suite: the observability layer's lock.

Each scenario runs a fixed, fully deterministic workload through the
traced engine and compares the resulting span stream — **exactly** —
against a committed golden file in ``tests/golden/``.  The comparison
covers everything the engine controls (span ids, parent edges, names,
kinds, attributes, ordering) and drops only the wall-clock fields,
which are the one nondeterministic part of a trace.

Because span ids are allocated in execution order, these goldens pin
not just the *shape* of the instrumentation but the engine's entire
observable execution order: a change to operator cascade order, solve
batching, prime scheduling, or span parenting shows up as a golden
diff.  That is the point — such changes must be deliberate.

After an intentional change, regenerate with::

    PYTHONPATH=src python -m pytest tests/integration/test_golden_traces.py \
        --update-goldens

and commit the rewritten files.
"""

import json
from pathlib import Path

import pytest

from repro.core.polynomial import Polynomial
from repro.core.segment import Segment
from repro.core.solve_cache import (
    reset_global_solve_cache,
    reset_worker_root_cache,
)
from repro.core.transform import to_continuous_plan
from repro.engine import tracing
from repro.engine.metrics import reset_counters
from repro.engine.scheduler import QueryRuntime
from repro.engine.tracing import TraceError, build_span_tree, read_trace
from repro.query import parse_query, plan_query

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"

#: Fields compared against the golden.  Wall-clock fields (``t_start``,
#: ``t_end``) are excluded — everything else must match exactly.
_STABLE_FIELDS = ("span_id", "parent_id", "name", "kind", "attrs")


def _trace_events():
    """A fixed two-stream workload: no RNG, pure literals."""
    events = []
    for k, bias in (("aapl", 0.0), ("ibm", 0.5)):
        for i in range(4):
            start = 1.25 * i
            events.append(
                ("ticks",
                 Segment((k,), start, start + 2.0,
                         {"x": Polynomial([bias - 1.0 + 0.5 * i, 1.0])},
                         constants={"sym": k}))
            )
            events.append(
                ("quotes",
                 Segment((k,), start, start + 2.0,
                         {"y": Polynomial([bias + 0.25 * i, -0.5])},
                         constants={"sym": k}))
            )
    return events


SCENARIOS = {
    "filter": ("select * from ticks where x > 0", 1),
    "join": (
        "select from ticks T join quotes Q "
        "on (T.sym = Q.sym and T.x > Q.y)",
        1,
    ),
    "aggregate": (
        "select sym, avg(x) as ax from ticks [size 4 advance 2] "
        "group by sym",
        1,
    ),
    "join_sharded": (
        "select from ticks T join quotes Q "
        "on (T.sym = Q.sym and T.x > Q.y)",
        2,
    ),
}


def run_traced_scenario(sql: str, num_shards: int, trace_path) -> list[dict]:
    """Run one scenario's workload traced; return normalized records."""
    reset_global_solve_cache()
    reset_worker_root_cache()
    reset_counters()
    planned = plan_query(parse_query(sql))
    consumed = set(planned.stream_sources)
    with tracing.observability(str(trace_path)):
        rt = QueryRuntime(num_shards=num_shards)
        try:
            rt.register("q", to_continuous_plan(planned))
            for stream, seg in _trace_events():
                if stream in consumed:
                    rt.enqueue(stream, seg)
            rt.run_until_idle()
        finally:
            rt.close()
    spans = read_trace(trace_path)
    build_span_tree(spans)  # every golden trace must be a valid tree
    return [normalize(s.to_record()) for s in spans]


def normalize(record: dict) -> dict:
    return {f: record.get(f) for f in _STABLE_FIELDS}


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_trace_matches_golden(scenario, tmp_path, update_goldens):
    sql, num_shards = SCENARIOS[scenario]
    actual = run_traced_scenario(
        sql, num_shards, tmp_path / "trace.jsonl"
    )
    golden_path = GOLDEN_DIR / f"trace_{scenario}.json"
    if update_goldens:
        golden_path.parent.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(json.dumps(actual, indent=1) + "\n")
        return
    assert golden_path.exists(), (
        f"missing golden {golden_path.name}; generate with "
        f"--update-goldens and commit it"
    )
    golden = json.loads(golden_path.read_text())
    assert actual == golden, (
        f"trace for scenario {scenario!r} diverged from "
        f"{golden_path.name}; if the change is intentional, rerun with "
        f"--update-goldens and commit the diff"
    )


MULTISUB_SQL = "select * from ticks where x > 0"


def _multisub_tuples():
    """Fixed literal tuples, no RNG: a zig-zag no line fits at 0.05."""
    values = [0.0, 1.0, 0.2, 1.4, 0.4, 1.8, 0.6, 2.2, 0.8, 2.6, 1.0, 3.0]
    return [
        {"time": 0.5 * i, "sym": "aapl", "x": v}
        for i, v in enumerate(values)
    ]


def run_multisub_scenario(trace_path, incremental: bool = False):
    """Two bounds, one shared graph, driven through the bridge.

    A loose (0.2) subscriber joins first, then a tight (0.05) one —
    exactly one retighten, performed while the fitting builders are
    still empty, so the span stream stays fully deterministic.  Returns
    ``(normalized_spans_or_None, per_subscription_canonical_outputs)``.
    """
    import contextlib

    from repro.core.batch_solver import incremental_mode
    from repro.engine.tuples import StreamTuple
    from repro.server.bridge import EngineBridge, FitSpec

    reset_global_solve_cache()
    reset_worker_root_cache()
    reset_counters()
    delivered: dict[int, list] = {}

    def on_outputs(subscribers, info, outputs):
        for sub_id, _cursor in subscribers:
            delivered.setdefault(sub_id, []).extend(outputs)

    ctx = (
        tracing.observability(str(trace_path))
        if trace_path is not None
        else contextlib.nullcontext()
    )
    tuples = [StreamTuple(t) for t in _multisub_tuples()]
    with incremental_mode(incremental), ctx:
        bridge = EngineBridge(on_outputs=on_outputs)
        bridge.start()
        try:
            bridge.register_query(
                "q", MULTISUB_SQL, FitSpec(attrs=("x",), key_fields=("sym",))
            ).result()
            bridge.subscribe(1, "q", "continuous", 0.2).result()
            bridge.subscribe(2, "q", "continuous", 0.05).result()
            for i in range(0, len(tuples), 4):
                bridge.ingest(None, "ticks", tuples[i : i + 4]).result()
            bridge.flush().result()
        finally:
            bridge.stop()
    outputs = {
        sub_id: _canon_outputs(outs) for sub_id, outs in delivered.items()
    }
    if trace_path is None:
        return None, outputs
    spans = read_trace(trace_path)
    build_span_tree(spans)
    return [normalize(s.to_record()) for s in spans], outputs


def test_multisub_trace_matches_golden(tmp_path, update_goldens):
    """The multi-subscription fan-out golden: one shared graph, two
    bounds, per-subscriber emit events with cursors."""
    actual, delivered = run_multisub_scenario(tmp_path / "trace.jsonl")
    # the fan-out contract itself: both subscribers, identical streams
    assert set(delivered) == {1, 2}
    assert delivered[1] == delivered[2]
    assert len(delivered[1]) > 0
    golden_path = GOLDEN_DIR / "trace_multisub.json"
    if update_goldens:
        golden_path.parent.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(json.dumps(actual, indent=1) + "\n")
        return
    assert golden_path.exists(), (
        f"missing golden {golden_path.name}; generate with "
        f"--update-goldens and commit it"
    )
    golden = json.loads(golden_path.read_text())
    assert actual == golden, (
        "multisub trace diverged from trace_multisub.json; if the "
        "change is intentional, rerun with --update-goldens and commit"
    )


def test_multisub_incremental_output_parity():
    """The shared-graph fan-out must be mode-independent too."""
    _, full = run_multisub_scenario(None, incremental=False)
    _, incr = run_multisub_scenario(None, incremental=True)
    assert incr == full
    assert set(full) == {1, 2}


def _canon_outputs(outputs):
    return [
        (
            s.key,
            s.t_start,
            s.t_end,
            {a: p.coeffs for a, p in sorted(s.models.items())},
            tuple(sorted(s.constants.items())),
        )
        for s in outputs
    ]


def _run_outputs(sql: str, num_shards: int, incremental: bool):
    """Run one scenario's workload untraced; return value-canonical outputs."""
    from repro.core.batch_solver import incremental_mode

    reset_global_solve_cache()
    reset_worker_root_cache()
    reset_counters()
    planned = plan_query(parse_query(sql))
    consumed = set(planned.stream_sources)
    with incremental_mode(incremental):
        rt = QueryRuntime(num_shards=num_shards)
        try:
            rt.register("q", to_continuous_plan(planned))
            for stream, seg in _trace_events():
                if stream in consumed:
                    rt.enqueue(stream, seg)
            rt.run_until_idle()
            outputs = rt.outputs("q")
        finally:
            rt.close()
    return [
        (
            s.key,
            s.t_start,
            s.t_end,
            {a: p.coeffs for a, p in sorted(s.models.items())},
            tuple(sorted(s.constants.items())),
        )
        for s in outputs
    ]


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_incremental_output_parity(scenario):
    """The incremental knob must not change a single output value.

    The span goldens above run with the knob off (its default); this
    gate runs every golden workload in both modes and compares the
    output streams by value — the delta path's contract is bit-exact
    equality with the full re-solve oracle.
    """
    sql, num_shards = SCENARIOS[scenario]
    full = _run_outputs(sql, num_shards, incremental=False)
    incr = _run_outputs(sql, num_shards, incremental=True)
    assert incr == full


def test_goldens_have_no_strays():
    """Every committed golden corresponds to a scenario (and exists)."""
    expected = {f"trace_{name}.json" for name in SCENARIOS} | {
        "trace_multisub.json"
    }
    present = {p.name for p in GOLDEN_DIR.glob("trace_*.json")}
    assert present == expected


class TestSuiteCatchesPerturbations:
    """Negative control: a perturbed trace must fail the comparison.

    A regression suite that cannot fail is decoration; these tests
    mutate a real trace the way plausible engine bugs would and assert
    the suite's own checks reject each mutation.
    """

    @pytest.fixture(scope="class")
    def filter_run(self, tmp_path_factory):
        sql, num_shards = SCENARIOS["filter"]
        tmp = tmp_path_factory.mktemp("perturb")
        return run_traced_scenario(sql, num_shards, tmp / "trace.jsonl")

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(
            (GOLDEN_DIR / "trace_filter.json").read_text()
        )

    def test_reparented_span_detected(self, filter_run, golden):
        mutated = [dict(r) for r in filter_run]
        victim = next(
            r for r in mutated if r["parent_id"] is not None
        )
        victim["parent_id"] = None  # orphan an inner span
        assert mutated != golden

    def test_dropped_span_detected(self, filter_run, golden):
        mutated = [r for r in filter_run if r["kind"] != "emit"]
        assert len(mutated) < len(filter_run)
        assert mutated != golden

    def test_renamed_span_detected(self, filter_run, golden):
        mutated = [dict(r) for r in filter_run]
        mutated[0]["name"] = "renamed"
        assert mutated != golden

    def test_attr_change_detected(self, filter_run, golden):
        mutated = [dict(r) for r in filter_run]
        victim = next(r for r in mutated if r["attrs"])
        key = next(iter(victim["attrs"]))
        victim["attrs"] = {**victim["attrs"], key: "tampered"}
        assert mutated != golden

    def test_dangling_parent_fails_tree_validation(self, tmp_path):
        sql, num_shards = SCENARIOS["filter"]
        path = tmp_path / "trace.jsonl"
        run_traced_scenario(sql, num_shards, path)
        lines = path.read_text().splitlines()
        recs = [json.loads(line) for line in lines]
        victim = next(r for r in recs if r["parent_id"] is not None)
        victim["parent_id"] = 10 ** 9  # points at a span never emitted
        from repro.engine.tracing import Span

        with pytest.raises(TraceError, match="unknown parent"):
            build_span_tree(Span.from_record(r) for r in recs)
