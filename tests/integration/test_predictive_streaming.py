"""Integration: predictive processing over noisy streams.

Exercises the full validated-execution loop of Section IV: predictive
models from MODEL clauses, accuracy/slack validation, re-solving on
violations — and checks the user-facing guarantee, that the model Pulse
answers from never strays from the observed data by more than the
bound.
"""

import pytest

from repro.core.modes import PredictiveProcessor
from repro.core.validation import ErrorBound
from repro.engine.tuples import StreamTuple
from repro.query import parse_expression, parse_query, plan_query
from repro.workloads import MovingObjectConfig, MovingObjectGenerator


def make_processor(bound, sql="select * from objects where x > 0", **kw):
    planned = plan_query(parse_query(sql))
    return PredictiveProcessor(
        planned,
        model_exprs={"x": parse_expression("x + vx * t")},
        horizon=5.0,
        bound=ErrorBound(bound),
        key_fields=("id",),
        constant_fields=("id",),
        **kw,
    )


def workload(noise, n=2000, seed=23):
    gen = MovingObjectGenerator(
        MovingObjectConfig(
            num_objects=3, rate=300.0, tuples_per_segment=150,
            noise=noise, seed=seed,
        )
    )
    return list(gen.tuples(n))


class TestNoiseVsBound:
    def test_noiseless_stream_drops_almost_everything(self):
        proc = make_processor(bound=1.0)
        stream = workload(noise=0.0)
        for tup in stream:
            proc.process_tuple(tup)
        assert proc.stats.drop_rate > 0.9
        # The only violations are genuine course changes (every 150
        # samples per object), not model noise.
        epochs = len(stream) / 150
        assert proc.stats.violations <= 2 * epochs

    def test_noise_below_bound_still_drops(self):
        proc = make_processor(bound=5.0)
        for tup in workload(noise=0.3):
            proc.process_tuple(tup)
        assert proc.stats.drop_rate > 0.8

    def test_noise_above_bound_forces_resolving(self):
        quiet = make_processor(bound=5.0)
        noisy = make_processor(bound=0.05)
        stream = workload(noise=0.3)
        for tup in stream:
            quiet.process_tuple(tup)
        for tup in stream:
            noisy.process_tuple(tup)
        assert noisy.stats.models_built > 5 * quiet.stats.models_built
        assert noisy.stats.violations > 0

    def test_model_error_bounded_for_accuracy_dropped_tuples(self):
        """Every tuple dropped on the *accuracy* path was within its
        bound of the model — the guarantee validation provides.  (Slack
        drops may deviate further: with a null result there is nothing
        to be accurate about.)  An always-true predicate keeps every
        segment on the accuracy path."""
        bound = 2.0
        proc = make_processor(
            bound=bound, sql="select * from objects where x > -1e9"
        )
        for tup in workload(noise=0.2):
            before = proc.stats.tuples_dropped
            proc.process_tuple(tup)
            if proc.stats.tuples_dropped > before:
                seg = proc.validator._active[(tup["id"],)]
                deviation = abs(tup["x"] - seg.models["x"](tup.time))
                assert deviation <= bound + 1e-9


class TestPredictedOutputsAgainstReality:
    def test_predicted_ranges_match_future_data(self):
        """Predictions made at segment start agree with the data that
        later arrives (noiseless world): every tuple with x > 0 falls
        inside some predicted output range for its key."""
        proc = make_processor(bound=0.5)
        stream = workload(noise=0.0, n=1500)
        predictions = []
        for tup in stream:
            predictions.extend(proc.process_tuple(tup))
        uncovered = 0
        positives = 0
        for tup in stream:
            if tup["x"] <= 0.5:  # away from the boundary
                continue
            positives += 1
            if not any(
                p.constants.get("id") == tup["id"] and p.contains_time(tup.time)
                for p in predictions
            ):
                uncovered += 1
        assert positives > 0
        assert uncovered / positives < 0.05

    def test_gradient_splitter_end_to_end(self):
        proc = make_processor(bound=1.0, splitter="gradient")
        for tup in workload(noise=0.0, n=600):
            proc.process_tuple(tup)
        assert proc.stats.drop_rate > 0.8
