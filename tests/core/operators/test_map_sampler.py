"""Tests for the continuous map (projection) and output sampler."""

import pytest

from repro.core.expr import Attr, Const, Sub
from repro.core.operators import ContinuousMap, OutputSampler, Projection
from repro.core.polynomial import Polynomial
from repro.core.segment import Segment


def seg(lo, hi, key=("k",), constants=None, **models):
    return Segment(
        key=key,
        t_start=lo,
        t_end=hi,
        models={k: Polynomial(v) for k, v in models.items()},
        constants=constants or {},
    )


class TestMap:
    def test_alias_projection(self):
        m = ContinuousMap([Projection("x", Attr("b"))])
        out = m.process(seg(0, 10, b=[1.0, 2.0]))
        assert out[0].model("x") == Polynomial([1.0, 2.0])

    def test_arithmetic_projection(self):
        # The MACD shape: S.ap - L.ap as diff.
        m = ContinuousMap([Projection("diff", Sub(Attr("S.ap"), Attr("L.ap")))])
        s = Segment(
            ("k",),
            0,
            10,
            models={
                "S.ap": Polynomial([5.0, 1.0]),
                "L.ap": Polynomial([3.0]),
            },
        )
        out = m.process(s)
        assert out[0].model("diff").coeffs == (2.0, 1.0)

    def test_discrete_attribute_passes_as_constant(self):
        m = ContinuousMap([Projection("sym", Attr("symbol"))])
        out = m.process(seg(0, 1, constants={"symbol": "IBM"}, x=[1.0]))
        assert out[0].constants["sym"] == "IBM"
        assert "sym" not in out[0].models

    def test_constants_preserved_by_default(self):
        m = ContinuousMap([Projection("y", Attr("x"))])
        out = m.process(seg(0, 1, constants={"tag": 7}, x=[1.0]))
        assert out[0].constants["tag"] == 7

    def test_keep_constants_false(self):
        m = ContinuousMap([Projection("y", Attr("x"))], keep_constants=False)
        out = m.process(seg(0, 1, constants={"tag": 7}, x=[1.0]))
        assert "tag" not in out[0].constants

    def test_translations_metadata(self):
        m = ContinuousMap(
            [
                Projection("x", Attr("b")),
                Projection("diff", Sub(Attr("a"), Attr("b"))),
            ]
        )
        t = m.translations()
        assert t["x"] == frozenset({"b"})
        assert t["diff"] == frozenset({"a", "b"})

    def test_projection_is_alias(self):
        assert Projection("x", Attr("b")).is_alias
        assert not Projection("x", Sub(Attr("a"), Attr("b"))).is_alias

    def test_key_and_time_range_preserved(self):
        m = ContinuousMap([Projection("y", Attr("x"))])
        out = m.process(seg(2, 8, key=("v",), x=[1.0]))
        assert out[0].key == ("v",)
        assert (out[0].t_start, out[0].t_end) == (2, 8)

    def test_lineage_recorded(self):
        m = ContinuousMap([Projection("y", Attr("x"))])
        s = seg(0, 1, x=[1.0])
        out = m.process(s)
        assert out[0].lineage == (s.seg_id,)


class TestSampler:
    def test_samples_on_grid(self):
        sampler = OutputSampler(period=1.0)
        times = list(sampler.sample_times(seg(0.5, 4.2, x=[0.0])))
        assert times == [1.0, 2.0, 3.0, 4.0]

    def test_point_segment_sampled_once(self):
        sampler = OutputSampler(period=1.0)
        s = seg(0, 10, x=[0.0]).at_instant(3.3)
        assert list(sampler.sample_times(s)) == [3.3]

    def test_tuples_evaluate_models(self):
        sampler = OutputSampler(period=1.0)
        rows = sampler.tuples(seg(0, 3, x=[0.0, 2.0]))
        assert [r["x"] for r in rows] == [0.0, 2.0, 4.0]
        assert [r["time"] for r in rows] == [0.0, 1.0, 2.0]

    def test_tuples_include_constants_and_key(self):
        sampler = OutputSampler(period=1.0)
        rows = sampler.tuples(seg(0, 1, constants={"sym": "A"}, x=[1.0]))
        assert rows[0]["sym"] == "A"
        assert rows[0]["__key"] == ("k",)

    def test_adjacent_segments_never_double_sample(self):
        sampler = OutputSampler(period=1.0)
        t1 = list(sampler.sample_times(seg(0, 2, x=[0.0])))
        t2 = list(sampler.sample_times(seg(2, 4, x=[0.0])))
        assert set(t1).isdisjoint(t2)

    def test_counter(self):
        sampler = OutputSampler(period=0.5)
        sampler.tuples(seg(0, 2, x=[0.0]))
        assert sampler.tuples_emitted == 4

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            OutputSampler(period=0.0)
