"""Tests for the continuous join operator."""

import pytest

from repro.core.expr import Attr, Const, Pow, Sub
from repro.core.operators import ContinuousJoin
from repro.core.polynomial import Polynomial
from repro.core.predicate import And, Comparison
from repro.core.relation import Rel
from repro.core.segment import Segment


def seg(lo, hi, key, constants=None, **models):
    return Segment(
        key=(key,),
        t_start=lo,
        t_end=hi,
        models={k: Polynomial(v) for k, v in models.items()},
        constants=constants or {},
    )


def lt(l, r):
    return Comparison(Attr(l), Rel.LT, Attr(r))


class TestJoinBasics:
    def test_no_partner_no_output(self):
        j = ContinuousJoin(lt("L.x", "R.y"))
        assert j.process(seg(0, 10, "a", x=[0.0]), port=0) == []

    def test_figure1_join(self):
        # A.x = 4 + t vs B.y = 2t + 0.5t^2; A.x < B.y for t > 2.
        j = ContinuousJoin(lt("L.x", "R.y"))
        j.process(seg(0, 10, "a", x=[4.0, 1.0]), port=0)
        out = j.process(seg(0, 10, "b", y=[0.0, 2.0, 0.5]), port=1)
        assert len(out) == 1
        assert out[0].t_start == pytest.approx(2.0)
        assert out[0].t_end == pytest.approx(10.0)

    def test_output_merges_models_with_aliases(self):
        j = ContinuousJoin(lt("L.x", "R.y"), left_alias="L", right_alias="R")
        j.process(seg(0, 10, "a", x=[0.0]), port=0)
        out = j.process(seg(0, 10, "b", y=[5.0]), port=1)
        assert set(out[0].models) == {"L.x", "R.y"}
        assert out[0].key == ("a", "b")

    def test_solution_restricted_to_overlap(self):
        j = ContinuousJoin(lt("L.x", "R.y"))
        j.process(seg(0, 4, "a", x=[0.0]), port=0)   # left valid [0,4)
        out = j.process(seg(2, 10, "b", y=[5.0]), port=1)  # right [2,10)
        assert len(out) == 1
        assert (out[0].t_start, out[0].t_end) == (2, 4)

    def test_non_overlapping_segments_never_pair(self):
        j = ContinuousJoin(lt("L.x", "R.y"))
        j.process(seg(0, 2, "a", x=[0.0]), port=0)
        assert j.process(seg(5, 10, "b", y=[5.0]), port=1) == []

    def test_symmetry_of_ports(self):
        j = ContinuousJoin(lt("L.x", "R.y"))
        j.process(seg(0, 10, "b", y=[5.0]), port=1)
        out = j.process(seg(0, 10, "a", x=[0.0]), port=0)
        assert len(out) == 1
        assert set(out[0].models) == {"L.x", "R.y"}

    def test_invalid_port(self):
        j = ContinuousJoin(lt("L.x", "R.y"))
        with pytest.raises(ValueError):
            j.process(seg(0, 1, "a", x=[0.0]), port=2)

    def test_multiple_partners_produce_multiple_outputs(self):
        j = ContinuousJoin(lt("L.x", "R.y"))
        j.process(seg(0, 10, "a1", x=[0.0]), port=0)
        j.process(seg(0, 10, "a2", x=[1.0]), port=0)
        out = j.process(seg(0, 10, "b", y=[5.0]), port=1)
        assert len(out) == 2


class TestJoinPredicates:
    def test_key_inequality_folded_discretely(self):
        # The paper's self-join guard: L.id <> R.id.
        pred = And(
            Comparison(Attr("L.id"), Rel.NE, Attr("R.id")),
            lt("L.x", "R.x"),
        )
        j = ContinuousJoin(pred)
        j.process(seg(0, 10, "v1", constants={"id": "v1"}, x=[0.0]), port=0)
        # Same id on the right: rejected without solving.
        out = j.process(
            seg(0, 10, "v1", constants={"id": "v1"}, x=[5.0]), port=1
        )
        assert out == []
        assert j.pairs_rejected_discrete == 1
        # Different id joins normally.
        out = j.process(
            seg(0, 10, "v2", constants={"id": "v2"}, x=[5.0]), port=1
        )
        assert len(out) == 1

    def test_equality_join_emits_point(self):
        # L.x = t, R.y = 10 - t: equal at t = 5.
        pred = Comparison(Attr("L.x"), Rel.EQ, Attr("R.y"))
        j = ContinuousJoin(pred)
        j.process(seg(0, 10, "a", x=[0.0, 1.0]), port=0)
        out = j.process(seg(0, 10, "b", y=[10.0, -1.0]), port=1)
        assert len(out) == 1
        assert out[0].is_point
        assert out[0].contains_time(5.0)

    def test_proximity_join_quadratic(self):
        # Objects approaching: L at x=t, R at x=10-t; squared distance
        # (2t-10)^2 < 4 when |t-5| < 1, i.e. t in (4, 6).
        dist_sq = Pow(Sub(Attr("L.x"), Attr("R.x")), 2)
        pred = Comparison(dist_sq, Rel.LT, Const(4.0))
        j = ContinuousJoin(pred)
        j.process(seg(0, 10, "a", x=[0.0, 1.0]), port=0)
        out = j.process(seg(0, 10, "b", x=[10.0, -1.0]), port=1)
        assert len(out) == 1
        assert out[0].t_start == pytest.approx(4.0)
        assert out[0].t_end == pytest.approx(6.0)

    def test_always_true_predicate_passes_overlap(self):
        pred = Comparison(Const(1.0), Rel.GT, Const(0.0))
        j = ContinuousJoin(pred)
        j.process(seg(0, 5, "a", x=[0.0]), port=0)
        out = j.process(seg(3, 8, "b", y=[0.0]), port=1)
        assert len(out) == 1
        assert (out[0].t_start, out[0].t_end) == (3, 5)


class TestJoinState:
    def test_window_evicts_old_segments(self):
        j = ContinuousJoin(lt("L.x", "R.y"), window=1.0)
        j.process(seg(0, 1, "a", x=[0.0]), port=0)
        j.process(seg(1, 2, "a", x=[0.0]), port=0)
        # Eviction requires BOTH sides' start watermarks to advance (a
        # lagging side may still deliver old-time segments).
        j.process(seg(10, 11, "b", y=[5.0]), port=1)
        assert len(list(j._buffers[0].segments())) == 2
        j.process(seg(10, 11, "a2", x=[0.0]), port=0)
        assert all(s.t_end > 9.0 for s in j._buffers[0].segments())
        assert all(s.t_end > 9.0 for s in j._buffers[1].segments())

    def test_unbounded_state_without_window(self):
        j = ContinuousJoin(lt("L.x", "R.y"))
        for i in range(5):
            j.process(seg(i, i + 1, "a", x=[0.0]), port=0)
        j.process(seg(100, 101, "b", y=[5.0]), port=1)
        assert len(list(j._buffers[0].segments())) == 5

    def test_state_size_property(self):
        j = ContinuousJoin(lt("L.x", "R.y"))
        j.process(seg(0, 1, "a", x=[0.0]), port=0)
        j.process(seg(0, 1, "b", y=[0.0]), port=1)
        assert j.state_size == 2

    def test_reset(self):
        j = ContinuousJoin(lt("L.x", "R.y"))
        j.process(seg(0, 1, "a", x=[0.0]), port=0)
        j.reset()
        assert j.state_size == 0

    def test_update_semantics_in_buffer(self):
        # A newer left segment overriding the old one means the old model
        # no longer joins in the overridden range.
        j = ContinuousJoin(lt("L.x", "R.y"))
        j.process(seg(0, 10, "a", x=[0.0]), port=0)     # x=0 < 5: joins
        j.process(seg(5, 10, "a", x=[99.0]), port=0)    # update: x=99 from t=5
        out = j.process(seg(0, 10, "b", y=[5.0]), port=1)
        ranges = sorted((o.t_start, o.t_end) for o in out)
        # Old model only joins on [0,5); the update (x=99) never does.
        assert ranges == [(0.0, 5.0)]
