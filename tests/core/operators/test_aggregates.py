"""Tests for continuous min/max and sum/avg aggregate operators."""

import math

import pytest

from repro.core.errors import UnsupportedAggregateError
from repro.core.operators import (
    ContinuousExtremumAggregate,
    ContinuousGroupBy,
    ContinuousSumAggregate,
    make_aggregate,
)
from repro.core.polynomial import Polynomial
from repro.core.segment import Segment


def seg(lo, hi, key="k", **models):
    return Segment(
        key=(key,),
        t_start=lo,
        t_end=hi,
        models={k: Polynomial(v) for k, v in models.items()},
    )


class TestExtremumAggregate:
    def test_first_segment_defines_envelope(self):
        agg = ContinuousExtremumAggregate("x", func="min")
        out = agg.process(seg(0, 10, x=[5.0]))
        assert len(out) == 1
        assert agg.envelope(3.0) == 5.0

    def test_lower_value_updates(self):
        agg = ContinuousExtremumAggregate("x", func="min")
        agg.process(seg(0, 10, key="a", x=[5.0]))
        out = agg.process(seg(0, 10, key="b", x=[3.0]))
        assert len(out) == 1
        assert agg.envelope(3.0) == 3.0

    def test_higher_value_ignored_for_min(self):
        agg = ContinuousExtremumAggregate("x", func="min")
        agg.process(seg(0, 10, key="a", x=[5.0]))
        out = agg.process(seg(0, 10, key="b", x=[7.0]))
        assert out == []
        assert agg.envelope(3.0) == 5.0

    def test_crossing_models_split_envelope(self):
        # a: x = t (lower before 5); b: x = 10 - t (lower after 5).
        agg = ContinuousExtremumAggregate("x", func="min")
        agg.process(seg(0, 10, key="a", x=[0.0, 1.0]))
        out = agg.process(seg(0, 10, key="b", x=[10.0, -1.0]))
        assert len(out) == 1
        assert out[0].t_start == pytest.approx(5.0)
        assert agg.envelope(2.0) == pytest.approx(2.0)   # t
        assert agg.envelope(8.0) == pytest.approx(2.0)   # 10 - t

    def test_max_mirror(self):
        agg = ContinuousExtremumAggregate("x", func="max")
        agg.process(seg(0, 10, key="a", x=[0.0, 1.0]))
        agg.process(seg(0, 10, key="b", x=[10.0, -1.0]))
        assert agg.envelope(2.0) == pytest.approx(8.0)
        assert agg.envelope(8.0) == pytest.approx(8.0)

    def test_partial_overlap_gap_fill(self):
        agg = ContinuousExtremumAggregate("x", func="min")
        agg.process(seg(0, 5, key="a", x=[4.0]))
        out = agg.process(seg(3, 8, key="b", x=[6.0]))
        # 6 > 4 on [3,5) but fills the gap [5,8).
        assert len(out) == 1
        assert (out[0].t_start, out[0].t_end) == (5, 8)

    def test_envelope_pointwise_invariant(self):
        agg = ContinuousExtremumAggregate("x", func="min")
        segments = [
            seg(0, 10, key="a", x=[3.0, 0.5]),
            seg(0, 10, key="b", x=[8.0, -0.5]),
            seg(2, 8, key="c", x=[1.0, 0.0, 0.1]),
        ]
        for s in segments:
            agg.process(s)
        for i in range(100):
            t = 0.05 + i * 0.0999
            live = [
                s.model("x")(t) for s in segments if s.contains_time(t)
            ]
            assert agg.envelope(t) == pytest.approx(min(live), abs=1e-6)

    def test_windowed_value(self):
        agg = ContinuousExtremumAggregate("x", func="min", window=4.0)
        agg.process(seg(0, 10, x=[0.0, 1.0]))  # x = t
        # min over [2, 6] of t is 2.
        assert agg.windowed_value(6.0) == pytest.approx(2.0)

    def test_windowed_value_uses_stationary_points(self):
        # x = (t-5)^2: interior minimum 0 at t=5.
        agg = ContinuousExtremumAggregate("x", func="min", window=6.0)
        agg.process(seg(0, 10, x=[25.0, -10.0, 1.0]))
        assert agg.windowed_value(8.0) == pytest.approx(0.0, abs=1e-9)

    def test_windowed_value_requires_window(self):
        agg = ContinuousExtremumAggregate("x", func="min")
        agg.process(seg(0, 10, x=[1.0]))
        with pytest.raises(ValueError):
            agg.windowed_value(5.0)

    def test_eviction_drops_old_pieces(self):
        agg = ContinuousExtremumAggregate("x", func="min", window=2.0, slide=1.0)
        agg.process(seg(0, 1, x=[1.0]))
        agg.process(seg(1, 2, x=[1.0]))
        agg.process(seg(50, 51, x=[1.0]))
        assert agg.envelope.domain_start >= 47.0

    def test_rejects_unknown_func(self):
        with pytest.raises(UnsupportedAggregateError):
            ContinuousExtremumAggregate("x", func="count")

    def test_window_closes_on_slide_grid(self):
        agg = ContinuousExtremumAggregate("x", func="min", window=4.0, slide=2.0)
        assert agg.window_closes(0.5, 7.0) == [2.0, 4.0, 6.0]


class TestSumAggregate:
    def test_constant_signal_window_value(self):
        agg = ContinuousSumAggregate("x", window=2.0)
        agg.process(seg(0, 10, x=[3.0]))
        # integral of 3 over any 2-wide window is 6.
        assert agg.window_value(5.0) == pytest.approx(6.0)

    def test_average_divides_by_window(self):
        agg = ContinuousSumAggregate("x", window=2.0, average=True)
        agg.process(seg(0, 10, x=[3.0]))
        assert agg.window_value(5.0) == pytest.approx(3.0)

    def test_linear_signal(self):
        agg = ContinuousSumAggregate("x", window=2.0)
        agg.process(seg(0, 10, x=[0.0, 1.0]))  # x = t
        # integral_{3}^{5} t dt = (25 - 9)/2 = 8.
        assert agg.window_value(5.0) == pytest.approx(8.0)

    def test_window_spanning_multiple_segments(self):
        # Paper's multi-segment case: head + covered C + tail integrals.
        agg = ContinuousSumAggregate("x", window=3.0, retention=math.inf)
        agg.process(seg(0, 2, x=[1.0]))        # contributes 1 * overlap
        agg.process(seg(2, 4, x=[2.0]))
        agg.process(seg(4, 6, x=[3.0]))
        # Window [1.5, 4.5]: 0.5*1 + 2*2 + 0.5*3 = 6.0.
        assert agg.window_value(4.5) == pytest.approx(6.0)

    def test_emitted_window_functions_match_direct_evaluation(self):
        agg = ContinuousSumAggregate("x", window=2.0)
        outputs = []
        outputs += agg.process(seg(0, 3, x=[0.0, 1.0]))
        outputs += agg.process(seg(3, 6, x=[3.0]))
        outputs += agg.process(seg(6, 9, x=[9.0, -1.0]))
        assert outputs, "window functions must be emitted"
        for out in outputs:
            wf = out.model(agg.output_attr)
            for frac in (0.1, 0.5, 0.9):
                c = out.t_start + frac * (out.t_end - out.t_start)
                direct = _numeric_window_integral(c, 2.0)
                assert wf(c) == pytest.approx(direct, rel=1e-9), c

    def test_emission_covers_all_valid_closes_exactly_once(self):
        agg = ContinuousSumAggregate("x", window=2.0)
        outputs = []
        for i in range(5):
            outputs += agg.process(seg(i * 2, (i + 1) * 2, x=[float(i)]))
        covered = sorted((o.t_start, o.t_end) for o in outputs)
        # Valid closes are [w, signal_end) = [2, 10); contiguous, no overlap.
        assert covered[0][0] == pytest.approx(2.0)
        assert covered[-1][1] == pytest.approx(10.0)
        for (a0, a1), (b0, b1) in zip(covered[:-1], covered[1:]):
            assert a1 == pytest.approx(b0)

    def test_revision_overrides_future(self):
        # Successor [2, 5) replaces the signal from t=2 on (the paper's
        # update semantics): the predecessor's tail [5, 10) is discarded.
        agg = ContinuousSumAggregate("x", window=2.0, retention=math.inf)
        agg.process(seg(0, 10, x=[1.0]))
        agg.process(seg(2, 5, x=[9.0]))
        assert agg.revisions == 1
        assert agg.signal_range == (0.0, 5.0)
        # Window [2, 4]: all inside the revised region: 2 * 9.
        assert agg.window_value(4.0) == pytest.approx(18.0)

    def test_revision_preserves_history_before_its_start(self):
        agg = ContinuousSumAggregate("x", window=2.0, retention=math.inf)
        agg.process(seg(0, 10, x=[1.0]))
        agg.process(seg(2, 5, x=[9.0]))
        # Window [1, 3]: 1 second of old signal + 1 second revised.
        assert agg.window_value(3.0) == pytest.approx(1.0 + 9.0)

    def test_overlapping_successor_overrides(self):
        agg = ContinuousSumAggregate("x", window=2.0, retention=math.inf)
        agg.process(seg(0, 5, x=[1.0]))
        agg.process(seg(3, 8, x=[2.0]))  # overrides from t=3 on
        # Window [4, 6]: entirely in the revised region: 2*2 = 4.
        assert agg.window_value(6.0) == pytest.approx(4.0)
        # Window [2, 4]: one old second + one revised second = 1 + 2.
        assert agg.window_value(4.0) == pytest.approx(3.0)

    def test_revision_reemits_window_functions(self):
        agg = ContinuousSumAggregate("x", window=2.0, retention=math.inf)
        out1 = agg.process(seg(0, 10, x=[1.0]))
        assert any(o.t_start <= 5.0 < o.t_end for o in out1)
        out2 = agg.process(seg(2, 8, x=[3.0]))
        # Revised closes are re-emitted and reflect the new signal.
        covering = [o for o in out2 if o.t_start <= 5.0 < o.t_end]
        assert covering
        assert covering[0].model(agg.output_attr)(5.0) == pytest.approx(6.0)

    def test_gap_filled_as_zero(self):
        agg = ContinuousSumAggregate("x", window=4.0)
        agg.process(seg(0, 2, x=[1.0]))
        agg.process(seg(4, 8, x=[1.0]))
        assert agg.gaps_filled == 1
        # Window [2, 6]: gap contributes 0 on [2,4), second segment 2.
        assert agg.window_value(6.0) == pytest.approx(2.0)

    def test_requires_positive_window(self):
        with pytest.raises(ValueError):
            ContinuousSumAggregate("x", window=0.0)

    def test_cumulative_outside_range_raises(self):
        agg = ContinuousSumAggregate("x", window=2.0)
        agg.process(seg(0, 5, x=[1.0]))
        with pytest.raises(ValueError):
            agg.cumulative(50.0)


def _numeric_window_integral(close, w, n=400):
    """Quadrature of the test signal defined in the emission test."""
    def signal(t):
        if 0 <= t < 3:
            return t
        if 3 <= t < 6:
            return 3.0
        if 6 <= t < 9:
            return 9.0 - t
        return 0.0

    lo = close - w
    total = 0.0
    step = w / n
    for i in range(n):
        t = lo + (i + 0.5) * step
        total += signal(t) * step
    return total


class TestMakeAggregate:
    def test_dispatch(self):
        assert isinstance(make_aggregate("min", "x"), ContinuousExtremumAggregate)
        assert isinstance(
            make_aggregate("sum", "x", window=2.0), ContinuousSumAggregate
        )
        avg = make_aggregate("avg", "x", window=2.0)
        assert isinstance(avg, ContinuousSumAggregate) and avg.average

    def test_count_rejected(self):
        with pytest.raises(UnsupportedAggregateError):
            make_aggregate("count", "x", window=2.0)

    def test_sum_requires_window(self):
        with pytest.raises(ValueError):
            make_aggregate("sum", "x")


class TestGroupBy:
    def test_groups_created_per_key(self):
        gb = ContinuousGroupBy(
            lambda: ContinuousSumAggregate("x", window=2.0)
        )
        gb.process(seg(0, 5, key="a", x=[1.0]))
        gb.process(seg(0, 5, key="b", x=[2.0]))
        assert gb.group_count == 2

    def test_groups_isolated(self):
        gb = ContinuousGroupBy(
            lambda: ContinuousSumAggregate("x", window=2.0)
        )
        gb.process(seg(0, 10, key="a", x=[1.0]))
        gb.process(seg(0, 10, key="b", x=[5.0]))
        assert gb.group(("a",)).window_value(5.0) == pytest.approx(2.0)
        assert gb.group(("b",)).window_value(5.0) == pytest.approx(10.0)

    def test_custom_group_key(self):
        gb = ContinuousGroupBy(
            lambda: ContinuousExtremumAggregate("x", func="min"),
            group_key=lambda s: ("all",),
        )
        gb.process(seg(0, 10, key="a", x=[3.0]))
        gb.process(seg(0, 10, key="b", x=[1.0]))
        assert gb.group_count == 1
        assert gb.group(("all",)).envelope(5.0) == 1.0

    def test_reset_clears_groups(self):
        gb = ContinuousGroupBy(
            lambda: ContinuousExtremumAggregate("x", func="min")
        )
        gb.process(seg(0, 10, key="a", x=[3.0]))
        gb.reset()
        assert gb.group_count == 0
