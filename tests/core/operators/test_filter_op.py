"""Tests for the continuous filter operator."""

import pytest

from repro.core.expr import Attr, Const
from repro.core.operators import ContinuousFilter
from repro.core.polynomial import Polynomial
from repro.core.predicate import And, Comparison
from repro.core.relation import Rel
from repro.core.segment import Segment


def seg(lo, hi, key=("k",), constants=None, **models):
    return Segment(
        key=key,
        t_start=lo,
        t_end=hi,
        models={k: Polynomial(v) for k, v in models.items()},
        constants=constants or {},
    )


def pred(attr, rel, const):
    return Comparison(Attr(attr), rel, Const(const))


class TestFilter:
    def test_passes_whole_segment(self):
        f = ContinuousFilter(pred("x", Rel.GT, 0.0))
        out = f.process(seg(0, 10, x=[5.0]))
        assert len(out) == 1
        assert (out[0].t_start, out[0].t_end) == (0, 10)

    def test_drops_whole_segment(self):
        f = ContinuousFilter(pred("x", Rel.LT, 0.0))
        assert f.process(seg(0, 10, x=[5.0])) == []

    def test_restricts_to_satisfying_range(self):
        # x = t - 5 > 0 on (5, 10).
        f = ContinuousFilter(pred("x", Rel.GT, 0.0))
        out = f.process(seg(0, 10, x=[-5.0, 1.0]))
        assert len(out) == 1
        assert out[0].t_start == pytest.approx(5.0)
        assert out[0].t_end == pytest.approx(10.0)

    def test_equality_emits_point_segment(self):
        f = ContinuousFilter(pred("x", Rel.EQ, 0.0))
        out = f.process(seg(0, 10, x=[-5.0, 1.0]))
        assert len(out) == 1
        assert out[0].is_point
        assert out[0].contains_time(5.0)

    def test_quadratic_band_two_outputs(self):
        # x = (t-2)(t-8) < 0 on (2, 8); complement gives two ranges.
        poly = [16.0, -10.0, 1.0]
        f = ContinuousFilter(pred("x", Rel.GT, 0.0))
        out = f.process(seg(0, 10, x=poly))
        assert len(out) == 2
        assert out[0].t_end == pytest.approx(2.0)
        assert out[1].t_start == pytest.approx(8.0)

    def test_output_preserves_models_and_lineage(self):
        f = ContinuousFilter(pred("x", Rel.GT, 0.0))
        s = seg(0, 10, x=[-5.0, 1.0], y=[7.0])
        out = f.process(s)
        assert out[0].model("y") == Polynomial([7.0])
        assert out[0].lineage == s.lineage

    def test_discrete_only_predicate_short_circuits(self):
        f = ContinuousFilter(pred("tag", Rel.EQ, 3.0))
        s_match = seg(0, 10, constants={"tag": 3.0}, x=[1.0])
        s_miss = seg(0, 10, constants={"tag": 4.0}, x=[1.0])
        assert len(f.process(s_match)) == 1
        assert f.process(s_miss) == []
        assert f.systems_solved == 0  # never built an equation system

    def test_mixed_discrete_and_modeled(self):
        p = And(pred("tag", Rel.EQ, 1.0), pred("x", Rel.GT, 0.0))
        f = ContinuousFilter(p)
        s = seg(0, 10, constants={"tag": 1.0}, x=[-5.0, 1.0])
        out = f.process(s)
        assert len(out) == 1
        assert out[0].t_start == pytest.approx(5.0)
        # Wrong tag: equation system is never consulted.
        assert f.process(seg(0, 10, constants={"tag": 2.0}, x=[-5.0, 1.0])) == []

    def test_string_key_predicate(self):
        from repro.core.expr import Attr as A

        # symbol = 'IBM' with a string constant folded discretely: encode
        # the constant through a Const-like comparison using constants map.
        f = ContinuousFilter(
            Comparison(A("symbol"), Rel.EQ, A("wanted"))
        )
        s = seg(0, 1, constants={"symbol": "IBM", "wanted": "IBM"}, x=[1.0])
        assert len(f.process(s)) == 1
        s2 = seg(0, 1, constants={"symbol": "MSFT", "wanted": "IBM"}, x=[1.0])
        assert f.process(s2) == []

    def test_alias_qualified_attribute(self):
        f = ContinuousFilter(pred("S.x", Rel.GT, 0.0), alias="S")
        out = f.process(seg(0, 10, x=[-5.0, 1.0]))
        assert len(out) == 1

    def test_systems_solved_counter(self):
        f = ContinuousFilter(pred("x", Rel.GT, 0.0))
        f.process(seg(0, 10, x=[1.0]))
        f.process(seg(10, 20, x=[1.0]))
        assert f.systems_solved == 2

    def test_slack_system_for_null_result(self):
        f = ContinuousFilter(pred("x", Rel.GT, 10.0))
        s = seg(0, 10, x=[5.0])  # never passes; slack = 5 away from 10
        assert f.process(s) == []
        system = f.slack_system(s)
        assert system is not None
        assert system.slack(0, 10) == pytest.approx(5.0, rel=1e-3)
