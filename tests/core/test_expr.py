"""Tests for the scalar expression language."""

import math

import pytest

from repro.core.errors import NonPolynomialExpressionError
from repro.core.expr import (
    Abs,
    Add,
    Attr,
    Const,
    Div,
    Mul,
    Neg,
    Pow,
    Sqrt,
    Sub,
)
from repro.core.polynomial import Polynomial

ENV = {"R.x": 3.0, "R.v": 2.0, "S.y": 10.0}
MODELS = {
    "R.x": Polynomial([3.0, 2.0]),
    "S.y": Polynomial([10.0]),
}


def resolve(name):
    return MODELS[name]


class TestEvaluate:
    def test_const(self):
        assert Const(5.0).evaluate(ENV) == 5.0

    def test_attr(self):
        assert Attr("R.x").evaluate(ENV) == 3.0

    def test_attr_unqualified_fallback(self):
        assert Attr("y").evaluate(ENV) == 10.0

    def test_attr_ambiguous_fallback_raises(self):
        env = {"R.x": 1.0, "S.x": 2.0}
        with pytest.raises(KeyError):
            Attr("x").evaluate(env)

    def test_attr_missing_raises(self):
        with pytest.raises(KeyError):
            Attr("nope").evaluate(ENV)

    def test_arithmetic(self):
        e = Add(Mul(Attr("R.x"), Const(2.0)), Neg(Attr("R.v")))
        assert e.evaluate(ENV) == pytest.approx(4.0)

    def test_sub_div(self):
        e = Div(Sub(Attr("S.y"), Attr("R.x")), Const(7.0))
        assert e.evaluate(ENV) == pytest.approx(1.0)

    def test_pow(self):
        assert Pow(Attr("R.v"), 3).evaluate(ENV) == pytest.approx(8.0)

    def test_sqrt_abs(self):
        assert Sqrt(Const(9.0)).evaluate(ENV) == 3.0
        assert Abs(Const(-4.0)).evaluate(ENV) == 4.0

    def test_operator_sugar(self):
        e = Attr("R.x") + 2 * Attr("R.v") - 1
        assert e.evaluate(ENV) == pytest.approx(6.0)


class TestToPolynomial:
    def test_attr_resolves_model(self):
        assert Attr("R.x").to_polynomial(resolve) == Polynomial([3.0, 2.0])

    def test_difference_compiles(self):
        # R.x - S.y = (3 + 2t) - 10 = -7 + 2t
        p = Sub(Attr("R.x"), Attr("S.y")).to_polynomial(resolve)
        assert p.coeffs == (-7.0, 2.0)

    def test_product_raises_degree(self):
        p = Mul(Attr("R.x"), Attr("R.x")).to_polynomial(resolve)
        assert p.degree == 2

    def test_pow_compiles(self):
        p = Pow(Sub(Attr("R.x"), Attr("S.y")), 2).to_polynomial(resolve)
        # (-7 + 2t)^2 = 49 - 28t + 4t^2
        assert p.coeffs == pytest.approx((49.0, -28.0, 4.0))

    def test_pow_negative_exponent_rejected(self):
        with pytest.raises(NonPolynomialExpressionError):
            Pow(Attr("R.x"), -1).to_polynomial(resolve)

    def test_div_by_constant(self):
        p = Div(Attr("R.x"), Const(2.0)).to_polynomial(resolve)
        assert p.coeffs == (1.5, 1.0)

    def test_div_by_model_rejected(self):
        with pytest.raises(NonPolynomialExpressionError):
            Div(Const(1.0), Attr("R.x")).to_polynomial(resolve)

    def test_sqrt_rejected(self):
        with pytest.raises(NonPolynomialExpressionError):
            Sqrt(Attr("R.x")).to_polynomial(resolve)

    def test_abs_rejected(self):
        with pytest.raises(NonPolynomialExpressionError):
            Abs(Attr("R.x")).to_polynomial(resolve)

    def test_compile_eval_consistency(self):
        """Compiled polynomial at time t equals discrete evaluation with
        the model values at t — the core soundness property of step 2 of
        the transform."""
        e = Sub(Mul(Attr("R.x"), Const(3.0)), Attr("S.y"))
        p = e.to_polynomial(resolve)
        for t in (0.0, 1.5, 4.0):
            env = {name: MODELS[name](t) for name in MODELS}
            assert p(t) == pytest.approx(e.evaluate(env))


class TestAttributes:
    def test_collects_all(self):
        e = Add(Attr("R.x"), Mul(Attr("S.y"), Const(2.0)))
        assert e.attributes() == frozenset({"R.x", "S.y"})

    def test_const_has_none(self):
        assert Const(1.0).attributes() == frozenset()

    def test_nested(self):
        e = Sqrt(Pow(Sub(Attr("a"), Attr("b")), 2))
        assert e.attributes() == frozenset({"a", "b"})
