"""Tests for error bounds, allocations and the lineage store."""

import pytest

from repro.core.expr import Attr, Const
from repro.core.operators import ContinuousFilter
from repro.core.plan import ContinuousPlan
from repro.core.polynomial import Polynomial
from repro.core.predicate import Comparison
from repro.core.relation import Rel
from repro.core.segment import Segment
from repro.core.validation import (
    AllocatedBound,
    BoundAllocation,
    ErrorBound,
    LineageStore,
)


def seg(lo, hi, key=("k",), **models):
    return Segment(
        key=key,
        t_start=lo,
        t_end=hi,
        models={k: Polynomial(v) for k, v in models.items()},
    )


class TestErrorBound:
    def test_absolute(self):
        b = ErrorBound(0.5)
        assert b.absolute_for(100.0) == 0.5
        assert b.interval_around(10.0) == (9.5, 10.5)

    def test_relative(self):
        b = ErrorBound(0.01, relative=True)
        assert b.absolute_for(200.0) == pytest.approx(2.0)
        assert b.absolute_for(-200.0) == pytest.approx(2.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ErrorBound(-0.1)

    def test_from_spec(self):
        from repro.query.ast_nodes import ErrorSpec

        b = ErrorBound.from_spec(ErrorSpec(0.01, relative=True))
        assert b.relative and b.value == 0.01


class TestBoundAllocation:
    def make(self, lo=-1.0, hi=1.0, t0=0.0, t1=10.0):
        return AllocatedBound(("k",), "x", lo, hi, t0, t1)

    def test_allows(self):
        b = self.make()
        assert b.allows(0.5)
        assert b.allows(-1.0)
        assert not b.allows(1.5)

    def test_lookup_by_time(self):
        alloc = BoundAllocation()
        alloc.add(self.make(t0=0, t1=5))
        alloc.add(self.make(lo=-2, hi=2, t0=5, t1=10))
        assert alloc.lookup(("k",), "x", 3.0).hi == 1.0
        assert alloc.lookup(("k",), "x", 7.0).hi == 2.0
        assert alloc.lookup(("k",), "x", 20.0) is None

    def test_later_allocation_wins_on_overlap(self):
        alloc = BoundAllocation()
        alloc.add(self.make(t0=0, t1=10))
        alloc.add(self.make(lo=-3, hi=3, t0=0, t1=10))
        assert alloc.lookup(("k",), "x", 5.0).hi == 3.0

    def test_unknown_target(self):
        alloc = BoundAllocation()
        assert alloc.lookup(("nope",), "x", 0.0) is None

    def test_evict(self):
        alloc = BoundAllocation()
        alloc.add(self.make(t0=0, t1=5))
        alloc.add(self.make(t0=5, t1=10))
        assert alloc.evict_before(6.0) == 1
        assert len(alloc) == 1


class TestLineageStore:
    def test_observer_records_derivations(self):
        plan = ContinuousPlan()
        src = plan.add_source("S")
        f = plan.add_operator(
            ContinuousFilter(Comparison(Attr("x"), Rel.GT, Const(0.0))), [src]
        )
        plan.set_output(f)
        store = LineageStore()
        store.attach(plan)
        s = seg(0, 10, x=[-5.0, 1.0])
        store.record_source(s)
        out = plan.push("S", s)
        assert len(out) == 1
        sources = store.source_segments(out[0].seg_id)
        assert [src.seg_id for src in sources] == [s.seg_id]

    def test_transitive_closure_through_two_operators(self):
        plan = ContinuousPlan()
        src = plan.add_source("S")
        f1 = plan.add_operator(
            ContinuousFilter(Comparison(Attr("x"), Rel.GT, Const(0.0))), [src]
        )
        f2 = plan.add_operator(
            ContinuousFilter(Comparison(Attr("x"), Rel.GT, Const(1.0))), [f1]
        )
        plan.set_output(f2)
        store = LineageStore()
        store.attach(plan)
        s = seg(0, 10, x=[-5.0, 1.0])
        store.record_source(s)
        out = plan.push("S", s)
        sources = store.source_segments(out[0].seg_id)
        assert [x.seg_id for x in sources] == [s.seg_id]

    def test_join_lineage_has_two_sources(self):
        from repro.core.operators import ContinuousJoin

        plan = ContinuousPlan()
        a = plan.add_source("A")
        b = plan.add_source("B")
        j = plan.add_operator(
            ContinuousJoin(Comparison(Attr("L.x"), Rel.LT, Attr("R.y"))),
            [(a, 0), (b, 1)],
        )
        plan.set_output(j)
        store = LineageStore()
        store.attach(plan)
        sa = seg(0, 10, key=("a",), x=[0.0])
        sb = seg(0, 10, key=("b",), y=[5.0])
        store.record_source(sa)
        store.record_source(sb)
        plan.push("A", sa)
        out = plan.push("B", sb)
        sources = store.source_segments(out[0].seg_id)
        assert {x.seg_id for x in sources} == {sa.seg_id, sb.seg_id}

    def test_unknown_segment_has_no_sources(self):
        assert LineageStore().source_segments(999999) == []

    def test_evict(self):
        store = LineageStore()
        s = seg(0, 5, x=[1.0])
        store.record_source(s)
        assert store.evict_before(10.0) == 1
        assert len(store) == 0
