"""Tests for split heuristics, query inversion and the validator."""

import pytest

from repro.core.expr import Attr, Const
from repro.core.polynomial import Polynomial
from repro.core.predicate import Comparison
from repro.core.relation import Rel
from repro.core.segment import Segment
from repro.core.transform import to_continuous_plan
from repro.core.validation import (
    BoundAllocation,
    ErrorBound,
    LineageStore,
    Outcome,
    QueryInverter,
    QueryValidator,
    SplitInput,
    collect_dependencies,
    equi_split,
    get_splitter,
    gradient_split,
)
from repro.query import parse_query, plan_query


def seg(lo, hi, key=("k",), constants=None, **models):
    return Segment(
        key=key,
        t_start=lo,
        t_end=hi,
        models={k: Polynomial(v) for k, v in models.items()},
        constants=constants or {},
    )


def split_input(key, attr, coeffs, lo=0.0, hi=10.0):
    return SplitInput(key, attr, Polynomial(coeffs), lo, hi)


class TestSplitHeuristics:
    def test_equi_split_uniform(self):
        inputs = [split_input(("a",), "x", [1.0]), split_input(("b",), "x", [2.0])]
        shares = equi_split(("o",), (-1.0, 1.0), inputs)
        assert len(shares) == 2
        for share in shares:
            assert share.lo == pytest.approx(-0.5)
            assert share.hi == pytest.approx(0.5)

    def test_equi_split_dilutes_for_dependencies(self):
        inputs = [split_input(("a",), "x", [1.0])]
        shares = equi_split(("o",), (-1.0, 1.0), inputs, dependencies=1)
        assert shares[0].hi == pytest.approx(0.5)

    def test_equi_split_conservative(self):
        inputs = [split_input((str(i),), "x", [1.0]) for i in range(5)]
        shares = equi_split(("o",), (-2.0, 2.0), inputs)
        assert sum(s.hi for s in shares) <= 2.0 + 1e-12

    def test_gradient_split_weights_by_derivative(self):
        # Input "fast" has slope 3, "slow" slope 1: 3/4 vs 1/4 share.
        inputs = [
            split_input(("fast",), "x", [0.0, 3.0]),
            split_input(("slow",), "x", [0.0, 1.0]),
        ]
        shares = {s.key: s for s in gradient_split(("o",), (-4.0, 4.0), inputs)}
        assert shares[("fast",)].hi == pytest.approx(3.0)
        assert shares[("slow",)].hi == pytest.approx(1.0)

    def test_gradient_split_conservative(self):
        inputs = [
            split_input(("a",), "x", [0.0, 2.0]),
            split_input(("b",), "x", [0.0, 5.0]),
        ]
        shares = gradient_split(("o",), (-1.0, 1.0), inputs)
        assert sum(s.hi for s in shares) <= 1.0 + 1e-12

    def test_gradient_split_constant_models_fall_back_to_equi(self):
        inputs = [
            split_input(("a",), "x", [1.0]),
            split_input(("b",), "x", [9.0]),
        ]
        shares = gradient_split(("o",), (-1.0, 1.0), inputs)
        assert all(s.hi == pytest.approx(0.5) for s in shares)

    def test_empty_inputs(self):
        assert equi_split(("o",), (-1, 1), []) == []
        assert gradient_split(("o",), (-1, 1), []) == []

    def test_get_splitter(self):
        assert get_splitter("equi") is equi_split
        assert get_splitter("gradient") is gradient_split
        assert get_splitter(equi_split) is equi_split
        with pytest.raises(ValueError):
            get_splitter("nope")


class TestCollectDependencies:
    def test_inference_attrs(self):
        # S.d constrains via the predicate but is not projected —
        # the paper's inference example.
        planned = plan_query(
            parse_query(
                "select a, b as x from R join S on (R.a = S.a) where R.a < S.d"
            )
        )
        deps = collect_dependencies(planned.root)
        assert "d" in deps.inferences

    def test_translations(self):
        planned = plan_query(parse_query("select b as x from R"))
        deps = collect_dependencies(planned.root)
        assert deps.translations["x"] == frozenset({"b"})


class TestQueryInverter:
    def build(self, sql="select * from s where x > 0"):
        planned = plan_query(parse_query(sql))
        query = to_continuous_plan(planned)
        lineage = LineageStore()
        lineage.attach(query.plan)
        inverter = QueryInverter(lineage)
        return query, lineage, inverter

    def test_invert_filter_output(self):
        query, lineage, inverter = self.build()
        s = seg(0, 10, x=[5.0])
        lineage.record_source(s)
        outputs = query.push("s", s)
        allocation = BoundAllocation()
        bounds = inverter.invert_segment(
            outputs[0], ErrorBound(1.0), allocation
        )
        assert len(bounds) == 1
        assert bounds[0].key == ("k",)
        assert bounds[0].attr == "x"
        assert bounds[0].lo == pytest.approx(-1.0)
        assert allocation.lookup(("k",), "x", 5.0) is not None

    def test_relative_bound_anchored_at_output_value(self):
        query, lineage, inverter = self.build()
        s = seg(0, 10, x=[200.0])
        lineage.record_source(s)
        outputs = query.push("s", s)
        allocation = BoundAllocation()
        bounds = inverter.invert_segment(
            outputs[0], ErrorBound(0.01, relative=True), allocation
        )
        assert bounds[0].hi == pytest.approx(2.0)

    def test_join_output_splits_between_sources(self):
        planned = plan_query(
            parse_query("select * from a join b on (a.x < b.y)")
        )
        query = to_continuous_plan(planned)
        lineage = LineageStore()
        lineage.attach(query.plan)
        inverter = QueryInverter(lineage)
        sa = seg(0, 10, key=("ka",), x=[0.0])
        sb = seg(0, 10, key=("kb",), y=[5.0])
        lineage.record_source(sa)
        lineage.record_source(sb)
        query.push("a", sa)
        outputs = query.push("b", sb)
        allocation = BoundAllocation()
        bounds = inverter.invert_segment(outputs[0], ErrorBound(1.0), allocation)
        keys = {b.key for b in bounds}
        assert keys == {("ka",), ("kb",)}
        # Equi-split over two targets: half each.
        assert all(b.hi == pytest.approx(0.5) for b in bounds)

    def test_missing_lineage_raises(self):
        from repro.core.errors import BoundInversionError

        _, _, inverter = self.build()
        orphan = seg(0, 1, x=[0.0])
        with pytest.raises(BoundInversionError):
            inverter.invert_segment(orphan, ErrorBound(1.0), BoundAllocation())


class TestQueryValidator:
    def build(self, sql="select * from s where x > 0", bound=1.0, **kw):
        planned = plan_query(parse_query(sql))
        query = to_continuous_plan(planned)
        return QueryValidator(query, ErrorBound(bound), **kw)

    def test_accurate_tuple_dropped(self):
        v = self.build()
        s = seg(0, 10, x=[5.0])
        outputs = v.ingest("s", s)
        assert outputs
        out = v.validate(("k",), "x", 3.0, 5.3)  # deviation 0.3 < 0.5
        assert out is Outcome.ACCURATE
        assert v.stats.dropped == 1

    def test_violation_detected(self):
        v = self.build()
        v.ingest("s", seg(0, 10, x=[5.0]))
        out = v.validate(("k",), "x", 3.0, 9.0)
        assert out is Outcome.VIOLATION
        assert v.stats.violations == 1

    def test_single_target_receives_full_bound(self):
        v = self.build()
        v.ingest("s", seg(0, 10, x=[5.0]))
        # Single source, single attr: the whole ±1.0 budget is its share.
        assert v.validate(("k",), "x", 1.0, 5.9) is Outcome.ACCURATE
        assert v.validate(("k",), "x", 1.0, 6.2) is Outcome.VIOLATION

    def test_slack_validation_after_null(self):
        # x = 5 never passes x > 10: slack is 5.
        v = self.build("select * from s where x > 10")
        outputs = v.ingest("s", seg(0, 10, x=[5.0]))
        assert outputs == []
        # Deviation 2 < slack 5: the result cannot flip; drop.
        assert v.validate(("k",), "x", 3.0, 7.0) is Outcome.WITHIN_SLACK
        # Deviation 6 > slack: could now produce a result.
        assert v.validate(("k",), "x", 3.0, 11.0) is Outcome.VIOLATION

    def test_unknown_without_model(self):
        v = self.build()
        assert v.validate(("nope",), "x", 0.0, 1.0) is Outcome.UNKNOWN

    def test_unknown_outside_model_range(self):
        v = self.build()
        v.ingest("s", seg(0, 10, x=[5.0]))
        assert v.validate(("k",), "x", 50.0, 5.0) is Outcome.UNKNOWN

    def test_stats_accumulate(self):
        v = self.build()
        v.ingest("s", seg(0, 10, x=[5.0]))
        v.validate(("k",), "x", 1.0, 5.1)
        v.validate(("k",), "x", 2.0, 9.0)
        assert v.stats.tuples_checked == 2
        assert v.stats.accuracy_checks == 2
        assert v.stats.solver_runs == 1
        assert 0 < v.stats.drop_rate < 1

    def test_gradient_splitter_selectable(self):
        v = self.build(splitter="gradient")
        v.ingest("s", seg(0, 10, x=[5.0, 1.0]))
        assert v.stats.inversions >= 1

    def test_evict_before(self):
        v = self.build()
        v.ingest("s", seg(0, 10, x=[5.0]))
        v.evict_before(100.0)
        assert v.validate(("k",), "x", 5.0, 5.0) is Outcome.UNKNOWN
