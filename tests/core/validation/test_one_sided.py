"""Tests for the one-sided bound extension (Section IV-C's suggestion)."""

import math

import pytest

from repro.core.polynomial import Polynomial
from repro.core.segment import Segment
from repro.core.transform import to_continuous_plan
from repro.core.validation import (
    ErrorBound,
    Outcome,
    QueryValidator,
    SplitInput,
    equi_split,
    get_splitter,
    gradient_split,
    one_sided_split,
)
from repro.query import parse_query, plan_query


def split_input(key, attr, coeffs):
    return SplitInput(key, attr, Polynomial(coeffs), 0.0, 10.0)


class TestOneSidedSplitter:
    def test_upper_opens_lower_side(self):
        split = one_sided_split("upper")
        shares = split(("o",), (-1.0, 1.0), [split_input(("a",), "x", [1.0])])
        assert shares[0].lo == float("-inf")
        assert shares[0].hi == pytest.approx(1.0)

    def test_lower_opens_upper_side(self):
        split = one_sided_split("lower")
        shares = split(("o",), (-1.0, 1.0), [split_input(("a",), "x", [1.0])])
        assert shares[0].lo == pytest.approx(-1.0)
        assert shares[0].hi == float("inf")

    def test_composes_with_gradient_base(self):
        split = one_sided_split("upper", base=gradient_split)
        inputs = [
            split_input(("fast",), "x", [0.0, 3.0]),
            split_input(("slow",), "x", [0.0, 1.0]),
        ]
        shares = {s.key: s for s in split(("o",), (-4.0, 4.0), inputs)}
        assert shares[("fast",)].hi == pytest.approx(3.0)
        assert shares[("fast",)].lo == float("-inf")

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            one_sided_split("sideways")

    def test_registered_by_name(self):
        assert callable(get_splitter("one-sided-upper"))
        assert callable(get_splitter("one-sided-lower"))


class TestOneSidedValidation:
    def build(self, splitter):
        planned = plan_query(parse_query("select * from s where x > 0"))
        query = to_continuous_plan(planned)
        return QueryValidator(query, ErrorBound(1.0), splitter=splitter)

    def seg(self, value):
        return Segment(("k",), 0.0, 10.0, {"x": Polynomial([value])})

    def test_harmless_direction_never_violates(self):
        """With x > 0 satisfied, downward deviations can flip the
        result; upward ones cannot.  One-sided-lower keeps the lower
        limit and tolerates arbitrarily large upward deviations."""
        v = self.build("one-sided-lower")
        v.ingest("s", self.seg(5.0))
        # Enormous upward deviation: still fine.
        assert v.validate(("k",), "x", 1.0, 500.0) is Outcome.ACCURATE
        # Downward deviation beyond the kept bound: violation.
        assert v.validate(("k",), "x", 1.0, 3.0) is Outcome.VIOLATION

    def test_two_sided_violates_on_both(self):
        v = self.build("equi")
        v.ingest("s", self.seg(5.0))
        assert v.validate(("k",), "x", 1.0, 500.0) is Outcome.VIOLATION
        assert v.validate(("k",), "x", 1.0, 3.0) is Outcome.VIOLATION

    def test_longevity_improvement(self):
        """The paper's claim: one-sided bounds last longer.  On a drifting
        stream that only moves the harmless way, the one-sided validator
        never re-solves; the two-sided one does."""
        import numpy as np

        drifts = 5.0 + np.linspace(0.0, 10.0, 50)  # upward drift
        two_sided = self.build("equi")
        one_sided = self.build("one-sided-lower")
        for v in (two_sided, one_sided):
            v.ingest("s", self.seg(5.0))
        ts_viol = sum(
            two_sided.validate(("k",), "x", 1.0, float(x)) is Outcome.VIOLATION
            for x in drifts
        )
        os_viol = sum(
            one_sided.validate(("k",), "x", 1.0, float(x)) is Outcome.VIOLATION
            for x in drifts
        )
        assert os_viol == 0
        assert ts_viol > 0
