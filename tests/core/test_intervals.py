"""Tests for the time-interval algebra."""

import pytest

from repro.core.errors import InvalidIntervalError
from repro.core.intervals import Interval, TimeSet


class TestInterval:
    def test_rejects_empty(self):
        with pytest.raises(InvalidIntervalError):
            Interval(1.0, 1.0)
        with pytest.raises(InvalidIntervalError):
            Interval(2.0, 1.0)

    def test_rejects_nan(self):
        with pytest.raises(InvalidIntervalError):
            Interval(float("nan"), 1.0)

    def test_contains_half_open(self):
        iv = Interval(0.0, 1.0)
        assert iv.contains(0.0)
        assert iv.contains(0.5)
        assert not iv.contains(1.0)

    def test_intersect(self):
        a = Interval(0.0, 2.0)
        b = Interval(1.0, 3.0)
        assert a.intersect(b) == Interval(1.0, 2.0)
        assert a.intersect(Interval(2.0, 3.0)) is None

    def test_overlaps_excludes_touching(self):
        assert not Interval(0, 1).overlaps(Interval(1, 2))
        assert Interval(0, 1.5).overlaps(Interval(1, 2))

    def test_shift(self):
        assert Interval(0, 1).shift(2.5) == Interval(2.5, 3.5)


class TestTimeSetConstruction:
    def test_empty(self):
        ts = TimeSet.empty()
        assert ts.is_empty
        assert ts.measure == 0.0
        assert not ts

    def test_interval_constructor_empty_range(self):
        assert TimeSet.interval(3.0, 3.0).is_empty
        assert TimeSet.interval(3.0, 2.0).is_empty

    def test_merges_overlapping(self):
        ts = TimeSet(intervals=[Interval(0, 2), Interval(1, 3)])
        assert ts.intervals == (Interval(0, 3),)

    def test_merges_adjacent(self):
        ts = TimeSet(intervals=[Interval(0, 1), Interval(1, 2)])
        assert ts.intervals == (Interval(0, 2),)

    def test_keeps_disjoint(self):
        ts = TimeSet(intervals=[Interval(0, 1), Interval(2, 3)])
        assert len(ts.intervals) == 2
        assert ts.measure == pytest.approx(2.0)

    def test_point_absorbed_into_interval(self):
        ts = TimeSet(intervals=[Interval(0, 1)], points=[0.5])
        assert ts.points == ()

    def test_points_deduplicated(self):
        ts = TimeSet(points=[1.0, 1.0, 2.0])
        assert ts.points == (1.0, 2.0)

    def test_immutability(self):
        ts = TimeSet.point(1.0)
        with pytest.raises(AttributeError):
            ts.points = ()


class TestTimeSetAlgebra:
    def test_union(self):
        a = TimeSet.interval(0, 1)
        b = TimeSet.interval(2, 3) | TimeSet.point(5.0)
        u = a | b
        assert u.measure == pytest.approx(2.0)
        assert u.points == (5.0,)

    def test_intersect_intervals(self):
        a = TimeSet.interval(0, 2)
        b = TimeSet.interval(1, 3)
        assert (a & b).intervals == (Interval(1, 2),)

    def test_intersect_point_with_interval(self):
        a = TimeSet.interval(0, 2)
        p = TimeSet.point(1.0)
        assert (a & p).points == (1.0,)
        assert (a & TimeSet.point(5.0)).is_empty

    def test_intersect_points(self):
        a = TimeSet.from_points([1.0, 2.0])
        b = TimeSet.from_points([2.0, 3.0])
        assert (a & b).points == (2.0,)

    def test_intersection_empty(self):
        a = TimeSet.interval(0, 1)
        b = TimeSet.interval(2, 3)
        assert (a & b).is_empty

    def test_complement_middle(self):
        ts = TimeSet.interval(1, 2)
        comp = ts.complement(Interval(0, 3))
        assert comp.intervals == (Interval(0, 1), Interval(2, 3))

    def test_complement_of_empty_is_domain(self):
        comp = TimeSet.empty().complement(Interval(0, 3))
        assert comp.intervals == (Interval(0, 3),)

    def test_complement_of_domain_is_empty(self):
        comp = TimeSet.interval(0, 3).complement(Interval(0, 3))
        assert comp.is_empty

    def test_clip(self):
        ts = TimeSet.interval(0, 10) | TimeSet.point(20.0)
        clipped = ts.clip(5, 25)
        assert clipped.intervals == (Interval(5, 10),)
        assert clipped.points == (20.0,)

    def test_shift(self):
        ts = TimeSet.interval(0, 1) | TimeSet.point(3.0)
        shifted = ts.shift(1.5)
        assert shifted.intervals == (Interval(1.5, 2.5),)
        assert shifted.points == (4.5,)

    def test_infimum_supremum(self):
        ts = TimeSet.interval(1, 2) | TimeSet.point(0.5) | TimeSet.point(4.0)
        assert ts.infimum == 0.5
        assert ts.supremum == 4.0

    def test_infimum_of_empty_raises(self):
        with pytest.raises(ValueError):
            _ = TimeSet.empty().infimum

    def test_contains(self):
        ts = TimeSet.interval(0, 1) | TimeSet.point(2.0)
        assert ts.contains(0.5)
        assert ts.contains(2.0)
        assert not ts.contains(1.5)

    def test_pieces_iteration(self):
        ts = TimeSet.interval(0, 1) | TimeSet.point(2.0)
        assert list(ts.pieces()) == [(0.0, 1.0), (2.0, 2.0)]

    def test_equality_and_hash(self):
        a = TimeSet.interval(0, 1)
        b = TimeSet.interval(0, 1)
        assert a == b
        assert hash(a) == hash(b)

    def test_approx_equal(self):
        a = TimeSet.interval(0, 1)
        b = TimeSet.interval(0, 1 + 1e-9)
        assert a.approx_equal(b)
        assert not a.approx_equal(TimeSet.interval(0, 2))
