"""Tests for piecewise functions and envelope computation."""

import pytest

from repro.core.intervals import Interval
from repro.core.piecewise import (
    Piece,
    PiecewiseFunction,
    lower_envelope,
    upper_envelope,
)
from repro.core.polynomial import Polynomial


def piece(lo, hi, coeffs):
    return Piece(Interval(lo, hi), Polynomial(coeffs))


class TestPiecewiseFunction:
    def test_empty(self):
        f = PiecewiseFunction.empty()
        assert f.is_empty
        with pytest.raises(ValueError):
            _ = f.domain_start

    def test_rejects_overlapping_pieces(self):
        with pytest.raises(ValueError):
            PiecewiseFunction([piece(0, 2, [1.0]), piece(1, 3, [2.0])])

    def test_eval(self):
        f = PiecewiseFunction([piece(0, 1, [1.0]), piece(1, 2, [0.0, 1.0])])
        assert f(0.5) == 1.0
        assert f(1.5) == 1.5

    def test_eval_at_domain_end_uses_last_piece(self):
        f = PiecewiseFunction([piece(0, 2, [0.0, 1.0])])
        assert f(2.0) == pytest.approx(2.0)

    def test_eval_in_gap_raises(self):
        f = PiecewiseFunction([piece(0, 1, [1.0]), piece(2, 3, [2.0])])
        with pytest.raises(ValueError):
            f(1.5)

    def test_defined_at(self):
        f = PiecewiseFunction([piece(0, 1, [1.0])])
        assert f.defined_at(0.5)
        assert not f.defined_at(5.0)

    def test_restrict(self):
        f = PiecewiseFunction([piece(0, 10, [1.0])])
        r = f.restrict(2, 4)
        assert r.domain_start == 2
        assert r.domain_end == 4

    def test_splice_replaces_middle(self):
        f = PiecewiseFunction([piece(0, 10, [1.0])])
        g = f.splice(3, 6, Polynomial([5.0]))
        assert g(1.0) == 1.0
        assert g(4.0) == 5.0
        assert g(8.0) == 1.0
        assert len(g.pieces) == 3

    def test_splice_into_empty(self):
        f = PiecewiseFunction.empty().splice(0, 1, Polynomial([2.0]))
        assert f(0.5) == 2.0

    def test_splice_noop_on_empty_range(self):
        f = PiecewiseFunction([piece(0, 1, [1.0])])
        assert f.splice(5, 5, Polynomial([9.0])) is f

    def test_definite_integral_spans_pieces(self):
        f = PiecewiseFunction([piece(0, 1, [1.0]), piece(1, 2, [3.0])])
        assert f.definite_integral(0, 2) == pytest.approx(4.0)
        assert f.definite_integral(0.5, 1.5) == pytest.approx(0.5 + 1.5)

    def test_approx_equal(self):
        f = PiecewiseFunction([piece(0, 1, [1.0])])
        g = PiecewiseFunction([piece(0, 1, [1.0 + 1e-9])])
        assert f.approx_equal(g)


class TestEnvelopes:
    def test_two_crossing_lines_lower(self):
        # f(t) = t and g(t) = 2 - t cross at t = 1.
        pieces = [piece(0, 2, [0.0, 1.0]), piece(0, 2, [2.0, -1.0])]
        env = lower_envelope(pieces)
        assert env(0.5) == pytest.approx(0.5)   # t is lower before 1
        assert env(1.5) == pytest.approx(0.5)   # 2 - t after
        assert env(1.0) == pytest.approx(1.0)

    def test_two_crossing_lines_upper(self):
        pieces = [piece(0, 2, [0.0, 1.0]), piece(0, 2, [2.0, -1.0])]
        env = upper_envelope(pieces)
        assert env(0.5) == pytest.approx(1.5)
        assert env(1.5) == pytest.approx(1.5)

    def test_disjoint_domains_concatenate(self):
        pieces = [piece(0, 1, [1.0]), piece(2, 3, [2.0])]
        env = lower_envelope(pieces)
        assert env(0.5) == 1.0
        assert env(2.5) == 2.0
        assert not env.defined_at(1.5)

    def test_partial_overlap(self):
        # Constant 5 on [0, 4); constant 1 on [2, 6).
        pieces = [piece(0, 4, [5.0]), piece(2, 6, [1.0])]
        env = lower_envelope(pieces)
        assert env(1.0) == 5.0
        assert env(3.0) == 1.0
        assert env(5.0) == 1.0

    def test_quadratic_against_line(self):
        # t^2 vs 1: t^2 lower on (-1, 1).
        pieces = [piece(-2, 2, [0.0, 0.0, 1.0]), piece(-2, 2, [1.0])]
        env = lower_envelope(pieces)
        assert env(0.0) == pytest.approx(0.0)
        assert env(-1.5) == pytest.approx(1.0)
        assert env(1.5) == pytest.approx(1.0)

    def test_envelope_pointwise_property(self):
        pieces = [
            piece(0, 10, [3.0, 0.5]),
            piece(0, 10, [8.0, -0.5]),
            piece(2, 8, [1.0, 0.0, 0.1]),
        ]
        env = lower_envelope(pieces)
        for i in range(100):
            t = 0.05 + i * 0.0999
            live = [p.poly(t) for p in pieces if p.interval.contains(t)]
            if live and env.defined_at(t):
                assert env(t) == pytest.approx(min(live), abs=1e-6)

    def test_identical_pieces_merge(self):
        pieces = [piece(0, 1, [1.0]), piece(1, 2, [1.0])]
        env = lower_envelope(pieces)
        assert len(env.pieces) == 1

    def test_empty_input(self):
        assert lower_envelope([]).is_empty
