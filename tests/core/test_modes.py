"""Tests for the predictive and historical processing modes."""

import pytest

from repro.core.modes import HistoricalProcessor, PredictiveProcessor
from repro.core.validation import ErrorBound
from repro.engine.tuples import StreamTuple
from repro.query import parse_expression, parse_query, plan_query
from repro.workloads import MovingObjectConfig, MovingObjectGenerator

FILTER_SQL = "select * from objects where x > 0"
MODEL_X = {"x": parse_expression("x + vx * t")}


def tup(time, x, vx=0.0, oid="a"):
    return StreamTuple({"time": time, "id": oid, "x": x, "vx": vx})


def make_predictive(sql=FILTER_SQL, bound=1.0, horizon=10.0, **kw):
    planned = plan_query(parse_query(sql))
    return PredictiveProcessor(
        planned,
        model_exprs=MODEL_X,
        horizon=horizon,
        bound=ErrorBound(bound),
        key_fields=("id",),
        constant_fields=("id",),
        **kw,
    )


class TestPredictiveProcessor:
    def test_first_tuple_builds_model_and_predicts(self):
        proc = make_predictive()
        outputs = proc.process_tuple(tup(0.0, x=5.0, vx=1.0))
        assert proc.stats.models_built == 1
        # x = 5 + t > 0 over the whole horizon: predicted output covers it.
        assert outputs
        assert outputs[0].t_end == pytest.approx(10.0)

    def test_accurate_tuples_are_dropped(self):
        proc = make_predictive()
        proc.process_tuple(tup(0.0, x=5.0, vx=1.0))
        # Tuples exactly on the model: dropped without solver runs.
        for t in (1.0, 2.0, 3.0):
            out = proc.process_tuple(tup(t, x=5.0 + t, vx=1.0))
            assert out == []
        assert proc.stats.models_built == 1
        assert proc.stats.tuples_dropped == 3
        assert proc.stats.drop_rate == pytest.approx(0.75)

    def test_small_deviation_within_bound_dropped(self):
        proc = make_predictive(bound=1.0)
        proc.process_tuple(tup(0.0, x=5.0, vx=1.0))
        out = proc.process_tuple(tup(1.0, x=6.4, vx=1.0))  # model says 6.0
        assert out == []

    def test_violation_rebuilds_model(self):
        proc = make_predictive(bound=0.5)
        proc.process_tuple(tup(0.0, x=5.0, vx=1.0))
        out = proc.process_tuple(tup(1.0, x=9.0, vx=1.0))  # deviation 3.0
        assert proc.stats.violations == 1
        assert proc.stats.models_built == 2
        assert out  # re-solved with the new model

    def test_model_expiry_rebuilds(self):
        proc = make_predictive(horizon=1.0)
        proc.process_tuple(tup(0.0, x=5.0, vx=0.0))
        proc.process_tuple(tup(5.0, x=5.0, vx=0.0))  # past horizon
        assert proc.stats.models_built == 2

    def test_null_result_uses_slack(self):
        # x = -5 never passes x > 0; slack is 5.
        proc = make_predictive(bound=0.5)
        out = proc.process_tuple(tup(0.0, x=-5.0, vx=0.0))
        assert out == []
        # Deviations below slack: dropped even though they exceed the
        # accuracy bound (no result to be accurate about).
        assert proc.process_tuple(tup(1.0, x=-3.0, vx=0.0)) == []
        assert proc.stats.models_built == 1
        # Deviation beyond slack: could flip the (null) result; rebuild.
        proc.process_tuple(tup(2.0, x=1.0, vx=0.0))
        assert proc.stats.models_built == 2

    def test_per_key_models(self):
        proc = make_predictive()
        proc.process_tuple(tup(0.0, x=5.0, vx=0.0, oid="a"))
        proc.process_tuple(tup(0.0, x=7.0, vx=0.0, oid="b"))
        assert proc.stats.models_built == 2
        proc.process_tuple(tup(1.0, x=5.0, vx=0.0, oid="a"))
        proc.process_tuple(tup(1.0, x=7.0, vx=0.0, oid="b"))
        assert proc.stats.tuples_dropped == 2

    def test_moving_object_workload_drop_rate(self):
        """On the synthetic workload with exact models, almost every
        tuple validates against its predictive model — the essence of
        the paper's throughput gains."""
        gen = MovingObjectGenerator(
            MovingObjectConfig(
                num_objects=2, rate=200.0, tuples_per_segment=100, noise=0.0
            )
        )
        proc = make_predictive(horizon=5.0)
        for t in gen.tuples(1000):
            proc.process_tuple(t)
        assert proc.stats.drop_rate > 0.8
        assert proc.stats.models_built < 100


class TestHistoricalProcessor:
    def _tuples(self):
        gen = MovingObjectGenerator(
            MovingObjectConfig(num_objects=2, rate=200.0, tuples_per_segment=50)
        )
        return list(gen.tuples(1000))

    def test_model_fitted_once(self):
        hist = HistoricalProcessor(
            self._tuples(), attrs=("x",), tolerance=1e-6,
            key_fields=("id",), constant_fields=("id",),
        )
        assert 0 < hist.segment_count < 100

    def test_run_single_query(self):
        hist = HistoricalProcessor(
            self._tuples(), attrs=("x",), tolerance=1e-6,
            key_fields=("id",), constant_fields=("id",),
        )
        planned = plan_query(parse_query(FILTER_SQL))
        outputs = hist.run(planned)
        assert outputs

    def test_what_if_sweep_reuses_model(self):
        hist = HistoricalProcessor(
            self._tuples(), attrs=("x",), tolerance=1e-6,
            key_fields=("id",), constant_fields=("id",),
        )
        thresholds = [-500, 0, 500]
        queries = [
            plan_query(parse_query(f"select * from objects where x > {c}"))
            for c in thresholds
        ]
        results = hist.run_many(queries)
        assert len(results) == 3
        # Monotonicity: higher thresholds select less output time.
        measures = [
            sum(s.duration for s in outs) for outs in results
        ]
        assert measures[0] >= measures[1] >= measures[2]
