"""Edge-case tests across core modules (error paths, reprs, utilities)."""

import pytest

from repro.core.errors import (
    PulseError,
    QuerySyntaxError,
    SolverError,
    UnsupportedAggregateError,
)
from repro.core.polynomial import Polynomial
from repro.core.segment import Segment, resolve_constant, resolve_model


def seg(lo, hi, key=("k",), constants=None, **models):
    return Segment(
        key=key,
        t_start=lo,
        t_end=hi,
        models={k: Polynomial(v) for k, v in models.items()},
        constants=constants or {},
    )


class TestErrorHierarchy:
    def test_all_derive_from_pulse_error(self):
        for exc_type in (SolverError, UnsupportedAggregateError, QuerySyntaxError):
            assert issubclass(exc_type, PulseError)

    def test_query_syntax_error_position_in_message(self):
        err = QuerySyntaxError("bad token", line=3, column=7)
        assert "line 3" in str(err)
        assert err.line == 3 and err.column == 7

    def test_query_syntax_error_without_position(self):
        err = QuerySyntaxError("bad token")
        assert str(err) == "bad token"


class TestSegmentResolvers:
    def test_resolve_model_exact_beats_suffix(self):
        s = seg(0, 1, **{"a.x": [1.0], "x": [2.0]})
        assert resolve_model(s, "x") == Polynomial([2.0])

    def test_resolve_model_unique_suffix(self):
        s = seg(0, 1, **{"a.x": [1.0]})
        assert resolve_model(s, "x") == Polynomial([1.0])

    def test_resolve_model_ambiguous_raises(self):
        s = seg(0, 1, **{"a.x": [1.0], "b.x": [2.0]})
        with pytest.raises(KeyError):
            resolve_model(s, "x")

    def test_resolve_constant_ambiguous_equal_values(self):
        s = seg(0, 1, constants={"a.sym": "Z", "b.sym": "Z"}, x=[0.0])
        assert resolve_constant(s, "sym") == "Z"

    def test_resolve_constant_ambiguous_different_values(self):
        s = seg(0, 1, constants={"a.sym": "Z", "b.sym": "Q"}, x=[0.0])
        assert resolve_constant(s, "sym") is None
        assert resolve_constant(s, "sym", default="?") == "?"

    def test_derive_defaults_lineage_to_self(self):
        s = seg(0, 10, x=[1.0])
        out = s.derive(("k2",), 1, 2, {"x": Polynomial([5.0])})
        assert out.lineage == (s.seg_id,)

    def test_attribute_names(self):
        s = seg(0, 1, constants={"id": "a"}, x=[0.0], y=[1.0])
        assert set(s.attribute_names) == {"x", "y", "id"}

    def test_repr_compact(self):
        s = seg(0, 1, x=[0.0])
        text = repr(s)
        assert "Segment" in text and "x" in text


class TestExplainCoverage:
    def test_every_node_kind_renders(self):
        from repro.query import explain, parse_query, plan_query

        sql = """
        select id, avg(x) as m from
            (select a.id as id, a.x as x from s a join s b on (a.id <> b.id))
            [size 10 advance 2] as inner_q
        group by id having avg(x) < 5
        """
        text = explain(plan_query(parse_query(sql)).root)
        for token in ("Project", "Filter", "Aggregate", "Join", "Scan"):
            assert token in text, token

    def test_explain_indents_children(self):
        from repro.query import explain, parse_query, plan_query

        text = explain(plan_query(parse_query("select x from s where x > 0")).root)
        lines = text.splitlines()
        assert lines[0].startswith("Project")
        assert lines[1].startswith("  Filter")
        assert lines[2].startswith("    Scan")


class TestOperatorReprs:
    def test_continuous_operator_repr(self):
        from repro.core.expr import Attr, Const
        from repro.core.operators import ContinuousFilter
        from repro.core.predicate import Comparison
        from repro.core.relation import Rel

        op = ContinuousFilter(
            Comparison(Attr("x"), Rel.GT, Const(0.0)), name="my-filter"
        )
        assert "my-filter" in repr(op)

    def test_plan_repr(self):
        from repro.core.plan import ContinuousPlan

        plan = ContinuousPlan("macd")
        assert "macd" in repr(plan)

    def test_equation_system_repr(self):
        from repro.core.equation_system import EquationSystem

        assert "0 rows" in repr(EquationSystem([], None))

    def test_timeset_repr(self):
        from repro.core.intervals import TimeSet

        assert "∅" in repr(TimeSet.empty())
        assert "[0, 1)" in repr(TimeSet.interval(0, 1))


class TestPolynomialMisc:
    def test_coerce_rejects_strings(self):
        p = Polynomial([1.0])
        with pytest.raises(TypeError):
            p + "nope"

    def test_monomial_high_degree_eval(self):
        p = Polynomial.monomial(5, 2.0)
        assert p(2.0) == 64.0

    def test_bound_on_constant(self):
        assert Polynomial.constant(-3.0).bound_on(0, 1) == 3.0