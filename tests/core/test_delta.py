"""Unit tests for the delta module: LruMemo, SolutionStore, DeltaTracker.

These pin the invariants the incremental path's correctness rests on:
bounded LRU recency order with metered eviction, the solution store's
exact/covered/seam-reject lookup ladder and widest-domain store policy,
change-set classification, and the pickling contracts (memos keep
entries, stores drop them, trackers keep the per-key trailer).
"""

import pickle

from repro.core.delta import (
    SEAM_GUARD,
    DeltaTracker,
    LruMemo,
    SolutionStore,
)
from repro.core.intervals import TimeSet
from repro.core.polynomial import Polynomial
from repro.core.segment import Segment
from repro.engine.metrics import get_counter, reset_counters


import pytest


@pytest.fixture(autouse=True)
def _clean_metrics():
    reset_counters()
    yield
    reset_counters()


def seg(lo, hi, coeffs=(1.0, 2.0), key=("k",)):
    return Segment(key, lo, hi, {"x": Polynomial(list(coeffs))})


# ----------------------------------------------------------------------
# LruMemo
# ----------------------------------------------------------------------
class TestLruMemo:
    def test_put_get_round_trip(self):
        memo = LruMemo(4, "memo.test")
        memo.put("a", 1)
        assert memo.get("a") == 1
        assert memo.get("b") is None
        assert "a" in memo and len(memo) == 1

    def test_eviction_is_lru_not_fifo(self):
        memo = LruMemo(2, "memo.test")
        memo.put("a", 1)
        memo.put("b", 2)
        memo.get("a")  # refresh "a": "b" is now the LRU entry
        memo.put("c", 3)
        assert memo.get("a") == 1
        assert memo.get("b") is None
        assert memo.get("c") == 3

    def test_counters_track_hits_misses_evictions(self):
        memo = LruMemo(1, "memo.test")
        memo.put("a", 1)
        memo.get("a")
        memo.get("zzz")
        memo.put("b", 2)  # evicts "a"
        assert get_counter("memo.test.hits").value == 1
        assert get_counter("memo.test.misses").value == 1
        assert get_counter("memo.test.evictions").value == 1

    def test_overwrite_same_key_does_not_evict(self):
        memo = LruMemo(1, "memo.test")
        memo.put("a", 1)
        memo.put("a", 2)
        assert memo.get("a") == 2
        assert get_counter("memo.test.evictions").value == 0

    def test_clear_empties_without_eviction_counts(self):
        memo = LruMemo(8, "memo.test")
        for i in range(5):
            memo.put(i, i)
        memo.clear()
        assert len(memo) == 0
        assert get_counter("memo.test.evictions").value == 0

    def test_pickle_round_trip_keeps_entries(self):
        memo = LruMemo(3, "memo.test")
        memo.put("a", 1)
        memo.put("b", 2)
        clone = pickle.loads(pickle.dumps(memo))
        assert clone.get("a") == 1 and clone.get("b") == 2
        assert clone.maxsize == 3
        # The rebound clone still meters into the same counter names.
        clone.get("missing")
        assert get_counter("memo.test.misses").value == 1


# ----------------------------------------------------------------------
# SolutionStore
# ----------------------------------------------------------------------
class TestSolutionStore:
    def test_exact_domain_hit_is_verbatim(self):
        store = SolutionStore()
        sol = TimeSet.interval(1.0, 2.0)
        store.store("sig", 0.0, 4.0, sol)
        got = store.lookup("sig", 0.0, 4.0)
        assert got is sol
        assert get_counter("delta.store.hits").value == 1

    def test_covered_probe_returns_clip(self):
        store = SolutionStore()
        store.store("sig", 0.0, 10.0, TimeSet.interval(1.0, 9.0))
        got = store.lookup("sig", 2.0, 8.0)
        assert got == TimeSet.interval(2.0, 8.0)

    def test_uncovered_probe_misses(self):
        store = SolutionStore()
        store.store("sig", 0.0, 4.0, TimeSet.interval(1.0, 2.0))
        assert store.lookup("sig", 2.0, 6.0) is None
        assert store.lookup("other", 0.0, 4.0) is None
        assert get_counter("delta.store.misses").value == 2

    def test_seam_guard_rejects_near_boundary_features(self):
        store = SolutionStore()
        # Stored solution has an endpoint a hair inside the probe seam:
        # clipping it is exactly the case where the clipped set could
        # diverge from a direct solve, so the store must refuse.
        store.store("sig", 0.0, 10.0, TimeSet.interval(1.0, 5.0))
        near = 1.0 + SEAM_GUARD / 2
        assert store.lookup("sig", near, 8.0) is None
        assert get_counter("delta.store.seam_rejects").value == 1
        # Far from every stored feature the clip is safe.
        assert store.lookup("sig", 2.0, 8.0) is not None

    def test_widest_domain_wins(self):
        store = SolutionStore()
        store.store("sig", 2.0, 6.0, TimeSet.interval(3.0, 4.0))
        # Narrower domain for the same sig is ignored...
        store.store("sig", 3.0, 5.0, TimeSet.interval(3.0, 4.0))
        assert store.lookup("sig", 2.0, 6.0) is not None
        # ...a wider one replaces the entry.
        store.store("sig", 0.0, 8.0, TimeSet.interval(3.0, 4.0))
        assert store.lookup("sig", 1.0, 7.0) == TimeSet.interval(3.0, 4.0)

    def test_shifted_domain_replaces_entry(self):
        store = SolutionStore()
        store.store("sig", 0.0, 4.0, TimeSet.interval(1.0, 2.0))
        store.store("sig", 2.0, 6.0, TimeSet.interval(3.0, 4.0))
        # The old domain is gone; the new one serves.
        assert store.lookup("sig", 0.0, 4.0) is None
        assert store.lookup("sig", 2.0, 6.0) == TimeSet.interval(3.0, 4.0)

    def test_covers_is_read_only_and_counts_prime_skips(self):
        store = SolutionStore()
        store.store("sig", 0.0, 10.0, TimeSet.interval(1.0, 9.0))
        assert store.covers("sig", 2.0, 8.0)
        assert not store.covers("sig", 2.0, 12.0)
        assert not store.covers("nope", 2.0, 8.0)
        assert get_counter("delta.store.prime_skips").value == 1
        # covers() never bumps hit/miss accounting.
        assert get_counter("delta.store.hits").value == 0
        assert get_counter("delta.store.misses").value == 0

    def test_lru_eviction_bounded(self):
        store = SolutionStore(maxsize=2)
        store.store("a", 0.0, 1.0, TimeSet.empty())
        store.store("b", 0.0, 1.0, TimeSet.empty())
        store.store("c", 0.0, 1.0, TimeSet.empty())
        assert len(store) == 2
        assert store.lookup("a", 0.0, 1.0) is None
        assert get_counter("delta.store.evictions").value == 1

    def test_pickles_empty(self):
        # TimeSets and solver state are derived caches: a restored
        # runtime rebuilds them from replayed arrivals, so the store
        # ships no entries through a snapshot.
        store = SolutionStore()
        store.store("sig", 0.0, 4.0, TimeSet.interval(1.0, 2.0))
        clone = pickle.loads(pickle.dumps(store))
        assert len(clone) == 0
        assert clone.maxsize == store.maxsize
        clone.store("sig", 0.0, 4.0, TimeSet.interval(1.0, 2.0))
        assert clone.lookup("sig", 0.0, 4.0) is not None


# ----------------------------------------------------------------------
# DeltaTracker
# ----------------------------------------------------------------------
class TestDeltaTracker:
    def test_first_arrival_is_added(self):
        tracker = DeltaTracker()
        change = tracker.observe("s", seg(0.0, 2.0))
        assert change.kind == "added"
        assert change.content_changed
        assert change.retired_seg_id is None

    def test_same_content_reemission_classified(self):
        tracker = DeltaTracker()
        tracker.observe("s", seg(0.0, 2.0, coeffs=(1.0, 2.0)))
        change = tracker.observe("s", seg(2.0, 4.0, coeffs=(1.0, 2.0)))
        assert change.kind == "reemitted"
        assert not change.content_changed

    def test_new_content_is_refit(self):
        tracker = DeltaTracker()
        tracker.observe("s", seg(0.0, 2.0, coeffs=(1.0, 2.0)))
        change = tracker.observe("s", seg(2.0, 4.0, coeffs=(9.0, 9.0)))
        assert change.kind == "refit"
        assert change.content_changed

    def test_overlapping_successor_retires_predecessor(self):
        tracker = DeltaTracker()
        first = seg(0.0, 4.0)
        tracker.observe("s", first)
        change = tracker.observe("s", seg(2.0, 6.0, coeffs=(9.0, 9.0)))
        assert change.retired_seg_id == first.seg_id
        assert get_counter("delta.changes.retired").value == 1

    def test_keys_and_streams_tracked_independently(self):
        tracker = DeltaTracker()
        tracker.observe("s", seg(0.0, 2.0, key=("a",)))
        change = tracker.observe("s", seg(0.0, 2.0, key=("b",)))
        assert change.kind == "added"
        other = tracker.observe("t", seg(2.0, 4.0, key=("a",)))
        assert other.kind == "added"

    def test_classify_is_pure(self):
        tracker = DeltaTracker()
        tracker.observe("s", seg(0.0, 2.0))
        before = get_counter("delta.changes.reemitted").value
        nxt = seg(2.0, 4.0)
        first = tracker.classify("s", nxt)
        second = tracker.classify("s", nxt)
        assert first == second
        assert get_counter("delta.changes.reemitted").value == before

    def test_change_counters(self):
        tracker = DeltaTracker()
        tracker.observe("s", seg(0.0, 2.0))
        tracker.observe("s", seg(2.0, 4.0))
        tracker.observe("s", seg(4.0, 6.0, coeffs=(7.0,)))
        assert get_counter("delta.changes.added").value == 1
        assert get_counter("delta.changes.reemitted").value == 1
        assert get_counter("delta.changes.refit").value == 1

    def test_pickle_keeps_trailer(self):
        tracker = DeltaTracker()
        tracker.observe("s", seg(0.0, 2.0))
        clone = pickle.loads(pickle.dumps(tracker))
        change = clone.observe("s", seg(2.0, 4.0))
        assert change.kind == "reemitted"

    def test_reset_forgets(self):
        tracker = DeltaTracker()
        tracker.observe("s", seg(0.0, 2.0))
        tracker.reset()
        assert tracker.observe("s", seg(2.0, 4.0)).kind == "added"
