"""Tests for simultaneous equation systems (Equation (1) of the paper)."""

import numpy as np
import pytest

from repro.core.equation_system import DifferenceRow, EquationSystem
from repro.core.expr import Attr, Const
from repro.core.polynomial import Polynomial
from repro.core.predicate import And, Comparison, Not, Or
from repro.core.relation import Rel

# Figure 1's example: A.x = A.x0 + A.v t, B.y = B.v t + B.a t^2.
FIG1_MODELS = {
    "A.x": Polynomial([4.0, 1.0]),        # 4 + t
    "B.y": Polynomial([0.0, 2.0, 0.5]),   # 2t + 0.5t^2
}


def resolve(name):
    return FIG1_MODELS[name]


def system(pred):
    return EquationSystem.from_predicate(pred, resolve)


class TestConstruction:
    def test_figure1_difference_row(self):
        # A.x < B.y  ->  (A.x - B.y)(t) < 0  ->  4 + t - 2t - 0.5t^2 < 0.
        sys = system(Comparison(Attr("A.x"), Rel.LT, Attr("B.y")))
        assert len(sys.rows) == 1
        assert sys.rows[0].poly.coeffs == pytest.approx((4.0, -1.0, -0.5))
        assert sys.rows[0].rel is Rel.LT

    def test_conjunction_builds_multiple_rows(self):
        pred = And(
            Comparison(Attr("A.x"), Rel.LT, Attr("B.y")),
            Comparison(Attr("A.x"), Rel.GT, Const(0.0)),
        )
        sys = system(pred)
        assert len(sys.rows) == 2
        assert sys.is_conjunctive

    def test_coefficient_matrix_shape(self):
        pred = And(
            Comparison(Attr("A.x"), Rel.LT, Attr("B.y")),
            Comparison(Attr("A.x"), Rel.GT, Const(0.0)),
        )
        D = system(pred).coefficient_matrix()
        assert D.shape == (2, 3)
        # Row evaluation through the matrix equals row polynomial evaluation.
        t = 1.7
        tv = np.array([1.0, t, t * t])
        vals = D @ tv
        sys = system(pred)
        assert vals[0] == pytest.approx(sys.rows[0].poly(t))
        assert vals[1] == pytest.approx(sys.rows[1].poly(t))

    def test_disjunction_not_conjunctive(self):
        pred = Or(
            Comparison(Attr("A.x"), Rel.LT, Const(0.0)),
            Comparison(Attr("A.x"), Rel.GT, Const(10.0)),
        )
        assert not system(pred).is_conjunctive


class TestSolving:
    def test_figure1_solution(self):
        # 4 - t - 0.5 t^2 < 0: positive root at t = (-1 + sqrt(33)) / 1... solve:
        # 0.5t^2 + t - 4 = 0 -> t = (-1 + 3) / 1 = 2.  So solution is (2, 10).
        sys = system(Comparison(Attr("A.x"), Rel.LT, Attr("B.y")))
        sol = sys.solve(0.0, 10.0)
        assert len(sol.intervals) == 1
        assert sol.intervals[0].lo == pytest.approx(2.0)
        assert sol.intervals[0].hi == pytest.approx(10.0)

    def test_conjunction_intersects(self):
        pred = And(
            Comparison(Attr("A.x"), Rel.LT, Attr("B.y")),   # t > 2
            Comparison(Attr("B.y"), Rel.LT, Const(16.0)),   # 0.5t^2+2t-16<0: t<4
        )
        sol = system(pred).solve(0.0, 10.0)
        assert len(sol.intervals) == 1
        assert sol.intervals[0].lo == pytest.approx(2.0)
        assert sol.intervals[0].hi == pytest.approx(4.0)

    def test_disjunction_unions(self):
        pred = Or(
            Comparison(Attr("A.x"), Rel.LT, Const(5.0)),  # 4+t<5: t<1
            Comparison(Attr("A.x"), Rel.GT, Const(7.0)),  # t>3
        )
        sol = system(pred).solve(0.0, 10.0)
        assert len(sol.intervals) == 2

    def test_negation_complements(self):
        pred = Not(Comparison(Attr("A.x"), Rel.LT, Const(5.0)))
        sol = system(pred).solve(0.0, 10.0)
        assert len(sol.intervals) == 1
        assert sol.intervals[0].lo == pytest.approx(1.0)

    def test_empty_solution_means_no_output(self):
        pred = Comparison(Attr("A.x"), Rel.LT, Const(0.0))  # 4 + t < 0 never on [0,10)
        assert system(pred).solve(0.0, 10.0).is_empty

    def test_equality_yields_point(self):
        pred = Comparison(Attr("A.x"), Rel.EQ, Const(6.0))  # t = 2
        sol = system(pred).solve(0.0, 10.0)
        assert sol.points == (pytest.approx(2.0),)

    def test_empty_domain(self):
        pred = Comparison(Attr("A.x"), Rel.LT, Attr("B.y"))
        assert system(pred).solve(5.0, 5.0).is_empty

    def test_holds_at_matches_solution(self):
        pred = And(
            Comparison(Attr("A.x"), Rel.LT, Attr("B.y")),
            Comparison(Attr("B.y"), Rel.LT, Const(16.0)),
        )
        sys = system(pred)
        sol = sys.solve(0.0, 10.0)
        for t in np.linspace(0.05, 9.95, 67):
            assert sys.holds_at(t) == sol.contains(t), t


@pytest.mark.parametrize("strategy", ["gaussian", "svd"])
class TestEqualitySystem:
    def test_consistent_system_solved(self, strategy):
        # Two equations sharing root t = 2: (t - 2) = 0 and (t^2 - 4) = 0.
        rows_pred = And(
            Comparison(Attr("p1"), Rel.EQ, Const(0.0)),
            Comparison(Attr("p2"), Rel.EQ, Const(0.0)),
        )
        models = {"p1": Polynomial([-2.0, 1.0]), "p2": Polynomial([-4.0, 0.0, 1.0])}
        sys = EquationSystem.from_predicate(
            rows_pred, models.__getitem__, equality_strategy=strategy
        )
        sol = sys.solve(0.0, 10.0)
        assert sol.points == (pytest.approx(2.0),)

    def test_inconsistent_system_empty(self, strategy):
        # t - 2 = 0 and t - 3 = 0 cannot hold simultaneously.
        models = {"p1": Polynomial([-2.0, 1.0]), "p2": Polynomial([-3.0, 1.0])}
        pred = And(
            Comparison(Attr("p1"), Rel.EQ, Const(0.0)),
            Comparison(Attr("p2"), Rel.EQ, Const(0.0)),
        )
        sys = EquationSystem.from_predicate(
            pred, models.__getitem__, equality_strategy=strategy
        )
        assert sys.solve(0.0, 10.0).is_empty

    def test_identical_rows_degenerate(self, strategy):
        models = {"p1": Polynomial([-2.0, 1.0]), "p2": Polynomial([-2.0, 1.0])}
        pred = And(
            Comparison(Attr("p1"), Rel.EQ, Const(0.0)),
            Comparison(Attr("p2"), Rel.EQ, Const(0.0)),
        )
        sys = EquationSystem.from_predicate(
            pred, models.__getitem__, equality_strategy=strategy
        )
        sol = sys.solve(0.0, 10.0)
        assert sol.points == (pytest.approx(2.0),)

    def test_all_zero_rows_hold_everywhere(self, strategy):
        models = {"p": Polynomial([0.0])}
        pred = And(
            Comparison(Attr("p"), Rel.EQ, Const(0.0)),
            Comparison(Attr("p"), Rel.EQ, Const(0.0)),
        )
        sys = EquationSystem.from_predicate(
            pred, models.__getitem__, equality_strategy=strategy
        )
        assert sys.solve(0.0, 1.0).measure == pytest.approx(1.0)

    def test_three_row_overdetermined(self, strategy):
        # (t-2), (t^2-4), (t^3-8): all share root 2 only.
        models = {
            "p1": Polynomial([-2.0, 1.0]),
            "p2": Polynomial([-4.0, 0.0, 1.0]),
            "p3": Polynomial([-8.0, 0.0, 0.0, 1.0]),
        }
        pred = And(
            Comparison(Attr("p1"), Rel.EQ, Const(0.0)),
            Comparison(Attr("p2"), Rel.EQ, Const(0.0)),
            Comparison(Attr("p3"), Rel.EQ, Const(0.0)),
        )
        sys = EquationSystem.from_predicate(
            pred, models.__getitem__, equality_strategy=strategy
        )
        sol = sys.solve(-10.0, 10.0)
        assert len(sol.points) == 1
        assert sol.points[0] == pytest.approx(2.0)

    def test_unknown_strategy_rejected(self, strategy):
        with pytest.raises(Exception):
            EquationSystem([], None, equality_strategy="quantum")

    def test_all_equalities_flag(self, strategy):
        models = {"p": Polynomial([-2.0, 1.0])}
        eq = Comparison(Attr("p"), Rel.EQ, Const(0.0))
        lt = Comparison(Attr("p"), Rel.LT, Const(0.0))
        assert EquationSystem.from_predicate(eq, models.__getitem__).all_equalities
        assert not EquationSystem.from_predicate(lt, models.__getitem__).all_equalities


class TestSvdStrategy:
    """SVD-specific pre-analysis details (Section III-A equi-join path)."""

    def _system(self, models, *attrs):
        pred = None
        for attr in attrs:
            cmp = Comparison(Attr(attr), Rel.EQ, Const(0.0))
            pred = cmp if pred is None else And(pred, cmp)
        return EquationSystem.from_predicate(
            pred, models.__getitem__, equality_strategy="svd"
        )

    def test_pure_constant_row_is_inconsistent(self):
        # A row "5 = 0" has a right-singular basis supported only on the
        # constant column: the SVD pre-analysis must report inconsistency
        # without any root finding.
        models = {"c": Polynomial([5.0]), "p": Polynomial([-2.0, 1.0])}
        sys = self._system(models, "c", "p")
        assert sys.solve(-10.0, 10.0).is_empty

    def test_scale_invariance(self):
        # The same system at wildly different coefficient scales: the
        # candidate is rescaled by the matrix norm, so huge coefficients
        # must not break rank detection or root accuracy.
        for scale in (1e-6, 1.0, 1e6):
            models = {
                "p1": Polynomial([-2.0 * scale, scale]),
                "p2": Polynomial([-4.0 * scale, 0.0, scale]),
            }
            sol = self._system(models, "p1", "p2").solve(0.0, 10.0)
            assert sol.points == (pytest.approx(2.0),), scale

    def test_candidates_verified_against_all_rows(self):
        # p2's roots are ±2 but p1 only vanishes at 2: the shared
        # solution must reject -2 even when the minimal-degree candidate
        # row contains it.
        models = {
            "p1": Polynomial([-2.0, 1.0]),
            "p2": Polynomial([-4.0, 0.0, 1.0]),
        }
        sol = self._system(models, "p1", "p2").solve(-10.0, 10.0)
        assert sol.points == (pytest.approx(2.0),)

    def test_rank_deficient_duplicates_keep_all_roots(self):
        # Three copies of (t^2 - 4): rank 1, both roots survive.
        p = Polynomial([-4.0, 0.0, 1.0])
        models = {"a": p, "b": p, "c": p}
        sol = self._system(models, "a", "b", "c").solve(-10.0, 10.0)
        assert len(sol.points) == 2
        assert sol.points[0] == pytest.approx(-2.0)
        assert sol.points[1] == pytest.approx(2.0)

    def test_agrees_with_gaussian_on_random_consistent_systems(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            root = float(rng.uniform(-3.0, 3.0))
            # Two rows sharing `root`: (t - root) * q(t) for random q.
            q1 = float(rng.uniform(0.5, 2.0))
            base = Polynomial([-root, 1.0])
            models = {
                "p1": base * q1,
                "p2": base * Polynomial([float(rng.uniform(-2, 2)), 1.0]),
            }
            pred = And(
                Comparison(Attr("p1"), Rel.EQ, Const(0.0)),
                Comparison(Attr("p2"), Rel.EQ, Const(0.0)),
            )
            svd = EquationSystem.from_predicate(
                pred, models.__getitem__, equality_strategy="svd"
            ).solve(-10.0, 10.0)
            gauss = EquationSystem.from_predicate(
                pred, models.__getitem__, equality_strategy="gaussian"
            ).solve(-10.0, 10.0)
            assert len(svd.points) == len(gauss.points)
            for a, b in zip(svd.points, gauss.points):
                assert a == pytest.approx(b, abs=1e-7)


class TestSlack:
    def test_slack_zero_when_solution_touched(self):
        # Row value hits zero inside the range.
        sys = EquationSystem(
            [DifferenceRow(Polynomial([-2.0, 1.0]), Rel.LT)], None
        )
        sys2 = system(Comparison(Attr("A.x"), Rel.EQ, Const(6.0)))
        assert sys2.slack(0.0, 10.0) == pytest.approx(0.0, abs=1e-6)

    def test_slack_positive_when_far(self):
        # A.x = 4 + t vs constant 100: closest approach at t=10 is 86.
        sys = system(Comparison(Attr("A.x"), Rel.EQ, Const(100.0)))
        slack = sys.slack(0.0, 10.0)
        assert slack == pytest.approx(86.0, rel=1e-3)

    def test_slack_uses_max_norm_across_rows(self):
        pred = And(
            Comparison(Attr("A.x"), Rel.EQ, Const(100.0)),  # |4+t-100|: min 86
            Comparison(Attr("A.x"), Rel.EQ, Const(4.0)),    # |t|: min 0 at t=0
        )
        # At any t the norm is the max of the two; min over t of max is
        # attained where the curves balance - never below 86 here... at t=0:
        # max(96, 0)=96; at t=10: max(86,10)=86. So slack = 86.
        slack = system(pred).slack(0.0, 10.0)
        assert slack == pytest.approx(86.0, rel=1e-3)

    def test_slack_refines_interior_minimum(self):
        # |t^2 - 2t| over [0, 3] has minima 0 at t=0 and t=2 exactly.
        models = {"p": Polynomial([0.0, -2.0, 1.0])}
        sys = EquationSystem.from_predicate(
            Comparison(Attr("p"), Rel.EQ, Const(0.0)), models.__getitem__
        )
        assert sys.slack(0.5, 3.0) == pytest.approx(0.0, abs=1e-5)

    def test_slack_empty_rows(self):
        sys = EquationSystem([], None)
        assert sys.slack(0.0, 1.0) == 0.0
