"""Tests for the query transform wrapper (TransformedQuery)."""

import pytest

from repro.core.errors import PlanError
from repro.core.polynomial import Polynomial
from repro.core.segment import Segment
from repro.core.transform import to_continuous_plan
from repro.query import parse_query, plan_query


def transformed(sql):
    return to_continuous_plan(plan_query(parse_query(sql)))


def seg(lo, hi, value, key=("k",)):
    return Segment(key, lo, hi, {"x": Polynomial([value])})


class TestSamplePeriodInference:
    def test_explicit_sample_period_wins(self):
        q = transformed(
            "select avg(x) as m from s [size 4 advance 2] sample period 0.5"
        )
        assert q.sample_period == 0.5
        assert q.effective_sample_period == 0.5

    def test_inferred_from_aggregate_slide(self):
        q = transformed("select avg(x) as m from s [size 4 advance 2]")
        assert q.sample_period is None
        assert q.inferred_period == 2.0
        assert q.effective_sample_period == 2.0

    def test_smallest_slide_wins(self):
        q = transformed(
            "select a.m - b.m as d from "
            "(select avg(x) as m from s [size 4 advance 2]) as a join "
            "(select avg(x) as m from s [size 8 advance 4]) as b "
            "on (a.m < b.m)"
        )
        assert q.inferred_period == 2.0

    def test_selective_query_has_no_inferred_rate(self):
        q = transformed("select * from s where x > 0")
        assert q.effective_sample_period is None


class TestMaterialize:
    def test_aggregate_outputs_sampled_on_slide_grid(self):
        q = transformed("select avg(x) as m from s [size 2 advance 1]")
        outputs = q.push("s", seg(0, 10, 3.0))
        rows = q.materialize(outputs)
        assert rows, "aggregate must produce sampled rows"
        times = sorted(r["time"] for r in rows)
        # Samples fall on the slide grid, starting once the window fills.
        for t in times:
            assert t == pytest.approx(round(t))
        for r in rows:
            assert r["m"] == pytest.approx(3.0)  # the average of a constant 3

    def test_materialize_without_rate_raises(self):
        q = transformed("select * from s where x > 0")
        outputs = q.push("s", seg(0, 10, 5.0))
        with pytest.raises(PlanError):
            q.materialize(outputs)

    def test_materialize_with_explicit_rate(self):
        q = transformed("select * from s where x > 0 sample period 2.5")
        outputs = q.push("s", seg(0, 10, 5.0))
        rows = q.materialize(outputs)
        assert [r["time"] for r in rows] == [0.0, 2.5, 5.0, 7.5]


class TestPushWiring:
    def test_unknown_stream_raises(self):
        q = transformed("select * from s where x > 0")
        with pytest.raises(PlanError):
            q.push("other", seg(0, 1, 1.0))

    def test_reset_clears_state(self):
        q = transformed("select avg(x) as m from s [size 2 advance 1]")
        q.push("s", seg(0, 10, 3.0))
        q.reset()
        # After reset the aggregate starts fresh: same input yields the
        # same outputs again (state did not accumulate).
        out = q.push("s", seg(0, 10, 3.0))
        assert out
