"""Tests for the interval index and indexed segment buffer."""

import pytest

from repro.core.polynomial import Polynomial
from repro.core.segment import Segment, SegmentBuffer
from repro.core.segment_index import IndexedSegmentBuffer, IntervalIndex


def seg(key, lo, hi, value=0.0):
    return Segment((key,), lo, hi, {"x": Polynomial([value])})


class TestIntervalIndex:
    def test_rejects_bad_cell_width(self):
        with pytest.raises(ValueError):
            IntervalIndex(cell_width=0.0)

    def test_insert_and_query(self):
        idx = IntervalIndex(cell_width=1.0)
        a = seg("a", 0.0, 2.5)
        b = seg("b", 5.0, 6.0)
        idx.insert(a)
        idx.insert(b)
        assert len(idx) == 2
        hits = list(idx.overlapping(2.0, 5.5))
        assert {s.seg_id for s in hits} == {a.seg_id, b.seg_id}
        assert list(idx.overlapping(3.0, 4.0)) == []

    def test_no_duplicates_for_multi_cell_segments(self):
        idx = IntervalIndex(cell_width=0.5)
        a = seg("a", 0.0, 5.0)  # spans 10 cells
        idx.insert(a)
        assert len(list(idx.overlapping(0.0, 5.0))) == 1

    def test_remove(self):
        idx = IntervalIndex(cell_width=1.0)
        a = seg("a", 0.0, 2.0)
        idx.insert(a)
        assert idx.remove(a)
        assert len(idx) == 0
        assert not idx.remove(a)

    def test_evict_before(self):
        idx = IntervalIndex(cell_width=1.0)
        idx.insert(seg("a", 0.0, 1.0))
        idx.insert(seg("b", 2.0, 3.0))
        assert idx.evict_before(1.5) == 1
        assert len(idx) == 1

    def test_boundary_query_half_open(self):
        idx = IntervalIndex(cell_width=1.0)
        idx.insert(seg("a", 0.0, 2.0))
        # Touching at the boundary is not overlap.
        assert list(idx.overlapping(2.0, 3.0)) == []

    def test_negative_times(self):
        idx = IntervalIndex(cell_width=1.0)
        a = seg("a", -3.5, -1.0)
        idx.insert(a)
        assert len(list(idx.overlapping(-2.0, 0.0))) == 1


class TestIndexedSegmentBuffer:
    def test_matches_plain_buffer_on_random_workload(self):
        import random

        rng = random.Random(6)
        plain = SegmentBuffer()
        indexed = IndexedSegmentBuffer(cell_width=2.0)
        for i in range(200):
            key = f"k{rng.randrange(10)}"
            lo = rng.uniform(0, 100)
            s = seg(key, lo, lo + rng.uniform(0.5, 8.0), value=float(i))
            plain.insert(s)
            indexed.insert(s)
        for _ in range(50):
            lo = rng.uniform(0, 100)
            hi = lo + rng.uniform(0.5, 15.0)
            a = {(s.key, s.t_start, s.t_end) for s in plain.overlapping(lo, hi)}
            b = {(s.key, s.t_start, s.t_end) for s in indexed.overlapping(lo, hi)}
            assert a == b, (lo, hi)

    def test_update_semantics_preserved(self):
        buf = IndexedSegmentBuffer(cell_width=1.0)
        buf.insert(seg("a", 0.0, 10.0, value=1.0))
        buf.insert(seg("a", 5.0, 15.0, value=2.0))
        segs = sorted(buf.segments(("a",)), key=lambda s: s.t_start)
        assert [(s.t_start, s.t_end) for s in segs] == [(0.0, 5.0), (5.0, 15.0)]
        # The index reflects the trimmed predecessor.
        hits = list(buf.overlapping(6.0, 7.0))
        assert len(hits) == 1
        assert hits[0].model("x") == Polynomial([2.0])

    def test_per_key_query(self):
        buf = IndexedSegmentBuffer()
        buf.insert(seg("a", 0.0, 5.0))
        buf.insert(seg("b", 0.0, 5.0))
        assert len(list(buf.overlapping(0.0, 5.0, key=("a",)))) == 1

    def test_evict(self):
        buf = IndexedSegmentBuffer()
        buf.insert(seg("a", 0.0, 1.0))
        buf.insert(seg("a", 1.0, 2.0))
        buf.evict_before(1.5)
        assert len(buf) == 1
        assert buf.watermark == 1.5

    def test_clear(self):
        buf = IndexedSegmentBuffer()
        buf.insert(seg("a", 0.0, 1.0))
        buf.clear()
        assert len(buf) == 0
        assert list(buf.overlapping(0.0, 1.0)) == []


class TestIndexedJoin:
    def test_join_results_identical_with_and_without_index(self):
        from repro.core.expr import Attr
        from repro.core.operators import ContinuousJoin
        from repro.core.predicate import Comparison
        from repro.core.relation import Rel
        import random

        rng = random.Random(8)
        pred = Comparison(Attr("L.x"), Rel.LT, Attr("R.x"))
        plain = ContinuousJoin(pred, window=5.0)
        indexed = ContinuousJoin(pred, window=5.0, index_cell_width=2.0)
        results_plain, results_indexed = [], []
        t = 0.0
        for i in range(120):
            t += rng.uniform(0.1, 0.5)
            s = seg(f"k{i % 6}", t, t + rng.uniform(0.5, 3.0), value=rng.uniform(-10, 10))
            port = i % 2
            results_plain += plain.process(s, port)
            results_indexed += indexed.process(s, port)
        key = lambda o: (o.key, round(o.t_start, 9), round(o.t_end, 9))
        assert sorted(map(key, results_plain)) == sorted(map(key, results_indexed))
