"""Unit tests for the bounded LRU solve cache and its metrics wiring."""

import math

import pytest

from repro.core.batch_solver import SOLVER_CONFIG, solve_tasks, solver_mode
from repro.core.intervals import TimeSet
from repro.core.polynomial import Polynomial
from repro.core.relation import Rel
from repro.core.solve_cache import (
    SolveCache,
    global_solve_cache,
    quantize,
    reset_global_solve_cache,
)
from repro.engine.metrics import reset_counters

COUNTERS = ("solve_cache.hits", "solve_cache.misses", "solve_cache.evictions")


@pytest.fixture(autouse=True)
def fresh_cache_state():
    reset_counters(*COUNTERS)
    reset_global_solve_cache()
    yield
    reset_counters(*COUNTERS)
    reset_global_solve_cache()


class TestQuantize:
    def test_exact_mode_is_identity_for_nonzero(self):
        for v in (1.0, -3.5, 1e-300, math.pi, math.inf, -math.inf):
            assert quantize(v, 0) == v

    def test_negative_zero_canonicalized(self):
        q = quantize(-0.0, 0)
        assert q == 0.0 and math.copysign(1.0, q) == 1.0

    def test_masking_collapses_nearby_floats(self):
        a = 1.0
        b = math.nextafter(1.0, 2.0)
        assert quantize(a, 0) != quantize(b, 0)
        assert quantize(a, 4) == quantize(b, 4)

    def test_masking_keeps_distant_floats_apart(self):
        assert quantize(1.0, 8) != quantize(1.5, 8)

    def test_nonfinite_passthrough(self):
        assert quantize(math.inf, 16) == math.inf
        assert math.isnan(quantize(math.nan, 16))


class TestSolveCache:
    def test_put_get_round_trip(self):
        cache = SolveCache(maxsize=4)
        key = cache.key(Polynomial([1.0, 2.0]), Rel.LT, 0.0, 1.0)
        value = TimeSet.interval(0.0, 0.5)
        cache.put(key, value)
        assert cache.get(key) is value
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_counts(self):
        cache = SolveCache(maxsize=4)
        assert cache.get(("nope",)) is None
        assert cache.misses == 1 and cache.hits == 0

    def test_capacity_bound_and_eviction_order(self):
        cache = SolveCache(maxsize=2)
        cache.put("a", TimeSet.empty())
        cache.put("b", TimeSet.empty())
        cache.put("c", TimeSet.empty())
        assert len(cache) == 2
        assert "a" not in cache and "b" in cache and "c" in cache
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = SolveCache(maxsize=2)
        cache.put("a", TimeSet.empty())
        cache.put("b", TimeSet.empty())
        cache.get("a")  # "b" is now least recently used
        cache.put("c", TimeSet.empty())
        assert "a" in cache and "b" not in cache

    def test_signed_zero_keys_collide(self):
        cache = SolveCache(maxsize=4)
        k1 = cache.key(Polynomial([0.0, 1.0]), Rel.LT, -0.0, 1.0)
        k2 = cache.key(Polynomial([-0.0, 1.0]), Rel.LT, 0.0, 1.0)
        assert k1 == k2

    def test_quantized_keys_collide(self):
        cache = SolveCache(maxsize=4, mantissa_bits=8)
        p1 = Polynomial([1.0, 1.0])
        p2 = Polynomial([math.nextafter(1.0, 2.0), 1.0])
        assert cache.key(p1, Rel.LT, 0.0, 1.0) == cache.key(p2, Rel.LT, 0.0, 1.0)

    def test_distinct_relations_do_not_collide(self):
        cache = SolveCache(maxsize=4)
        p = Polynomial([1.0, 1.0])
        assert cache.key(p, Rel.LT, 0.0, 1.0) != cache.key(p, Rel.GE, 0.0, 1.0)

    def test_stats_and_clear(self):
        cache = SolveCache(maxsize=4)
        cache.put("a", TimeSet.empty())
        cache.get("a")
        cache.get("b")
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        cache.clear()
        assert len(cache) == 0

    def test_rejects_degenerate_maxsize(self):
        with pytest.raises(ValueError):
            SolveCache(maxsize=0)


class TestGlobalCacheWiring:
    def test_solve_tasks_populates_and_hits(self):
        tasks = [
            (Polynomial([-2.0, 1.0]), Rel.LT, 0.0, 10.0),
            (Polynomial([-4.0, 0.0, 1.0]), Rel.GE, 0.0, 10.0),
        ]
        with solver_mode("batch"):
            cold = solve_tasks(tasks)
            cache = global_solve_cache()
            assert cache.misses == len(tasks) and cache.hits == 0
            warm = solve_tasks(tasks)
            assert cache.hits == len(tasks)
        assert cold == warm

    def test_intra_batch_duplicates_hit_once_solved(self):
        task = (Polynomial([-2.0, 1.0]), Rel.LT, 0.0, 10.0)
        with solver_mode("batch"):
            a, b = solve_tasks([task, task])
            cache = global_solve_cache()
        assert a == b
        # The duplicate never reaches the kernel twice: one miss fills
        # the entry the second task reads.
        assert cache.misses + cache.hits == 2
        assert cache.misses == 1

    def test_scalar_mode_bypasses_cache(self):
        task = (Polynomial([-2.0, 1.0]), Rel.LT, 0.0, 10.0)
        with solver_mode("scalar"):
            solve_tasks([task])
            solve_tasks([task])
            cache = global_solve_cache()
        assert cache.hits == 0 and cache.misses == 0

    def test_global_cache_tracks_config(self):
        first = global_solve_cache()
        saved = SOLVER_CONFIG.cache_size
        try:
            SOLVER_CONFIG.cache_size = saved + 1
            second = global_solve_cache()
        finally:
            SOLVER_CONFIG.cache_size = saved
        assert second is not first
        assert second.maxsize == saved + 1
