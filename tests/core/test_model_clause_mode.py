"""Tests for declarative MODEL clauses driving predictive processing.

Figure 1's syntax end to end: models declared in the query text, the
predictive processor built straight from the planned query.
"""

import pytest

from repro.core.errors import PlanError
from repro.core.modes import PredictiveProcessor
from repro.core.validation import ErrorBound
from repro.engine.tuples import StreamTuple
from repro.query import parse_query, plan_query

FIG1_QUERY = """
select * from objects MODEL objects.x = objects.x + objects.v * t
where x > 0
error within 5 absolute
"""


def tup(time, x, v, oid="a"):
    return StreamTuple({"time": time, "id": oid, "x": x, "v": v})


class TestFromQuery:
    def make(self, **kw):
        planned = plan_query(parse_query(FIG1_QUERY))
        return PredictiveProcessor.from_query(
            planned, horizon=10.0, key_fields=("id",),
            constant_fields=("id",), **kw,
        )

    def test_model_extracted_from_query_text(self):
        proc = self.make()
        assert set(proc.model_exprs) == {"x"}
        assert {"x", "v", "t"} <= {
            a.split(".")[-1] for a in proc.model_exprs["x"].attributes()
        }

    def test_bound_defaults_to_error_within(self):
        proc = self.make()
        assert proc.validator.bound.value == 5.0
        assert not proc.validator.bound.relative

    def test_explicit_bound_overrides(self):
        proc = self.make(bound=ErrorBound(1.0))
        assert proc.validator.bound.value == 1.0

    def test_prediction_uses_declared_model(self):
        proc = self.make()
        outputs = proc.process_tuple(tup(0.0, x=-20.0, v=4.0))
        # x(t) = -20 + 4t > 0 from t = 5 within the 10 s horizon.
        assert len(outputs) == 1
        assert outputs[0].t_start == pytest.approx(5.0)
        assert outputs[0].t_end == pytest.approx(10.0)

    def test_validation_against_declared_model(self):
        proc = self.make()
        proc.process_tuple(tup(0.0, x=-20.0, v=4.0))
        # On-model tuple at t=2: x = -12.
        assert proc.process_tuple(tup(2.0, x=-12.0, v=4.0)) == []
        assert proc.stats.tuples_dropped == 1

    def test_query_without_model_clause_rejected(self):
        planned = plan_query(parse_query("select * from s where x > 0"))
        with pytest.raises(PlanError):
            PredictiveProcessor.from_query(planned, horizon=1.0)

    def test_query_without_bound_requires_explicit(self):
        planned = plan_query(
            parse_query(
                "select * from s MODEL s.x = s.x + s.v * t where x > 0"
            )
        )
        with pytest.raises(ValueError):
            PredictiveProcessor.from_query(planned, horizon=1.0)
        proc = PredictiveProcessor.from_query(
            planned, horizon=1.0, bound=ErrorBound(1.0)
        )
        assert proc.validator.bound.value == 1.0

    def test_quadratic_model_clause(self):
        planned = plan_query(
            parse_query(
                "select * from b MODEL b.y = b.v * t + b.a * t^2 "
                "where y > 10 error within 1 absolute"
            )
        )
        proc = PredictiveProcessor.from_query(
            planned, horizon=10.0, key_fields=("id",)
        )
        outputs = proc.process_tuple(
            StreamTuple({"time": 0.0, "id": "b1", "v": 1.0, "a": 0.5})
        )
        # y(t) = t + 0.5 t^2 > 10 -> t > (-1 + sqrt(21)): ~3.58.
        assert len(outputs) == 1
        assert outputs[0].t_start == pytest.approx(3.5826, abs=1e-3)
