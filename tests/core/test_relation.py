"""Tests for the relational comparison enum."""

import pytest

from repro.core.relation import Rel


class TestHolds:
    def test_lt(self):
        assert Rel.LT.holds(-1.0)
        assert not Rel.LT.holds(0.0)
        assert not Rel.LT.holds(1.0)

    def test_le(self):
        assert Rel.LE.holds(-1.0)
        assert Rel.LE.holds(0.0)
        assert not Rel.LE.holds(1.0)

    def test_eq(self):
        assert Rel.EQ.holds(0.0)
        assert not Rel.EQ.holds(1e-3)

    def test_eq_with_tolerance(self):
        assert Rel.EQ.holds(1e-3, tol=1e-2)
        assert not Rel.EQ.holds(1e-1, tol=1e-2)

    def test_ne(self):
        assert Rel.NE.holds(0.5)
        assert not Rel.NE.holds(0.0)

    def test_ge_gt(self):
        assert Rel.GE.holds(0.0)
        assert Rel.GT.holds(0.1)
        assert not Rel.GT.holds(0.0)

    def test_tolerance_widens_inequalities(self):
        # A value of -0.5 with tol 1 satisfies GE (it is "close enough").
        assert Rel.GE.holds(-0.5, tol=1.0)
        assert not Rel.LT.holds(-0.5, tol=1.0)


class TestStructure:
    def test_flip_roundtrip(self):
        for rel in Rel:
            assert rel.flip().flip() is rel

    def test_flip_is_consistent_with_holds(self):
        # x R y  <=>  y flip(R) x, i.e. v R 0 <=> -v flip(R) 0.
        for rel in Rel:
            for v in (-2.0, 0.0, 3.0):
                assert rel.holds(v) == rel.flip().holds(-v)

    def test_negate_partitions(self):
        for rel in Rel:
            for v in (-1.0, 0.0, 1.0):
                assert rel.holds(v) != rel.negate().holds(v)

    def test_from_symbol(self):
        assert Rel.from_symbol("<") is Rel.LT
        assert Rel.from_symbol("!=") is Rel.NE
        assert Rel.from_symbol("<>") is Rel.NE
        assert Rel.from_symbol("==") is Rel.EQ

    def test_from_symbol_rejects_garbage(self):
        with pytest.raises(ValueError):
            Rel.from_symbol("~")

    def test_includes_equality(self):
        assert Rel.LE.includes_equality
        assert Rel.GE.includes_equality
        assert Rel.EQ.includes_equality
        assert not Rel.LT.includes_equality
        assert not Rel.NE.includes_equality
