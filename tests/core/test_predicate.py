"""Tests for predicate trees and their normalization rewrites."""

import pytest

from repro.core.errors import PredicateError
from repro.core.expr import Abs, Attr, Const, Pow, Sqrt, Sub
from repro.core.predicate import (
    FALSE,
    TRUE,
    And,
    Comparison,
    Literal,
    Not,
    Or,
    normalize,
)
from repro.core.relation import Rel


def cmp(left, rel, right):
    return Comparison(left, rel, right)


X = Attr("x")
ENV_POS = {"x": 5.0}
ENV_NEG = {"x": -5.0}
ENV_ZERO = {"x": 0.0}


class TestEvaluation:
    def test_comparison(self):
        p = cmp(X, Rel.GT, Const(0.0))
        assert p.evaluate(ENV_POS)
        assert not p.evaluate(ENV_NEG)

    def test_and_or_not(self):
        p = And(cmp(X, Rel.GT, Const(-10.0)), cmp(X, Rel.LT, Const(0.0)))
        assert p.evaluate(ENV_NEG)
        assert not p.evaluate(ENV_POS)
        q = Or(cmp(X, Rel.GT, Const(1.0)), cmp(X, Rel.LT, Const(-1.0)))
        assert q.evaluate(ENV_POS) and q.evaluate(ENV_NEG)
        assert not q.evaluate(ENV_ZERO)
        assert Not(q).evaluate(ENV_ZERO)

    def test_literals(self):
        assert TRUE.evaluate({}) and not FALSE.evaluate({})

    def test_and_flattens_nested(self):
        p = And(And(TRUE, TRUE), TRUE)
        assert len(p.children) == 3

    def test_atoms_iteration(self):
        p = And(cmp(X, Rel.GT, Const(0.0)), Or(cmp(X, Rel.LT, Const(5.0)), TRUE))
        assert len(list(p.atoms())) == 2


class TestNormalizeBooleans:
    def test_not_pushed_into_comparison(self):
        p = normalize(Not(cmp(X, Rel.LT, Const(0.0))))
        assert isinstance(p, Comparison)
        assert p.rel is Rel.GE

    def test_double_negation(self):
        inner = cmp(X, Rel.LT, Const(0.0))
        assert normalize(Not(Not(inner))) == inner

    def test_de_morgan(self):
        p = normalize(Not(And(cmp(X, Rel.LT, Const(0.0)), cmp(X, Rel.GT, Const(-5.0)))))
        assert isinstance(p, Or)
        assert {c.rel for c in p.children} == {Rel.GE, Rel.LE}

    def test_constant_folding_and(self):
        assert normalize(And(TRUE, cmp(X, Rel.LT, Const(0.0)), TRUE)) == cmp(
            X, Rel.LT, Const(0.0)
        )
        assert normalize(And(FALSE, cmp(X, Rel.LT, Const(0.0)))) == FALSE

    def test_constant_folding_or(self):
        assert normalize(Or(TRUE, cmp(X, Rel.LT, Const(0.0)))) == TRUE
        assert normalize(Or(FALSE, FALSE)) == FALSE

    def test_empty_and_is_true(self):
        assert normalize(And()) == TRUE


class TestSqrtRewrite:
    def test_lt_squares_constant(self):
        p = normalize(cmp(Sqrt(X), Rel.LT, Const(3.0)))
        assert isinstance(p, Comparison)
        assert p.rel is Rel.LT
        assert p.right == Const(9.0)

    def test_negative_bound_statically_resolved(self):
        assert normalize(cmp(Sqrt(X), Rel.LT, Const(-1.0))) == FALSE
        assert normalize(cmp(Sqrt(X), Rel.GT, Const(-1.0))) == TRUE

    def test_sqrt_on_right_side_is_flipped(self):
        p = normalize(cmp(Const(3.0), Rel.GT, Sqrt(X)))
        assert isinstance(p, Comparison)
        assert p.left == X
        assert p.rel is Rel.LT

    def test_sqrt_against_non_constant_rejected(self):
        with pytest.raises(PredicateError):
            normalize(cmp(Sqrt(X), Rel.LT, Attr("y")))

    def test_semantic_equivalence(self):
        # For x >= 0, sqrt(x) < 2  <=>  x < 4.
        orig = cmp(Sqrt(X), Rel.LT, Const(2.0))
        rewritten = normalize(orig)
        for x in (0.0, 1.0, 3.9, 4.0, 10.0):
            env = {"x": x}
            assert orig.evaluate(env) == rewritten.evaluate(env)


class TestAbsRewrite:
    def test_lt_becomes_band(self):
        p = normalize(cmp(Abs(X), Rel.LT, Const(2.0)))
        assert isinstance(p, And)
        assert len(p.children) == 2

    def test_gt_becomes_disjunction(self):
        p = normalize(cmp(Abs(X), Rel.GT, Const(2.0)))
        assert isinstance(p, Or)

    def test_eq_becomes_two_points(self):
        p = normalize(cmp(Abs(X), Rel.EQ, Const(2.0)))
        assert isinstance(p, Or)
        assert all(c.rel is Rel.EQ for c in p.children)

    def test_negative_bound(self):
        assert normalize(cmp(Abs(X), Rel.LT, Const(-3.0))) == FALSE
        assert normalize(cmp(Abs(X), Rel.NE, Const(-3.0))) == TRUE

    @pytest.mark.parametrize("rel", [Rel.LT, Rel.LE, Rel.GT, Rel.GE, Rel.EQ, Rel.NE])
    def test_semantic_equivalence(self, rel):
        orig = cmp(Abs(X), rel, Const(2.0))
        rewritten = normalize(orig)
        for x in (-3.0, -2.0, -1.0, 0.0, 1.0, 2.0, 3.0):
            env = {"x": x}
            assert orig.evaluate(env) == rewritten.evaluate(env), (rel, x)

    def test_paper_collision_predicate(self):
        """The intro's collision query: abs(distance(...)) < c, with
        distance expressed via pow — normalizes to polynomial atoms."""
        dist_sq = Pow(Sub(Attr("R.x"), Attr("S.x")), 2)
        pred = cmp(Abs(Sqrt(dist_sq)), Rel.LT, Const(10.0))
        p = normalize(pred)
        # sqrt >= 0 so abs band's negative side is vacuous but still
        # polynomial; all atoms must be sqrt/abs-free.
        for atom in p.atoms():
            assert not isinstance(atom.left, (Sqrt, Abs))
            assert not isinstance(atom.right, (Sqrt, Abs))
