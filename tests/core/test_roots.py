"""Tests for root finding and sign-test solving."""

import math

import pytest

from repro.core.errors import SolverError
from repro.core.polynomial import Polynomial
from repro.core.relation import Rel
from repro.core.roots import brent, newton, real_roots, solve_relation


class TestNewton:
    def test_converges_to_sqrt2(self):
        root = newton(lambda x: x * x - 2, lambda x: 2 * x, 1.0)
        assert root == pytest.approx(math.sqrt(2))

    def test_zero_derivative_returns_none(self):
        assert newton(lambda x: x * x + 1, lambda x: 2 * x, 0.0) is None


class TestBrent:
    def test_simple_root(self):
        root = brent(lambda x: x * x - 2, 0.0, 2.0)
        assert root == pytest.approx(math.sqrt(2), abs=1e-10)

    def test_endpoint_roots(self):
        assert brent(lambda x: x, 0.0, 1.0) == 0.0
        assert brent(lambda x: x - 1, 0.0, 1.0) == 1.0

    def test_requires_bracket(self):
        with pytest.raises(SolverError):
            brent(lambda x: x * x + 1, -1.0, 1.0)

    def test_nasty_flat_function(self):
        # f has a very flat region; Brent still converges.
        f = lambda x: (x - 0.3) ** 3
        assert brent(f, 0.0, 1.0) == pytest.approx(0.3, abs=1e-4)


class TestRealRoots:
    def test_constant_has_no_roots(self):
        assert real_roots(Polynomial([5.0])) == []

    def test_zero_polynomial_raises(self):
        with pytest.raises(SolverError):
            real_roots(Polynomial([0.0]))

    def test_linear(self):
        assert real_roots(Polynomial([-2.0, 1.0])) == [pytest.approx(2.0)]

    def test_quadratic_two_roots(self):
        # (t-1)(t-3) = 3 - 4t + t^2
        roots = real_roots(Polynomial([3.0, -4.0, 1.0]))
        assert roots == [pytest.approx(1.0), pytest.approx(3.0)]

    def test_quadratic_no_real_roots(self):
        assert real_roots(Polynomial([1.0, 0.0, 1.0])) == []

    def test_quadratic_double_root_deduplicated(self):
        # (t-2)^2
        roots = real_roots(Polynomial([4.0, -4.0, 1.0]))
        assert len(roots) == 1
        assert roots[0] == pytest.approx(2.0)

    def test_quadratic_cancellation_stability(self):
        # Roots 1e-8 and 1e8: classic cancellation case.
        p = Polynomial([1.0, -(1e8 + 1e-8), 1.0])
        roots = real_roots(p)
        assert roots[0] == pytest.approx(1e-8, rel=1e-6)
        assert roots[1] == pytest.approx(1e8, rel=1e-9)

    def test_cubic(self):
        # (t+1)t(t-2) = t^3 - t^2 - 2t
        roots = real_roots(Polynomial([0.0, -2.0, -1.0, 1.0]))
        assert roots == [
            pytest.approx(-1.0),
            pytest.approx(0.0, abs=1e-9),
            pytest.approx(2.0),
        ]

    def test_quintic_mixed_roots(self):
        # (t^2+1)(t-1)(t-2)(t-3): only three real roots.
        p = (
            Polynomial([1.0, 0.0, 1.0])
            * Polynomial([-1.0, 1.0])
            * Polynomial([-2.0, 1.0])
            * Polynomial([-3.0, 1.0])
        )
        roots = real_roots(p)
        assert len(roots) == 3
        for got, want in zip(roots, [1.0, 2.0, 3.0]):
            assert got == pytest.approx(want, abs=1e-7)

    def test_domain_filtering(self):
        p = Polynomial([3.0, -4.0, 1.0])  # roots 1, 3
        assert real_roots(p, 0.0, 2.0) == [pytest.approx(1.0)]
        assert real_roots(p, 2.0, 4.0) == [pytest.approx(3.0)]
        assert real_roots(p, 1.5, 2.5) == []


class TestSolveRelation:
    def test_linear_lt(self):
        # t - 5 < 0 on [0, 10) -> [0, 5)
        sol = solve_relation(Polynomial([-5.0, 1.0]), Rel.LT, 0.0, 10.0)
        assert len(sol.intervals) == 1
        assert sol.intervals[0].lo == pytest.approx(0.0)
        assert sol.intervals[0].hi == pytest.approx(5.0)

    def test_linear_gt(self):
        sol = solve_relation(Polynomial([-5.0, 1.0]), Rel.GT, 0.0, 10.0)
        assert sol.intervals[0].lo == pytest.approx(5.0)
        assert sol.intervals[0].hi == pytest.approx(10.0)

    def test_equality_gives_points(self):
        sol = solve_relation(Polynomial([-5.0, 1.0]), Rel.EQ, 0.0, 10.0)
        assert sol.intervals == ()
        assert sol.points == (pytest.approx(5.0),)

    def test_equality_no_solution(self):
        sol = solve_relation(Polynomial([1.0, 0.0, 1.0]), Rel.EQ, -10, 10)
        assert sol.is_empty

    def test_zero_polynomial_le_everywhere(self):
        sol = solve_relation(Polynomial([0.0]), Rel.LE, 0.0, 1.0)
        assert sol.measure == pytest.approx(1.0)

    def test_zero_polynomial_lt_nowhere(self):
        assert solve_relation(Polynomial([0.0]), Rel.LT, 0.0, 1.0).is_empty

    def test_constant_polynomial(self):
        assert solve_relation(Polynomial([3.0]), Rel.GT, 0, 1).measure == 1.0
        assert solve_relation(Polynomial([3.0]), Rel.LT, 0, 1).is_empty

    def test_quadratic_between_roots(self):
        # (t-1)(t-3) < 0 on (1, 3)
        sol = solve_relation(Polynomial([3.0, -4.0, 1.0]), Rel.LT, 0.0, 10.0)
        assert len(sol.intervals) == 1
        assert sol.intervals[0].lo == pytest.approx(1.0)
        assert sol.intervals[0].hi == pytest.approx(3.0)

    def test_quadratic_outside_roots(self):
        sol = solve_relation(Polynomial([3.0, -4.0, 1.0]), Rel.GT, 0.0, 10.0)
        assert len(sol.intervals) == 2

    def test_le_touching_point_kept(self):
        # (t-2)^2 <= 0 holds only at t=2: an isolated point.
        sol = solve_relation(Polynomial([4.0, -4.0, 1.0]), Rel.LE, 0.0, 10.0)
        assert sol.intervals == ()
        assert sol.points == (pytest.approx(2.0),)

    def test_lt_strict_empty_at_touching_point(self):
        sol = solve_relation(Polynomial([4.0, -4.0, 1.0]), Rel.LT, 0.0, 10.0)
        assert sol.is_empty

    def test_ne_has_full_measure(self):
        sol = solve_relation(Polynomial([-5.0, 1.0]), Rel.NE, 0.0, 10.0)
        assert sol.measure == pytest.approx(10.0)

    def test_empty_domain(self):
        assert solve_relation(Polynomial([1.0, 1.0]), Rel.LT, 5.0, 5.0).is_empty

    def test_solution_clipped_to_domain(self):
        # t > 0 solved on [2, 4) is all of [2, 4).
        sol = solve_relation(Polynomial([0.0, 1.0]), Rel.GT, 2.0, 4.0)
        assert sol.intervals[0].lo == pytest.approx(2.0)
        assert sol.intervals[0].hi == pytest.approx(4.0)

    def test_sign_consistency_random_samples(self):
        # Every midpoint of the solution must satisfy the relation.
        p = Polynomial([0.5, -2.0, 0.0, 1.0])
        for rel in (Rel.LT, Rel.GT, Rel.LE, Rel.GE):
            sol = solve_relation(p, rel, -3.0, 3.0)
            for iv in sol.intervals:
                assert rel.holds(p(iv.midpoint))
