"""Tests for the polynomial kernel."""

import math

import pytest

from repro.core.polynomial import Polynomial


class TestConstruction:
    def test_default_is_zero(self):
        assert Polynomial().is_zero

    def test_trims_trailing_zeros(self):
        p = Polynomial([1.0, 2.0, 0.0, 0.0])
        assert p.coeffs == (1.0, 2.0)
        assert p.degree == 1

    def test_zero_polynomial_keeps_single_coefficient(self):
        assert Polynomial([0.0, 0.0]).coeffs == (0.0,)

    def test_constructors(self):
        assert Polynomial.constant(3.0).coeffs == (3.0,)
        assert Polynomial.linear(1.0, 2.0).coeffs == (1.0, 2.0)
        assert Polynomial.monomial(3).coeffs == (0.0, 0.0, 0.0, 1.0)

    def test_monomial_rejects_negative_degree(self):
        with pytest.raises(ValueError):
            Polynomial.monomial(-1)

    def test_immutable(self):
        p = Polynomial([1.0])
        with pytest.raises(AttributeError):
            p.coeffs = (2.0,)


class TestEvaluation:
    def test_horner_matches_direct(self):
        p = Polynomial([1.0, -2.0, 3.0, 0.5])
        for t in (-2.0, 0.0, 0.7, 5.0):
            direct = 1.0 - 2.0 * t + 3.0 * t**2 + 0.5 * t**3
            assert p(t) == pytest.approx(direct)

    def test_constant_broadcast_over_arrays(self):
        import numpy as np

        p = Polynomial.constant(4.0)
        out = p(np.array([1.0, 2.0, 3.0]))
        assert list(out) == [4.0, 4.0, 4.0]

    def test_array_evaluation(self):
        import numpy as np

        p = Polynomial([0.0, 1.0, 1.0])  # t + t^2
        out = p(np.array([1.0, 2.0]))
        assert list(out) == [2.0, 6.0]


class TestArithmetic:
    def test_add(self):
        p = Polynomial([1.0, 2.0]) + Polynomial([3.0, 0.0, 1.0])
        assert p.coeffs == (4.0, 2.0, 1.0)

    def test_add_scalar(self):
        assert (Polynomial([1.0, 1.0]) + 2).coeffs == (3.0, 1.0)
        assert (2 + Polynomial([1.0, 1.0])).coeffs == (3.0, 1.0)

    def test_sub_cancels_to_zero(self):
        p = Polynomial([1.0, 2.0])
        assert (p - p).is_zero

    def test_rsub(self):
        assert (5 - Polynomial([1.0, 1.0])).coeffs == (4.0, -1.0)

    def test_mul(self):
        # (1 + t)(1 - t) = 1 - t^2
        p = Polynomial([1.0, 1.0]) * Polynomial([1.0, -1.0])
        assert p.coeffs == (1.0, 0.0, -1.0)

    def test_scalar_mul(self):
        assert (3 * Polynomial([1.0, 2.0])).coeffs == (3.0, 6.0)

    def test_div_by_scalar(self):
        assert (Polynomial([2.0, 4.0]) / 2).coeffs == (1.0, 2.0)

    def test_div_by_polynomial_rejected(self):
        with pytest.raises(TypeError):
            Polynomial([1.0]) / Polynomial([1.0, 1.0])

    def test_pow(self):
        p = Polynomial([1.0, 1.0]) ** 2
        assert p.coeffs == (1.0, 2.0, 1.0)
        assert (Polynomial([2.0]) ** 0).coeffs == (1.0,)

    def test_pow_rejects_negative(self):
        with pytest.raises(ValueError):
            Polynomial([1.0, 1.0]) ** -1


class TestCalculus:
    def test_derivative(self):
        p = Polynomial([1.0, 2.0, 3.0])  # 1 + 2t + 3t^2
        assert p.derivative().coeffs == (2.0, 6.0)

    def test_derivative_of_constant_is_zero(self):
        assert Polynomial.constant(5.0).derivative().is_zero

    def test_antiderivative_inverts_derivative(self):
        p = Polynomial([1.0, 2.0, 3.0])
        assert p.antiderivative().derivative().approx_equal(p)

    def test_definite_integral(self):
        # integral of t on [0, 2] is 2.
        assert Polynomial([0.0, 1.0]).definite_integral(0, 2) == pytest.approx(2.0)

    def test_definite_integral_orientation(self):
        p = Polynomial([1.0])
        assert p.definite_integral(2, 0) == pytest.approx(-2.0)


class TestComposition:
    def test_shift_identity(self):
        p = Polynomial([1.0, 2.0, 3.0])
        assert p.shift(0.0) is p

    def test_shift_evaluates_correctly(self):
        p = Polynomial([1.0, -2.0, 0.5])
        q = p.shift(1.5)  # q(t) = p(t + 1.5)
        for t in (-1.0, 0.0, 2.0):
            assert q(t) == pytest.approx(p(t + 1.5))

    def test_compose_affine(self):
        p = Polynomial([0.0, 0.0, 1.0])  # t^2
        q = p.compose_affine(2.0, 1.0)  # (2t+1)^2 = 4t^2 + 4t + 1
        assert q.coeffs == pytest.approx((1.0, 4.0, 4.0))

    def test_sliding_window_integral_constant(self):
        # integral over a window of width 3 of the constant 2 is 6.
        wf = Polynomial.constant(2.0).sliding_window_integral(3.0)
        assert wf(10.0) == pytest.approx(6.0)
        assert wf(0.0) == pytest.approx(6.0)

    def test_sliding_window_integral_linear(self):
        # f = t; integral_{t-w}^{t} tau dtau = w*t - w^2/2.
        w = 2.0
        wf = Polynomial([0.0, 1.0]).sliding_window_integral(w)
        for t in (0.0, 1.0, 5.0):
            assert wf(t) == pytest.approx(w * t - w * w / 2)

    def test_sliding_window_matches_numeric_quadrature(self):
        p = Polynomial([1.0, -0.5, 0.25, 0.1])
        w = 1.7
        wf = p.sliding_window_integral(w)
        t = 3.3
        assert wf(t) == pytest.approx(p.definite_integral(t - w, t), rel=1e-9)


class TestComparison:
    def test_approx_equal_relative(self):
        a = Polynomial([1e9, 1.0])
        b = Polynomial([1e9 + 1e-3, 1.0])
        assert a.approx_equal(b, tol=1e-9)

    def test_equality_and_hash(self):
        assert Polynomial([1.0, 2.0]) == Polynomial([1.0, 2.0, 0.0])
        assert hash(Polynomial([1.0])) == hash(Polynomial([1.0]))

    def test_bound_on_dominates_values(self):
        p = Polynomial([1.0, -3.0, 2.0])
        bound = p.bound_on(-2.0, 2.0)
        for t in [-2 + 0.1 * i for i in range(41)]:
            assert abs(p(t)) <= bound + 1e-9

    def test_repr_mentions_terms(self):
        assert "t^2" in repr(Polynomial([0.0, 0.0, 3.0]))
