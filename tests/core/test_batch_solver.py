"""Unit tests for the batched companion-matrix solver kernel."""

import math

import numpy as np
import pytest

from repro.core.batch_solver import (
    batch_kernel_enabled,
    derivative_matrix,
    horner_rows,
    pad_coefficient_matrix,
    real_roots_batch,
    set_solver_mode,
    solve_one,
    solve_relation_batch,
    solver_config,
    solver_mode,
    vandermonde_values,
)
from repro.core.equation_system import EquationSystem, solve_systems_batch
from repro.core.expr import Attr, Const
from repro.core.polynomial import Polynomial
from repro.core.predicate import Comparison
from repro.core.relation import Rel
from repro.core.roots import _deflate, real_roots
from repro.core.solve_cache import reset_global_solve_cache
from repro.engine.metrics import get_counter, reset_counters


class TestPaddedEvaluation:
    def test_pad_shapes_and_zero_fill(self):
        m = pad_coefficient_matrix([(1.0, 2.0), (3.0,), (4.0, 5.0, 6.0)])
        assert m.shape == (3, 3)
        assert m[0].tolist() == [1.0, 2.0, 0.0]
        assert m[1].tolist() == [3.0, 0.0, 0.0]

    def test_horner_rows_bit_identical_to_scalar(self):
        # horner_rows evaluates row i at ts[i] — one point per row.
        polys = [
            Polynomial([1.0, -2.0, 0.25]),
            Polynomial([-3.0, 1e-3]),
            Polynomial([7.0, 0.0, 0.0, -1.0]),
            Polynomial([0.5, 0.5]),
        ]
        ts = np.array([-2.5, 0.0, 0.3, 1e6])
        m = pad_coefficient_matrix([p.coeffs for p in polys])
        values = horner_rows(m, ts)
        for i, (p, t) in enumerate(zip(polys, ts)):
            assert values[i] == p(t)  # exact, not approx

    def test_derivative_matrix_matches_polynomial_derivative(self):
        p = Polynomial([5.0, -1.0, 2.0, 0.5])
        m = derivative_matrix(pad_coefficient_matrix([p.coeffs]))
        d = p.derivative()
        for t in (-1.0, 0.0, 2.0):
            assert horner_rows(m, np.array([t]))[0] == pytest.approx(d(t))

    def test_vandermonde_grid_matches_scalar_evaluation(self):
        # vandermonde_values is the full rows x sample-grid product.
        polys = [Polynomial([1.0, 2.0, 3.0]), Polynomial([0.0, -1.0])]
        ts = np.array([0.0, 0.5, 2.0])
        m = pad_coefficient_matrix([p.coeffs for p in polys])
        grid = vandermonde_values(m, ts)
        assert grid.shape == (2, 3)
        for i, p in enumerate(polys):
            for j, t in enumerate(ts):
                assert grid[i, j] == pytest.approx(p(t))


class TestDeflate:
    def test_denormal_leading_coefficient_dropped(self):
        c = _deflate((1.0, -2.0, 1e-300))
        assert c == (1.0, -2.0)

    def test_finite_domain_trims_negligible_leading_term(self):
        # 1 - 2 t^2 + 1e-191 t^3: over [-10, 10] the cubic term cannot
        # move any root, but it wrecks companion conditioning.
        c = _deflate((1.0, 0.0, -2.0, 1e-191), -10.0, 10.0)
        assert c == (1.0, 0.0, -2.0)

    def test_infinite_domain_keeps_small_leading_term(self):
        # Over an unbounded domain the tiny cubic term owns a genuine
        # root near 2e190 — value-based trimming must not drop it.
        c = _deflate((1.0, 0.0, -2.0, 1e-191))
        assert len(c) == 4

    def test_never_trims_to_empty(self):
        assert _deflate((1e-320,)) == (1e-320,)
        assert _deflate((0.0, 1e-320), -1.0, 1.0) == (0.0,)

    def test_roots_respect_finite_domain_trim(self):
        p = Polynomial([1.0, 0.0, -2.0, 1e-191])
        roots = real_roots(p, -10.0, 10.0)
        assert len(roots) == 2
        for r in roots:
            assert abs(p(r)) < 1e-9

    def test_batch_matches_scalar_on_trim_edges(self):
        items = [
            (Polynomial([1.0, 0.0, -2.0, 1e-191]), -10.0, 10.0),
            (Polynomial([1.0, -2.0, 1e-300]), -10.0, 10.0),
            (Polynomial([0.0, 0.0, 1.0, 0.0, 1.0]), -5.0, 5.0),
        ]
        batched = real_roots_batch(items)
        for (p, lo, hi), roots in zip(items, batched):
            assert roots == real_roots(p, lo, hi)


class TestTrailingZeroRoots:
    def test_exact_zero_roots_from_trailing_zeros(self):
        # t^2 (t - 3): np.roots-style trailing-zero stripping appends
        # exact 0.0 candidates.
        p = Polynomial([0.0, 0.0, -3.0, 1.0])
        [roots] = real_roots_batch([(p, -10.0, 10.0)])
        assert roots == real_roots(p, -10.0, 10.0)
        assert 0.0 in roots and any(abs(r - 3.0) < 1e-9 for r in roots)


class TestSolverModeSwitch:
    def test_default_is_batch(self):
        assert solver_config().kernel in ("batch", "scalar")

    def test_scalar_mode_disables_kernel_and_cache(self):
        with solver_mode("scalar") as cfg:
            assert not batch_kernel_enabled()
            assert not cfg.cache_enabled
        with solver_mode("batch") as cfg:
            assert batch_kernel_enabled()
            assert cfg.cache_enabled

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            set_solver_mode("quantum")

    def test_context_restores_previous_mode(self):
        before = solver_config().kernel
        with solver_mode("scalar"):
            pass
        assert solver_config().kernel == before


class TestRowSolveCounter:
    def test_counter_bumps_per_row(self):
        reset_counters("equation_system.row_solves")
        counter = get_counter("equation_system.row_solves")
        reset_global_solve_cache()
        models = {"p": Polynomial([-1.0, 1.0])}
        system = EquationSystem.from_predicate(
            Comparison(Attr("p"), Rel.LT, Const(0.0)), models.__getitem__
        )
        system.solve(0.0, 10.0)
        assert counter.value == 1
        system.solve(0.0, 10.0)
        assert counter.value == 2
        reset_counters("equation_system.row_solves")
        assert counter.value == 0


class TestInfiniteDomainMidpoints:
    def test_unbounded_sign_tests_match_scalar(self):
        # Midpoints at +/-inf must take the scalar evaluation fallback.
        from repro.core.roots import solve_relation

        tasks = [
            (Polynomial([-4.0, 0.0, 1.0]), Rel.GT, -math.inf, math.inf),
            (Polynomial([1.0, 1.0]), Rel.LE, -math.inf, 0.0),
            (Polynomial([1.0, 0.0, 1.0]), Rel.GE, 0.0, math.inf),
        ]
        assert solve_relation_batch(tasks) == [
            solve_relation(*task) for task in tasks
        ]


class TestSolveSystemsBatch:
    def test_batched_system_jobs_match_individual_solves(self):
        models = {
            "a": Polynomial([-2.0, 1.0]),
            "b": Polynomial([4.0, -1.0]),
        }
        lt = Comparison(Attr("a"), Rel.LT, Const(0.0))
        gt = Comparison(Attr("b"), Rel.GT, Const(0.0))
        sys_a = EquationSystem.from_predicate(lt, models.__getitem__)
        sys_b = EquationSystem.from_predicate(gt, models.__getitem__)
        jobs = [(sys_a, 0.0, 10.0), (sys_b, 0.0, 10.0), (sys_a, -5.0, 5.0)]
        batched = solve_systems_batch(jobs)
        assert batched == [s.solve(lo, hi) for s, lo, hi in jobs]

    def test_empty_job_list(self):
        assert solve_systems_batch([]) == []

    def test_solve_one_matches_system_row(self):
        p = Polynomial([-2.0, 1.0])
        assert solve_one(p, Rel.LT, 0.0, 10.0) == solve_one(p, Rel.LT, 0.0, 10.0)
