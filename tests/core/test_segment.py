"""Tests for segments, update semantics and segment buffers."""

import pytest

from repro.core.errors import InvalidSegmentError
from repro.core.polynomial import Polynomial
from repro.core.segment import Segment, SegmentBuffer, apply_update_semantics


def seg(key, lo, hi, **models):
    return Segment(
        key=(key,) if not isinstance(key, tuple) else key,
        t_start=lo,
        t_end=hi,
        models={k: Polynomial(v) for k, v in models.items()},
    )


class TestSegment:
    def test_rejects_empty_range(self):
        with pytest.raises(InvalidSegmentError):
            seg("a", 1.0, 1.0, x=[0.0])

    def test_rejects_non_polynomial_model(self):
        with pytest.raises(InvalidSegmentError):
            Segment(("a",), 0, 1, models={"x": [1, 2]})

    def test_value_at_modeled(self):
        s = seg("a", 0, 10, x=[1.0, 2.0])
        assert s.value_at("x", 3.0) == pytest.approx(7.0)

    def test_value_at_constant(self):
        s = Segment(("a",), 0, 1, models={}, constants={"flag": "on"})
        assert s.value_at("flag", 0.5) == "on"

    def test_value_at_unknown_raises(self):
        s = seg("a", 0, 1, x=[0.0])
        with pytest.raises(KeyError):
            s.value_at("y", 0.5)

    def test_model_unknown_raises_with_available_list(self):
        s = seg("a", 0, 1, x=[0.0])
        with pytest.raises(KeyError, match="available"):
            s.model("y")

    def test_contains_time_half_open(self):
        s = seg("a", 0, 1, x=[0.0])
        assert s.contains_time(0.0)
        assert not s.contains_time(1.0)

    def test_restrict(self):
        s = seg("a", 0, 10, x=[1.0, 1.0])
        r = s.restrict(2, 5)
        assert (r.t_start, r.t_end) == (2, 5)
        assert r.model("x") == s.model("x")

    def test_restrict_outside_raises(self):
        s = seg("a", 0, 10, x=[0.0])
        with pytest.raises(InvalidSegmentError):
            s.restrict(20, 30)

    def test_overlap_range(self):
        a = seg("a", 0, 5, x=[0.0])
        b = seg("a", 3, 8, x=[0.0])
        assert a.overlap_range(b) == (3, 5)
        assert a.overlap_range(seg("a", 5, 8, x=[0.0])) is None

    def test_at_instant_is_point(self):
        s = seg("a", 0, 10, x=[1.0])
        p = s.at_instant(4.0)
        assert p.is_point
        assert p.contains_time(4.0)

    def test_unique_ids(self):
        assert seg("a", 0, 1, x=[0.0]).seg_id != seg("a", 0, 1, x=[0.0]).seg_id

    def test_derive_records_lineage(self):
        a = seg("a", 0, 5, x=[0.0])
        b = seg("b", 0, 5, x=[1.0])
        out = a.derive(("a", "b"), 1, 2, {"x": Polynomial([2.0])}, parents=[a, b])
        assert out.lineage == (a.seg_id, b.seg_id)

    def test_immutable(self):
        s = seg("a", 0, 1, x=[0.0])
        with pytest.raises(AttributeError):
            s.t_start = 5.0


class TestUpdateSemantics:
    def test_successor_trims_predecessor(self):
        a = seg("a", 0, 10, x=[1.0])
        b = seg("a", 5, 15, x=[2.0])
        out = apply_update_semantics([a], b)
        assert len(out) == 2
        assert (out[0].t_start, out[0].t_end) == (0, 5)
        assert out[0].model("x") == Polynomial([1.0])
        assert (out[1].t_start, out[1].t_end) == (5, 15)

    def test_non_overlapping_appended(self):
        a = seg("a", 0, 5, x=[1.0])
        b = seg("a", 5, 10, x=[2.0])
        out = apply_update_semantics([a], b)
        assert len(out) == 2

    def test_different_key_untouched(self):
        a = seg("a", 0, 10, x=[1.0])
        b = seg("b", 5, 15, x=[2.0])
        out = apply_update_semantics([a], b)
        assert len(out) == 2
        assert (out[0].t_start, out[0].t_end) == (0, 10)

    def test_update_covering_predecessor_replaces_it(self):
        a = seg("a", 2, 4, x=[1.0])
        b = seg("a", 0, 10, x=[2.0])
        out = apply_update_semantics([a], b)
        assert len(out) == 1
        assert out[0].model("x") == Polynomial([2.0])

    def test_update_inside_predecessor_keeps_head(self):
        a = seg("a", 0, 10, x=[1.0])
        b = seg("a", 4, 6, x=[2.0])
        out = apply_update_semantics([a], b)
        # Head [0,4) survives; the rest is overridden by the newer piece.
        assert (out[0].t_start, out[0].t_end) == (0, 4)
        assert (out[1].t_start, out[1].t_end) == (4, 6)

    def test_original_list_not_mutated(self):
        a = seg("a", 0, 10, x=[1.0])
        existing = [a]
        apply_update_semantics(existing, seg("a", 5, 15, x=[2.0]))
        assert existing == [a]


class TestSegmentBuffer:
    def test_insert_and_len(self):
        buf = SegmentBuffer()
        buf.insert(seg("a", 0, 5, x=[0.0]))
        buf.insert(seg("b", 0, 5, x=[0.0]))
        assert len(buf) == 2

    def test_insert_applies_update_semantics(self):
        buf = SegmentBuffer()
        buf.insert(seg("a", 0, 10, x=[1.0]))
        buf.insert(seg("a", 5, 15, x=[2.0]))
        segs = list(buf.segments(("a",)))
        assert [s.t_end for s in segs] == [5, 15]

    def test_overlapping_query(self):
        buf = SegmentBuffer()
        buf.insert(seg("a", 0, 5, x=[0.0]))
        buf.insert(seg("a", 10, 15, x=[0.0]))
        hits = list(buf.overlapping(4, 11))
        assert len(hits) == 2
        assert list(buf.overlapping(6, 9)) == []

    def test_overlapping_by_key(self):
        buf = SegmentBuffer()
        buf.insert(seg("a", 0, 5, x=[0.0]))
        buf.insert(seg("b", 0, 5, x=[0.0]))
        assert len(list(buf.overlapping(0, 5, key=("a",)))) == 1

    def test_evict_before(self):
        buf = SegmentBuffer()
        buf.insert(seg("a", 0, 5, x=[0.0]))
        buf.insert(seg("a", 5, 10, x=[0.0]))
        dropped = buf.evict_before(6.0)
        assert dropped == 1
        assert len(buf) == 1
        assert buf.watermark == 6.0

    def test_evict_removes_empty_keys(self):
        buf = SegmentBuffer()
        buf.insert(seg("a", 0, 5, x=[0.0]))
        buf.evict_before(100.0)
        assert list(buf.keys()) == []

    def test_clear(self):
        buf = SegmentBuffer()
        buf.insert(seg("a", 0, 5, x=[0.0]))
        buf.clear()
        assert len(buf) == 0
