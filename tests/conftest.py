"""Shared test configuration: determinism pins and golden updates.

Tier-1 must be fast and deterministic, so this conftest removes the two
ambient sources of nondeterminism:

* Hypothesis runs derandomized (examples derive from the test body, not
  a per-run entropy source), so a property failure on one machine is a
  failure on every machine.
* The module-level :mod:`random` RNG is re-seeded around every test.
  Tests that want variation construct their own ``random.Random(seed)``
  (all the trace generators already do); nothing may depend on ambient
  RNG state left behind by an earlier test.

It also registers ``--update-goldens`` for the golden-trace regression
suite (``tests/integration/test_golden_traces.py``): run with the flag
to rewrite ``tests/golden/*`` from current engine output after an
intentional observability-layer change, then commit the diff.
"""

import random

import pytest

try:
    from hypothesis import settings

    settings.register_profile("repro-deterministic", derandomize=True)
    settings.load_profile("repro-deterministic")
except ImportError:  # hypothesis is a dev extra; tier-1 core runs without
    pass


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/golden/* from current engine output "
        "instead of asserting against it",
    )


@pytest.fixture
def update_goldens(request) -> bool:
    """True when the run should rewrite golden artifacts."""
    return request.config.getoption("--update-goldens")


@pytest.fixture(autouse=True)
def _pin_ambient_rng():
    """Seed (and afterwards restore) the module-level RNG per test."""
    state = random.getstate()
    random.seed(0xC0FFEE)
    try:
        yield
    finally:
        random.setstate(state)
