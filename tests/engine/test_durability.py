"""The durability subsystem: WAL framing, snapshots, runtime recovery.

The headline property is the replay contract: ``snapshot(k)`` + WAL
records ``k+1..n`` must reconverge **bit-exactly** with a runtime that
never died (the engine is deterministic given arrival order — the same
property the parallel-runtime parity tests pin).  Around it, the damage
matrix: torn tails, corrupt frames, flipped bytes, and half-written
snapshots are all skipped *with accounting*, never raised and never
silent.
"""

import os
import pickle
import random
import struct

import pytest

from repro.core.errors import PlanError
from repro.core.polynomial import Polynomial
from repro.core.segment import Segment
from repro.core.transform import to_continuous_plan
from repro.engine.durability import (
    Durability,
    SnapshotError,
    load_latest_snapshot,
    prune_snapshots,
    read_snapshot,
    write_snapshot,
)
from repro.engine.metrics import get_counter, reset_counters
from repro.engine.scheduler import QueryRuntime
from repro.engine.wal import (
    FILE_HEADER,
    FRAME_MAGIC,
    WalClosed,
    WalError,
    WalReadStats,
    WriteAheadLog,
    read_wal,
    wal_last_seq,
)
from repro.query import parse_query, plan_query


@pytest.fixture(autouse=True)
def _clean_metrics():
    reset_counters()
    yield
    reset_counters()


def seg(lo, hi, value, key=("k",)):
    return Segment(key, lo, hi, {"x": Polynomial([value])})


def planned(threshold):
    return plan_query(parse_query(f"select * from s where x > {threshold}"))


def wal_files(directory):
    return sorted(n for n in os.listdir(directory) if n.endswith(".log"))


def snap_files(directory):
    return sorted(n for n in os.listdir(directory) if n.endswith(".snap"))


# ----------------------------------------------------------------------
# WAL framing
# ----------------------------------------------------------------------
class TestWalRoundTrip:
    def test_append_read_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync_every=1)
        records = [("s", i, {"x": float(i)}) for i in range(20)]
        seqs = [wal.append(r) for r in records]
        wal.close()
        assert seqs == list(range(1, 21))
        got = list(read_wal(tmp_path))
        assert [s for s, _ in got] == seqs
        assert [r for _, r in got] == records

    def test_file_carries_version_header(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync_every=1)
        wal.append("r")
        wal.close()
        (name,) = wal_files(tmp_path)
        with open(tmp_path / name, "rb") as fh:
            assert fh.read(len(FILE_HEADER)) == FILE_HEADER

    def test_lazy_open_no_file_until_first_append(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync_every=1)
        assert wal_files(tmp_path) == []
        wal.append("r")
        assert len(wal_files(tmp_path)) == 1
        wal.close()

    def test_strict_mode_fsyncs_every_record(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync_every=1)
        for i in range(10):
            wal.append(i)
        # Strict mode is synchronous: durable (and counted) on return.
        assert get_counter("wal.fsyncs").value == 10
        assert get_counter("wal.records").value == 10
        wal.close()

    def test_fsync_batching_counts(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync_every=4)
        for i in range(10):
            wal.append(i)
        wal.close()  # barrier: group-commit worker drained
        # Group commit may coalesce batch boundaries into one
        # fdatasync, so the fsync count is a range, not an exact
        # number; the record accounting is exact.
        assert 1 <= get_counter("wal.fsyncs").value <= 3
        assert get_counter("wal.records").value == 10
        assert len(list(read_wal(tmp_path))) == 10

    def test_fsync_zero_never_syncs_until_close(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync_every=0)
        for i in range(50):
            wal.append(i)
        assert get_counter("wal.fsyncs").value == 0
        wal.close()
        assert len(list(read_wal(tmp_path))) == 50

    def test_closed_wal_refuses_append(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append("r")
        wal.close()
        with pytest.raises(WalClosed):
            wal.append("again")

    def test_advance_seq_before_first_append(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync_every=1)
        wal.advance_seq(41)
        assert wal.append("r") == 42
        wal.close()
        assert wal_last_seq(tmp_path) == 42
        # The file is named for its true first sequence — a second
        # appender epoch never collides with the first.
        assert wal_files(tmp_path) == [f"wal-{42:016d}.log"]

    def test_advance_seq_after_append_is_an_error(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync_every=1)
        wal.append("r")
        with pytest.raises(WalError):
            wal.advance_seq(10)
        wal.close()

    def test_read_missing_directory_is_empty(self, tmp_path):
        assert list(read_wal(tmp_path / "nope")) == []
        assert wal_last_seq(tmp_path / "nope") == 0

    def test_after_seq_filters(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync_every=1)
        for i in range(10):
            wal.append(i)
        wal.close()
        got = list(read_wal(tmp_path, after_seq=7))
        assert [s for s, _ in got] == [8, 9, 10]


class TestWalDamage:
    def _write(self, tmp_path, n=10):
        wal = WriteAheadLog(tmp_path, fsync_every=1)
        for i in range(n):
            wal.append(("s", i))
        wal.close()
        (name,) = wal_files(tmp_path)
        return tmp_path / name

    def test_torn_tail_drops_only_last_frame(self, tmp_path):
        path = self._write(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-5])  # chop mid-frame, as a crash would
        stats = WalReadStats()
        got = list(read_wal(tmp_path, stats=stats))
        assert [s for s, _ in got] == list(range(1, 10))
        assert stats.torn_tails == 1
        assert stats.corrupt_frames == 0
        assert get_counter("wal.torn_tails").value == 1

    def test_flipped_byte_resyncs_past_frame(self, tmp_path):
        path = self._write(tmp_path)
        data = bytearray(path.read_bytes())
        # Flip one payload byte somewhere in the middle of the file.
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        stats = WalReadStats()
        got = list(read_wal(tmp_path, stats=stats))
        assert stats.corrupt_frames >= 1
        # Everything before and after the damaged frame survives.
        seqs = [s for s, _ in got]
        assert seqs == sorted(seqs)
        assert len(seqs) >= 8
        assert get_counter("wal.corrupt_frames").value >= 1

    def test_implausible_length_is_corrupt_not_fatal(self, tmp_path):
        path = self._write(tmp_path, n=3)
        data = bytearray(path.read_bytes())
        # Corrupt the *length* field of frame 1: find its magic and
        # overwrite length with 2**31 (CRC now also fails, but length
        # sanity trips first and the scan resyncs on the next magic).
        first = data.find(FRAME_MAGIC, len(FILE_HEADER))
        length_off = first + len(FRAME_MAGIC) + 8
        data[length_off : length_off + 4] = struct.pack("<I", 2**31)
        path.write_bytes(bytes(data))
        stats = WalReadStats()
        got = list(read_wal(tmp_path, stats=stats))
        assert stats.corrupt_frames >= 1
        assert [s for s, _ in got] == [2, 3]

    def test_unpicklable_payload_skipped(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync_every=1)
        wal.append("good-1")
        wal.close()
        (name,) = wal_files(tmp_path)
        path = tmp_path / name
        # Hand-frame a record whose payload is valid per CRC but not
        # unpicklable — decode damage, distinct from transport damage.
        from repro.engine.wal import _encode_frame

        with open(path, "ab") as fh:
            fh.write(_encode_frame(2, b"\x80\x05 not a pickle"))
            fh.write(_encode_frame(3, pickle.dumps("good-3")))
        stats = WalReadStats()
        got = list(read_wal(tmp_path, stats=stats))
        assert [(s, r) for s, r in got] == [(1, "good-1"), (3, "good-3")]
        assert stats.corrupt_frames == 1

    def test_duplicate_seqs_skipped_with_accounting(self, tmp_path):
        # Two files with overlapping ranges, as a crash between
        # snapshot and truncate leaves behind.
        w1 = WriteAheadLog(tmp_path, fsync_every=1)
        for i in range(5):
            w1.append(("a", i))
        w1.close()
        os.rename(
            tmp_path / wal_files(tmp_path)[0],
            tmp_path / "wal-0000000000000000.log",
        )
        w2 = WriteAheadLog(tmp_path, fsync_every=1, start_seq=3)
        for i in range(4):
            w2.append(("b", i))
        w2.close()
        stats = WalReadStats()
        got = list(read_wal(tmp_path, stats=stats))
        assert [s for s, _ in got] == [1, 2, 3, 4, 5, 6, 7]
        assert stats.skipped_duplicates == 2  # seqs 4,5 from file 2
        assert stats.files == 2

    def test_bad_file_header_counts_and_scans_on(self, tmp_path):
        path = self._write(tmp_path, n=4)
        data = path.read_bytes()
        path.write_bytes(b"XXXXXXXX" + data[len(FILE_HEADER) :])
        stats = WalReadStats()
        got = list(read_wal(tmp_path, stats=stats))
        assert stats.corrupt_frames >= 1
        assert [s for s, _ in got] == [1, 2, 3, 4]


class TestWalRotation:
    def test_rotate_removes_covered_files(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync_every=1)
        for i in range(6):
            wal.append(i)
        # Rotation opens the next file, so the fully-covered first file
        # (seqs 1..6 ≤ checkpoint 6) is immediately reclaimable.
        assert wal.rotate(6) == 1
        for i in range(4):
            wal.append(i)
        assert wal.rotate(10) == 1
        wal.close()
        # Every record ≤ the checkpoint is covered by the snapshot, so
        # nothing remains on disk but the fresh (empty) live file.
        assert wal_last_seq(tmp_path) == 0
        assert len(wal_files(tmp_path)) == 1

    def test_uncovered_rotation_keeps_tail_files(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync_every=1)
        for i in range(8):
            wal.append(i)
        # Checkpoint at 4: the first file carries 5..8 too, so it must
        # survive rotation; replay filters the duplicate 1..4 by seq.
        wal.rotate(4)
        for i in range(3):
            wal.append(i)
        wal.close()
        got = list(read_wal(tmp_path, after_seq=4))
        assert [s for s, _ in got] == [5, 6, 7, 8, 9, 10, 11]


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------
class TestSnapshots:
    def test_write_read_round_trip(self, tmp_path):
        state = {"queues": [1, 2, 3], "nested": {"k": ("a", 0.5)}}
        path = write_snapshot(tmp_path, 17, state)
        seq, got = read_snapshot(path)
        assert (seq, got) == (17, state)

    def test_no_temp_file_left_behind(self, tmp_path):
        write_snapshot(tmp_path, 1, {"x": 1})
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]

    @pytest.mark.parametrize(
        "mangle",
        [
            lambda b: b"NOTSNAPP" + b[8:],            # bad magic
            lambda b: b[:10],                          # header cut short
            lambda b: b[:-4],                          # payload cut short
            lambda b: b[:-1] + bytes([b[-1] ^ 0xFF]),  # crc mismatch
        ],
        ids=["magic", "short-header", "short-payload", "crc"],
    )
    def test_damaged_snapshot_raises_typed(self, tmp_path, mangle):
        path = write_snapshot(tmp_path, 5, {"x": 1})
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(mangle(blob))
        with pytest.raises(SnapshotError):
            read_snapshot(path)

    def test_newest_valid_wins(self, tmp_path):
        write_snapshot(tmp_path, 5, {"epoch": "old"})
        newest = write_snapshot(tmp_path, 9, {"epoch": "new"})
        # Damage the newest: recovery must fall back, counting it.
        with open(newest, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            last = fh.read(1)
            fh.seek(-1, os.SEEK_END)
            fh.write(bytes([last[0] ^ 0xFF]))
        seq, state, path = load_latest_snapshot(tmp_path)
        assert (seq, state["epoch"]) == (5, "old")
        assert get_counter("recovery.bad_snapshots").value == 1

    def test_all_bad_falls_back_to_genesis(self, tmp_path):
        path = write_snapshot(tmp_path, 5, {"x": 1})
        with open(path, "wb") as fh:
            fh.write(b"garbage")
        assert load_latest_snapshot(tmp_path) is None
        assert get_counter("recovery.bad_snapshots").value == 1

    def test_empty_directory_is_genesis(self, tmp_path):
        assert load_latest_snapshot(tmp_path / "nope") is None

    def test_prune_keeps_newest(self, tmp_path):
        for seq in (1, 2, 3, 4, 5):
            write_snapshot(tmp_path, seq, {"seq": seq})
        removed = prune_snapshots(tmp_path, keep=2)
        assert removed == 3
        assert snap_files(tmp_path) == [
            f"snapshot-{4:016d}.snap",
            f"snapshot-{5:016d}.snap",
        ]


# ----------------------------------------------------------------------
# the coordinator
# ----------------------------------------------------------------------
class TestDurabilityCoordinator:
    def test_checkpoint_rotates_and_prunes(self, tmp_path):
        dur = Durability(tmp_path, fsync_every=1, snapshots_keep=1)
        for i in range(5):
            dur.log(("s", i))
        info1 = dur.checkpoint({"epoch": 1})
        for i in range(5):
            dur.log(("s", i))
        info2 = dur.checkpoint({"epoch": 2})
        dur.close()
        assert info1["seq"] == 5 and info2["seq"] == 10
        assert info2["wal_files_removed"] == 1
        assert info2["snapshots_removed"] == 1
        assert len(snap_files(tmp_path)) == 1

    def test_recover_replays_tail_only(self, tmp_path):
        dur = Durability(tmp_path, fsync_every=1)
        for i in range(5):
            dur.log(("s", i))
        dur.checkpoint({"epoch": 1})
        for i in range(5, 8):
            dur.log(("s", i))
        dur.wal.sync()
        # Crash: abandon without close; recover with a fresh object.
        dur2 = Durability(tmp_path, fsync_every=1)
        state, report, records = dur2.recover()
        replayed = list(records)
        dur2.finish_recovery(report)
        assert state == {"epoch": 1}
        assert report.snapshot_seq == 5
        assert [r for _, r in replayed] == [("s", 5), ("s", 6), ("s", 7)]
        assert report.recovered_seq == 8
        # New appends continue the sequence, never reusing numbers.
        assert dur2.log(("s", 8)) == 9
        dur2.close()
        assert get_counter("recovery.runs").value == 1
        assert get_counter("recovery.replayed_records").value == 3


# ----------------------------------------------------------------------
# runtime checkpoint/restore parity
# ----------------------------------------------------------------------
def make_trace(n=40, seed=11):
    rng = random.Random(seed)
    t = 0.0
    out = []
    for i in range(n):
        t += rng.uniform(0.2, 0.8)
        out.append(seg(t, t + rng.uniform(0.2, 0.5), rng.uniform(-5, 5)))
    return out


class TestRuntimeRecovery:
    def _runtime(self, tmp_path=None, **kw):
        dur = (
            Durability(tmp_path, fsync_every=1) if tmp_path is not None else None
        )
        rt = QueryRuntime(batch_size=4, durability=dur, **kw)
        rt.register("pos", to_continuous_plan(planned(0)))
        rt.register("hi", to_continuous_plan(planned(3)))
        return rt

    def test_checkpoint_without_durability_raises(self):
        rt = self._runtime()
        with pytest.raises(PlanError):
            rt.checkpoint()
        with pytest.raises(PlanError):
            rt.restore()

    def test_crash_replay_is_bit_exact(self, tmp_path):
        trace = make_trace()
        crash_at = 27

        # Reference: never dies; drain outputs at the crash boundary so
        # only post-crash outputs are compared (replay discards its own).
        ref = self._runtime()
        for item in trace[:crash_at]:
            ref.enqueue("s", item)
        ref.run_until_idle()
        for name in ref.query_names:
            ref.outputs(name)  # drain
        for item in trace[crash_at:]:
            ref.enqueue("s", item)
        ref.run_until_idle()
        ref_outputs = {n: ref.outputs(n) for n in ref.query_names}
        ref_stats = dict(ref.stats())

        # Victim: checkpoint mid-stream, then die without closing.
        victim = self._runtime(tmp_path)
        for item in trace[:15]:
            victim.enqueue("s", item)
        victim.run_until_idle()
        victim.checkpoint()
        for item in trace[15:crash_at]:
            victim.enqueue("s", item)
        victim.run_until_idle()
        victim._durability.wal.sync()  # simulate durable-at-crash tail

        # Reborn process: restore, then feed the rest of the trace.
        reborn = self._runtime(tmp_path)
        report = reborn.restore()
        assert report.snapshot_seq == 15
        assert report.replayed == crash_at - 15
        assert report.recovered_seq == crash_at
        assert reborn.ingest_seq == crash_at
        for item in trace[crash_at:]:
            reborn.enqueue("s", item)
        reborn.run_until_idle()

        for name in ref_outputs:
            got = reborn.outputs(name)
            assert len(got) == len(ref_outputs[name])
            for a, b in zip(got, ref_outputs[name]):
                assert a.key == b.key
                assert a.t_start == b.t_start and a.t_end == b.t_end
                assert {
                    k: p.coeffs for k, p in a.models.items()
                } == {k: p.coeffs for k, p in b.models.items()}
        # Row-solve bookkeeping reconciles: per-query processed counts
        # match the never-died reference exactly.
        assert dict(reborn.stats()) == ref_stats
        reborn.close()
        ref.close()

    def test_crash_replay_bit_exact_with_incremental(self, tmp_path):
        """The delta path survives checkpoint/restore bit-exactly.

        The solution stores pickle *empty* (derived caches) and the
        memos keep their entries but rebind counter handles lazily — a
        restored runtime must still reconverge with a never-died
        reference, both running with the incremental knob on.
        """
        from repro.core.batch_solver import incremental_mode
        from repro.core.solve_cache import (
            reset_global_solve_cache,
            reset_worker_root_cache,
        )

        trace = make_trace()
        crash_at = 27
        with incremental_mode(True):
            reset_global_solve_cache()
            reset_worker_root_cache()
            ref = self._runtime()
            for item in trace[:crash_at]:
                ref.enqueue("s", item)
            ref.run_until_idle()
            for name in ref.query_names:
                ref.outputs(name)  # drain pre-crash outputs
            for item in trace[crash_at:]:
                ref.enqueue("s", item)
            ref.run_until_idle()
            ref_outputs = {n: ref.outputs(n) for n in ref.query_names}
            ref_stats = dict(ref.stats())

            reset_global_solve_cache()
            reset_worker_root_cache()
            victim = self._runtime(tmp_path)
            for item in trace[:15]:
                victim.enqueue("s", item)
            victim.run_until_idle()
            victim.checkpoint()
            for item in trace[15:crash_at]:
                victim.enqueue("s", item)
            victim.run_until_idle()
            victim._durability.wal.sync()

            reset_global_solve_cache()
            reset_worker_root_cache()
            reborn = self._runtime(tmp_path)
            report = reborn.restore()
            assert report.recovered_seq == crash_at
            for item in trace[crash_at:]:
                reborn.enqueue("s", item)
            reborn.run_until_idle()

            for name in ref_outputs:
                got = reborn.outputs(name)
                assert len(got) == len(ref_outputs[name])
                for a, b in zip(got, ref_outputs[name]):
                    assert a.key == b.key
                    assert a.t_start == b.t_start and a.t_end == b.t_end
                    assert {
                        k: p.coeffs for k, p in a.models.items()
                    } == {k: p.coeffs for k, p in b.models.items()}
            assert dict(reborn.stats()) == ref_stats
            reborn.close()
            ref.close()

    def test_restore_from_genesis_replays_everything(self, tmp_path):
        trace = make_trace(n=10)
        victim = self._runtime(tmp_path)
        for item in trace:
            victim.enqueue("s", item)
        victim.run_until_idle()
        victim._durability.wal.sync()

        reborn = self._runtime(tmp_path)
        report = reborn.restore()
        assert report.snapshot_seq == 0
        assert report.replayed == 10
        # Replay outputs are discarded — delivered-or-lost at crash.
        assert reborn.outputs("pos") == []
        assert reborn.ingest_seq == 10

    def test_torn_tail_recovery_never_crashes(self, tmp_path):
        trace = make_trace(n=12)
        victim = self._runtime(tmp_path)
        for item in trace:
            victim.enqueue("s", item)
        victim._durability.wal.sync()
        (name,) = [n for n in os.listdir(tmp_path) if n.endswith(".log")]
        path = tmp_path / name
        path.write_bytes(path.read_bytes()[:-7])

        reborn = self._runtime(tmp_path)
        report = reborn.restore()
        assert report.wal_stats.torn_tails == 1
        assert report.replayed == 11  # the torn record is lost, counted
        assert report.recovered_seq == 11

    def test_queued_arrivals_survive_checkpoint(self, tmp_path):
        # Checkpoint with items still queued: the snapshot carries the
        # queues, and restore resumes processing them.
        victim = self._runtime(tmp_path)
        for item in make_trace(n=6):
            victim.enqueue("s", item)
        victim.checkpoint()  # nothing processed yet

        reborn = self._runtime(tmp_path)
        reborn.restore()
        # Queues restored and drained to idle during restore.
        assert reborn.total_pending == 0
        stats = dict(reborn.stats())
        assert stats["pos"] == 6 and stats["hi"] == 6

    def test_breaker_state_round_trips_through_snapshot(self, tmp_path):
        from repro.engine.resilience import BreakerConfig, BreakerState

        victim = self._runtime(
            tmp_path, breaker=BreakerConfig(failure_threshold=2, backoff=4)
        )
        victim.breaker.record_failure("pos", ("k",))
        victim.breaker.record_failure("pos", ("k",))
        assert victim.breaker.state("pos", ("k",)) is BreakerState.OPEN
        victim.checkpoint()

        reborn = self._runtime(
            tmp_path, breaker=BreakerConfig(failure_threshold=2, backoff=4)
        )
        reborn.restore()
        assert reborn.breaker.state("pos", ("k",)) is BreakerState.OPEN

    def test_restore_rejects_unknown_snapshot_version(self, tmp_path):
        rt = self._runtime(tmp_path)
        state = rt.checkpoint_state()
        state["version"] = 99
        with pytest.raises(PlanError):
            rt.restore_state(state)

    def test_segment_ids_never_collide_after_restore(self, tmp_path):
        victim = self._runtime(tmp_path)
        items = make_trace(n=5)
        for item in items:
            victim.enqueue("s", item)
        victim.run_until_idle()
        victim.checkpoint()
        restored_ids = {
            out.seg_id for out in victim.outputs("pos")
        }

        reborn = self._runtime(tmp_path)
        reborn.restore()
        fresh = seg(100.0, 101.0, 1.0)
        assert fresh.seg_id not in restored_ids
