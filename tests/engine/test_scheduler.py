"""Tests for the multi-query runtime and round-robin scheduler."""

import pytest

from repro.core.errors import PlanError
from repro.core.polynomial import Polynomial
from repro.core.segment import Segment
from repro.core.transform import to_continuous_plan
from repro.engine.lowering import to_discrete_plan
from repro.engine.scheduler import QueryRuntime
from repro.engine.tuples import StreamTuple
from repro.query import parse_query, plan_query


def planned(threshold):
    return plan_query(parse_query(f"select * from s where x > {threshold}"))


def seg(lo, hi, value):
    return Segment(("k",), lo, hi, {"x": Polynomial([value])})


def tup(time, value):
    return StreamTuple({"time": time, "x": value})


class TestRegistration:
    def test_register_and_names(self):
        rt = QueryRuntime()
        rt.register("q1", to_continuous_plan(planned(0)))
        assert rt.query_names == ["q1"]

    def test_duplicate_name_rejected(self):
        rt = QueryRuntime()
        rt.register("q1", to_continuous_plan(planned(0)))
        with pytest.raises(PlanError):
            rt.register("q1", to_continuous_plan(planned(1)))

    def test_unregister(self):
        rt = QueryRuntime()
        rt.register("q1", to_continuous_plan(planned(0)))
        rt.unregister("q1")
        assert rt.query_names == []
        with pytest.raises(PlanError):
            rt.unregister("q1")

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            QueryRuntime(batch_size=0)


class TestRouting:
    def test_segments_route_to_continuous_only(self):
        rt = QueryRuntime()
        rt.register("cont", to_continuous_plan(planned(0)))
        rt.register("disc", to_discrete_plan(planned(0)))
        assert rt.enqueue("s", seg(0, 1, 5.0))
        assert rt.queue_depths() == {"cont": 1, "disc": 0}

    def test_tuples_route_to_discrete_only(self):
        rt = QueryRuntime()
        rt.register("cont", to_continuous_plan(planned(0)))
        rt.register("disc", to_discrete_plan(planned(0)))
        assert rt.enqueue("s", tup(0.0, 5.0))
        assert rt.queue_depths() == {"cont": 0, "disc": 1}

    def test_unregistered_stream_raises(self):
        rt = QueryRuntime()
        rt.register("cont", to_continuous_plan(planned(0)))
        with pytest.raises(PlanError):
            rt.enqueue("other", seg(0, 1, 5.0))

    def test_known_stream_without_matching_engine_returns_false(self):
        # Stream "s" is registered, but only by a continuous query: a
        # raw tuple has no discrete consumer, which is a routing miss,
        # not a wiring error.
        rt = QueryRuntime()
        rt.register("cont", to_continuous_plan(planned(0)))
        assert not rt.enqueue("s", tup(0.0, 5.0))

    def test_fan_out_to_multiple_queries(self):
        rt = QueryRuntime()
        rt.register("a", to_continuous_plan(planned(0)))
        rt.register("b", to_continuous_plan(planned(100)))
        rt.enqueue("s", seg(0, 1, 50.0))
        assert rt.queue_depths() == {"a": 1, "b": 1}


class TestScheduling:
    def test_run_until_idle_processes_everything(self):
        rt = QueryRuntime(batch_size=4)
        rt.register("a", to_continuous_plan(planned(0)))
        rt.register("b", to_continuous_plan(planned(100)))
        for i in range(10):
            rt.enqueue("s", seg(i, i + 1, 50.0))
        processed = rt.run_until_idle()
        assert processed == 20  # ten segments to each of two queries
        assert rt.total_pending == 0
        assert len(rt.outputs("a")) == 10  # 50 > 0 everywhere
        assert rt.outputs("b") == []       # 50 > 100 never

    def test_round_robin_interleaves(self):
        rt = QueryRuntime(batch_size=1)
        rt.register("a", to_continuous_plan(planned(0)))
        rt.register("b", to_continuous_plan(planned(0)))
        for i in range(3):
            rt.enqueue("s", seg(i, i + 1, 1.0))
        rt.step()
        rt.step()
        stats = rt.stats()
        assert stats["a"] >= 1 and stats["b"] >= 1

    def test_outputs_drained_once(self):
        rt = QueryRuntime()
        rt.register("a", to_continuous_plan(planned(0)))
        rt.enqueue("s", seg(0, 1, 5.0))
        rt.run_until_idle()
        assert len(rt.outputs("a")) == 1
        assert rt.outputs("a") == []

    def test_step_on_empty_runtime(self):
        assert QueryRuntime().step() == 0


class TestBackPressure:
    def test_capacity_drops_arrivals(self):
        rt = QueryRuntime(queue_capacity=5)
        rt.register("a", to_continuous_plan(planned(0)))
        accepted = sum(
            rt.enqueue("s", seg(i, i + 1, 1.0)) for i in range(10)
        )
        assert accepted == 5
        assert rt.items_dropped == 5

    def test_draining_restores_capacity(self):
        rt = QueryRuntime(queue_capacity=2)
        rt.register("a", to_continuous_plan(planned(0)))
        rt.enqueue("s", seg(0, 1, 1.0))
        rt.enqueue("s", seg(1, 2, 1.0))
        assert not rt.enqueue("s", seg(2, 3, 1.0))
        rt.run_until_idle()
        assert rt.enqueue("s", seg(3, 4, 1.0))

    def test_mixed_engines_shared_stream(self):
        """The same logical query on both engines, fed the same data in
        each representation, agrees on what passes."""
        rt = QueryRuntime()
        rt.register("cont", to_continuous_plan(planned(10)))
        rt.register("disc", to_discrete_plan(planned(10)))
        # Segment value 20 covers [0, 4); tuples sampled from it.
        rt.enqueue("s", seg(0, 4, 20.0))
        for i in range(4):
            rt.enqueue("s", tup(float(i), 20.0))
        rt.run_until_idle()
        cont_out = rt.outputs("cont")
        disc_out = rt.outputs("disc")
        assert len(cont_out) == 1
        assert len(disc_out) == 4
        for row in disc_out:
            assert cont_out[0].contains_time(row.time)


class TestPendingCounter:
    """The maintained pending counters (no per-step queue re-summing)."""

    def _depth_sum(self, rt):
        return sum(
            len(q) for reg in rt._queries.values() for q in reg.queues.values()
        )

    def test_counters_track_queue_depths(self):
        rt = QueryRuntime(batch_size=1)
        rt.register("a", to_continuous_plan(planned(0)))
        rt.register("b", to_continuous_plan(planned(5)))
        for i in range(6):
            rt.enqueue("s", seg(i, i + 1, 10.0))
        # Fan-out: each arrival lands on both registrations.
        assert rt.total_pending == 12
        assert rt.queue_depths() == {"a": 6, "b": 6}
        assert rt.total_pending == self._depth_sum(rt)
        while rt.total_pending:
            rt.step()
            assert rt.total_pending == self._depth_sum(rt)
            assert rt.queue_depths() == {
                name: reg.pending for name, reg in rt._queries.items()
            }
        assert rt.total_pending == 0

    def test_unregister_releases_pending(self):
        rt = QueryRuntime(queue_capacity=4)
        rt.register("a", to_continuous_plan(planned(0)))
        for i in range(4):
            rt.enqueue("s", seg(i, i + 1, 1.0))
        assert not rt.enqueue("s", seg(9, 10, 1.0))  # at capacity
        rt.unregister("a")
        assert rt.total_pending == 0
        # Capacity is available again for a fresh registration.
        rt.register("b", to_continuous_plan(planned(0)))
        assert rt.enqueue("s", seg(0, 1, 1.0))

    def test_partial_drain_keeps_counters_consistent(self):
        rt = QueryRuntime(batch_size=2)
        rt.register("a", to_continuous_plan(planned(0)))
        for i in range(5):
            rt.enqueue("s", seg(i, i + 1, 1.0))
        processed = rt.step()
        assert processed == 2
        assert rt.total_pending == 3 == self._depth_sum(rt)
        rt.run_until_idle()
        assert rt.total_pending == 0 == self._depth_sum(rt)
