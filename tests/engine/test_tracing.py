"""The observability layer: spans, round-trips, and the zero-cost pin.

Three contracts under test:

* **Structure** — every emitted trace round-trips through JSONL into a
  valid span tree: unique ids, resolvable parents, ``t_end >= t_start``,
  and the nesting the engine promises (solve under operator under
  arrival under round; root_query under solve).
* **Zero cost when disabled** — a disabled run makes literally zero
  instrumentation calls: no ``Histogram.observe``, no tracer method, no
  clock read in the scheduler's fast path.  These tests monkeypatch the
  instrumentation entry points to raise, then run real workloads.
* **Watchdog** — the slow-solve budget check counts and flags without
  ever interfering with processing.
"""

import json

import pytest

from repro.core import batch_solver, equation_system, plan, solve_cache
from repro.core.polynomial import Polynomial
from repro.core.segment import Segment
from repro.core.solve_cache import (
    reset_global_solve_cache,
    reset_worker_root_cache,
)
from repro.core.transform import to_continuous_plan
from repro.engine import metrics, tracing
from repro.engine.metrics import reset_counters
from repro.engine.resilience import SlowSolveWatchdog
from repro.engine.scheduler import QueryRuntime
from repro.engine.tracing import (
    SPAN_KINDS,
    Span,
    TraceError,
    Tracer,
    ancestors,
    build_span_tree,
    read_trace,
)
from repro.query import parse_query, plan_query


def _events(rows_per_key=3, keys=("a", "b")):
    events = []
    for k in keys:
        for i in range(rows_per_key):
            start = 1.5 * i
            for stream, attr in (("ticks", "x"), ("quotes", "y")):
                events.append(
                    (stream,
                     Segment((k,), start, start + 2.0,
                             {attr: Polynomial([0.5 * i - 1.0, 1.0])},
                             constants={"sym": k}))
                )
    return events


def _run_runtime(num_shards=1, budget_s=None, events=None):
    reset_global_solve_cache()
    reset_worker_root_cache()
    reset_counters()
    rt = QueryRuntime(num_shards=num_shards, slow_solve_budget_s=budget_s)
    try:
        rt.register(
            "filt",
            to_continuous_plan(
                plan_query(parse_query("select * from ticks where x > 0"))
            ),
        )
        rt.register(
            "join",
            to_continuous_plan(
                plan_query(parse_query(
                    "select from ticks T join quotes Q "
                    "on (T.sym = Q.sym and T.x > Q.y)"
                ))
            ),
        )
        for stream, seg in events or _events():
            rt.enqueue(stream, seg)
        rt.run_until_idle()
        return [rt.outputs(n) for n in rt.query_names], rt
    finally:
        rt.close()


# ----------------------------------------------------------------------
# Span / Tracer primitives
# ----------------------------------------------------------------------
class TestSpanRecord:
    def test_round_trip(self):
        s = Span(3, 1, "solve_tasks", "solve", 0.5, 0.75,
                 {"tasks": 4, "key": ("a", 1)})
        rec = json.loads(json.dumps(s.to_record()))
        back = Span.from_record(rec)
        assert (back.span_id, back.parent_id) == (3, 1)
        assert back.duration == pytest.approx(0.25)
        # Tuples coerce to lists at serialization time.
        assert back.attrs == {"tasks": 4, "key": ["a", 1]}

    def test_unfinished_span_has_no_duration(self):
        assert Span(1, None, "x", "solve", 0.0).duration is None

    def test_malformed_record_raises(self):
        with pytest.raises(TraceError):
            Span.from_record({"span_id": "not-an-int-at-all"})

    def test_attr_coercion_falls_back_to_repr(self):
        s = Span(1, None, "x", "solve", 0.0, 1.0,
                 {"poly": Polynomial([1.0, 2.0])})
        rec = s.to_record()
        json.dumps(rec)  # must be serializable
        assert "poly" in rec["attrs"]


class TestTracer:
    def test_stack_parents_and_nesting(self):
        records = []
        t = Tracer(records)
        outer = t.start("round", "round")
        inner = t.start("arrival", "arrival")
        t.event("emit", "emit", outputs=2)
        t.finish(inner)
        t.finish(outer)
        t.flush()
        by_name = {r["name"]: r for r in records}
        assert by_name["round"]["parent_id"] is None
        assert by_name["arrival"]["parent_id"] == by_name["round"]["span_id"]
        assert by_name["emit"]["parent_id"] == by_name["arrival"]["span_id"]
        assert by_name["emit"]["t_start"] == by_name["emit"]["t_end"]

    def test_buffer_drains_at_limit(self):
        records = []
        t = Tracer(records, buffer_limit=4)
        for _ in range(3):
            t.finish(t.start("s", "solve"))
        assert records == []  # still buffered
        t.finish(t.start("s", "solve"))
        assert len(records) == 4  # limit reached -> drained

    def test_file_sink_owned_and_closed(self, tmp_path):
        path = tmp_path / "t.jsonl"
        t = Tracer(path)
        t.finish(t.start("s", "solve", n=1))
        t.close()
        spans = read_trace(path)
        assert [s.name for s in spans] == ["s"]

    def test_mismatched_finish_collapses_gracefully(self):
        records = []
        t = Tracer(records)
        outer = t.start("a", "round")
        inner = t.start("b", "arrival")
        t.finish(outer)  # out of order: collapses past the inner span
        follow = t.start("c", "round")
        assert follow.parent_id is None  # stack did not corrupt
        t.finish(follow)
        t.finish(inner)
        t.flush()
        assert len(records) == 3


class TestReplay:
    def test_read_trace_skips_blank_lines(self, tmp_path):
        p = tmp_path / "t.jsonl"
        rec = Span(1, None, "a", "round", 0.0, 1.0).to_record()
        p.write_text(json.dumps(rec) + "\n\n")
        assert len(read_trace(p)) == 1

    def test_read_trace_reports_line_numbers(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text("{not json}\n")
        with pytest.raises(TraceError, match=":1:"):
            read_trace(p)

    def test_tree_rejects_duplicate_ids(self):
        spans = [Span(1, None, "a", "round", 0.0, 1.0),
                 Span(1, None, "b", "round", 0.0, 1.0)]
        with pytest.raises(TraceError, match="duplicate"):
            build_span_tree(spans)

    def test_tree_rejects_unknown_parent(self):
        with pytest.raises(TraceError, match="unknown parent"):
            build_span_tree([Span(2, 99, "a", "solve", 0.0, 1.0)])

    def test_tree_rejects_negative_duration(self):
        with pytest.raises(TraceError, match="ends before"):
            build_span_tree([Span(1, None, "a", "solve", 2.0, 1.0)])

    def test_ancestors_chain(self):
        spans = [
            Span(1, None, "round", "round", 0.0, 9.0),
            Span(2, 1, "arrival", "arrival", 1.0, 8.0),
            Span(3, 2, "solve", "solve", 2.0, 3.0),
        ]
        chain = ancestors(spans[2], spans)
        assert [s.name for s in chain] == ["arrival", "round"]


# ----------------------------------------------------------------------
# end-to-end: a real run round-trips into a valid, nested span tree
# ----------------------------------------------------------------------
class TestEndToEndTrace:
    @pytest.fixture(autouse=True)
    def _teardown(self):
        yield
        tracing.disable_observability()

    def _traced_run(self, tmp_path, num_shards=1, budget_s=None):
        path = tmp_path / "trace.jsonl"
        with tracing.observability(str(path)):
            _run_runtime(num_shards=num_shards, budget_s=budget_s)
        return read_trace(path)

    def test_serial_trace_builds_valid_tree(self, tmp_path):
        spans = self._traced_run(tmp_path)
        roots, children = build_span_tree(spans)
        assert roots and all(r.kind == "round" for r in roots)
        assert {s.kind for s in spans} <= set(SPAN_KINDS)
        by_id = {s.span_id: s for s in spans}
        # Every solve span nests under an operator (or a solve above
        # it, for the batch layer); every operator under an arrival.
        operator = [s for s in spans if s.kind == "operator"]
        assert operator
        for s in operator:
            assert by_id[s.parent_id].kind == "arrival"
        solves = [s for s in spans if s.kind == "solve"]
        assert solves
        for s in solves:
            assert by_id[s.parent_id].kind in ("operator", "solve")
        for s in spans:
            if s.kind == "root_query":
                assert by_id[s.parent_id].kind == "solve"

    def test_sharded_trace_has_prime_spans(self, tmp_path):
        spans = self._traced_run(tmp_path, num_shards=2)
        build_span_tree(spans)  # structural validation
        assert any(s.kind == "prime" for s in spans)

    def test_every_arrival_gets_an_emit_event(self, tmp_path):
        spans = self._traced_run(tmp_path)
        arrivals = [s for s in spans if s.kind == "arrival"]
        emits = [s for s in spans if s.kind == "emit"]
        assert len(arrivals) == len(emits) > 0
        arrival_ids = {s.span_id for s in arrivals}
        assert all(e.parent_id in arrival_ids for e in emits)

    def test_histograms_filled_after_flush(self, tmp_path):
        self._traced_run(tmp_path)
        snap = metrics.histogram_snapshot("solver.")
        assert snap["solver.solve_tasks_seconds"]["count"] > 0
        assert snap["solver.system_solve_seconds"]["count"] > 0

    def test_metrics_only_mode_has_no_tracer(self):
        reset_counters()
        with tracing.observability(None) as tracer:
            assert tracer is None
            _run_runtime()
            assert tracing.observability_enabled()
        snap = metrics.histogram_snapshot("solver.")
        assert snap["solver.solve_tasks_seconds"]["count"] > 0

    def test_enable_twice_never_stacks(self, tmp_path):
        t1 = tracing.enable_observability(str(tmp_path / "a.jsonl"))
        t2 = tracing.enable_observability(str(tmp_path / "b.jsonl"))
        assert t1 is not t2
        assert tracing.current_tracer() is t2
        hook = batch_solver.solver_instrumentation()[0]
        # The installed hook belongs to the second enable: its spans go
        # to t2, so the first enable's state is fully torn down.
        assert hook.tracer is t2
        tracing.disable_observability()
        assert batch_solver.solver_instrumentation() == (None, None, None, None)

    def test_reentrant_site_falls_back_to_allocated_cm(self):
        records = []
        tracer = Tracer(records)
        site = tracing._TimedSpanSite(tracer, None, "s", "solve", "n")
        with site(1):
            inner = site(2)  # busy -> allocated per-call manager
            assert isinstance(inner, tracing._TimedSpanCM)
            with inner:
                pass
        tracer.flush()
        assert len(records) == 2
        by_n = {r["attrs"]["n"]: r for r in records}
        assert by_n[2]["parent_id"] == by_n[1]["span_id"]


# ----------------------------------------------------------------------
# the zero-cost pin: a disabled run makes no instrumentation calls
# ----------------------------------------------------------------------
class TestZeroCostWhenDisabled:
    def test_hooks_are_none_after_disable(self):
        tracing.enable_observability(None)
        tracing.disable_observability()
        assert batch_solver.solver_instrumentation() == (None, None, None, None)
        assert equation_system.system_instrumentation() == (None, None)
        assert plan.operator_trace() is None

    def test_disabled_run_makes_zero_instrumentation_calls(
        self, monkeypatch
    ):
        assert not tracing.observability_enabled()

        def forbid(*a, **k):
            raise AssertionError("instrumentation call on a disabled run")

        monkeypatch.setattr(metrics.Histogram, "observe", forbid)
        monkeypatch.setattr(Tracer, "start", forbid)
        monkeypatch.setattr(Tracer, "finish", forbid)
        monkeypatch.setattr(Tracer, "event", forbid)
        monkeypatch.setattr(tracing._TimedSpanSite, "__enter__", forbid)
        monkeypatch.setattr(tracing._OperatorSite, "__enter__", forbid)
        for shards in (1, 2):
            outputs, _ = _run_runtime(num_shards=shards)
            assert any(len(o) for o in outputs)

    def test_scheduler_fast_path_reads_no_clock(self, monkeypatch):
        import repro.engine.scheduler as sched

        class NoClock:
            def perf_counter(self):
                raise AssertionError("clock read on the disabled path")

        real_step = QueryRuntime.step
        calls = {"n": 0}

        def counting_step(self, *args, **kwargs):
            calls["n"] += 1
            return real_step(self, *args, **kwargs)

        monkeypatch.setattr(QueryRuntime, "step", counting_step)
        monkeypatch.setattr(sched, "time", NoClock())
        outputs, _ = _run_runtime()
        assert calls["n"] > 0 and any(len(o) for o in outputs)


# ----------------------------------------------------------------------
# the slow-solve watchdog
# ----------------------------------------------------------------------
class TestSlowSolveWatchdog:
    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            SlowSolveWatchdog(0.0)
        with pytest.raises(ValueError):
            SlowSolveWatchdog(-1.0)

    def test_counts_and_flags(self):
        reset_counters()
        wd = SlowSolveWatchdog(0.01)
        assert wd.check("q", ("k",), 0.005) is False
        assert wd.check("q", ("k",), 0.02) is True
        assert wd.items_checked == 2
        assert wd.slow_solves == 1
        snap = metrics.counter_snapshot("resilience.watchdog")
        assert snap["resilience.watchdog.items_checked"] == 2
        assert snap["resilience.watchdog.slow_solves"] == 1

    def test_runtime_surfaces_watchdog_stats(self):
        _, rt = _run_runtime(budget_s=1e-12)  # everything is "slow"
        stats = rt.resilience_stats()["watchdog"]
        assert stats["items_checked"] > 0
        assert stats["slow_solves"] == stats["items_checked"]

    def test_watchdog_events_appear_in_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with tracing.observability(str(path)):
            _run_runtime(budget_s=1e-12)
        spans = read_trace(path)
        dogs = [s for s in spans if s.kind == "watchdog"]
        assert dogs
        assert all(s.attrs["seconds"] >= 0 for s in dogs)
