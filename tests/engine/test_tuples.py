"""Tests for tuples and schemas."""

import pytest

from repro.engine import Schema, StreamDef, StreamTuple


class TestStreamTuple:
    def test_time_property(self):
        t = StreamTuple({"time": 3.5, "x": 1.0})
        assert t.time == 3.5

    def test_key_extraction(self):
        t = StreamTuple({"time": 0.0, "id": "v1", "region": 2})
        assert t.key(("id", "region")) == ("v1", 2)
        assert t.key(()) == ()

    def test_env_unaliased(self):
        t = StreamTuple({"time": 0.0, "x": 1.0})
        assert t.env() == {"time": 0.0, "x": 1.0}

    def test_env_aliased_exposes_both(self):
        t = StreamTuple({"time": 0.0, "x": 1.0})
        env = t.env("S")
        assert env["S.x"] == 1.0
        assert env["x"] == 1.0


class TestSchema:
    def test_value_fields(self):
        s = Schema(("time", "id", "x", "y"), key_fields=("id",))
        assert s.value_fields == ("x", "y")

    def test_rejects_missing_key_field(self):
        with pytest.raises(ValueError):
            Schema(("time", "x"), key_fields=("id",))

    def test_rejects_missing_time_field(self):
        with pytest.raises(ValueError):
            Schema(("x",))

    def test_make_tuple_validates(self):
        s = Schema(("time", "x"))
        t = s.make_tuple({"time": 1.0, "x": 2.0})
        assert t.time == 1.0
        with pytest.raises(ValueError):
            s.make_tuple({"time": 1.0})

    def test_stream_def(self):
        s = Schema(("time", "x"))
        d = StreamDef("objects", s)
        assert d.name == "objects"
