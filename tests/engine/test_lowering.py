"""Tests for the discrete lowering pass (logical plan -> tuple plan)."""

import pytest

from repro.bench.queries import following_planned, macd_planned
from repro.core.errors import PlanError
from repro.engine import (
    DiscreteFilter,
    DiscreteMap,
    DiscreteNestedLoopJoin,
    DiscreteWindowAggregate,
    StreamTuple,
)
from repro.engine.lowering import to_discrete_plan
from repro.query import parse_query, plan_query


def lowered(sql):
    return to_discrete_plan(plan_query(parse_query(sql)))


class TestLoweringShapes:
    def test_filter_plan(self):
        q = lowered("select * from s where x > 0")
        ops = q.plan.operators()
        assert len(ops) == 1
        assert isinstance(ops[0], DiscreteFilter)

    def test_macd_operator_set(self):
        q = to_discrete_plan(macd_planned(short=4.0, long=12.0, slide=2.0))
        ops = q.plan.operators()
        kinds = sorted(type(op).__name__ for op in ops)
        assert kinds.count("DiscreteWindowAggregate") == 2
        assert kinds.count("DiscreteNestedLoopJoin") == 1
        assert kinds.count("DiscreteFilter") == 1  # the WHERE clause
        aggs = [op for op in ops if isinstance(op, DiscreteWindowAggregate)]
        assert sorted(a.window for a in aggs) == [4.0, 12.0]
        assert all(a.group_fields == ("symbol",) for a in aggs)

    def test_following_operator_set(self):
        q = to_discrete_plan(
            following_planned(join_window=2.0, avg_window=30.0, slide=5.0)
        )
        ops = q.plan.operators()
        joins = [op for op in ops if isinstance(op, DiscreteNestedLoopJoin)]
        aggs = [op for op in ops if isinstance(op, DiscreteWindowAggregate)]
        assert len(joins) == 1 and joins[0].window == 2.0
        assert len(aggs) == 1
        assert set(aggs[0].group_fields) == {"id1", "id2"}

    def test_qualified_aggregate_attr_stripped(self):
        q = lowered(
            "select avg(S.price) as m from trades [size 4 advance 2] as S"
        )
        agg = next(
            op for op in q.plan.operators()
            if isinstance(op, DiscreteWindowAggregate)
        )
        assert agg.attr == "price"


class TestLoweredExecution:
    def test_push_unknown_stream(self):
        q = lowered("select * from s where x > 0")
        with pytest.raises(PlanError):
            q.push("other", StreamTuple({"time": 0.0, "x": 1.0}))

    def test_self_join_fans_out(self):
        q = lowered("select * from s a join s b on (a.x < b.x)")
        # One tuple reaches both scans; it pairs with itself across the
        # two join ports (a.x < b.x is false for equal values, so no
        # output, but both sources must have consumed it).
        q.push("s", StreamTuple({"time": 0.0, "x": 1.0}))
        stats = q.plan.stats()
        source_counts = [
            v for k, v in stats.items() if k.split(":")[1].startswith("source")
        ]
        assert all(c == (1, 1) for c in source_counts)
        assert len(source_counts) == 2

    def test_flush_drains_aggregates(self):
        q = lowered("select avg(x) as m from s [size 4 advance 2]")
        for i in range(6):
            q.push("s", StreamTuple({"time": float(i), "x": 2.0}))
        flushed = q.flush()
        assert flushed
        assert all(row["m"] == pytest.approx(2.0) for row in flushed)

    def test_reset_restarts(self):
        q = lowered("select avg(x) as m from s [size 4 advance 2]")
        q.push("s", StreamTuple({"time": 0.0, "x": 2.0}))
        q.reset()
        assert q.flush() == []

    def test_macd_end_to_end_tuple_counts(self):
        from repro.workloads import NyseConfig, NyseTradeGenerator

        q = to_discrete_plan(macd_planned(short=2.0, long=4.0, slide=1.0))
        gen = NyseTradeGenerator(NyseConfig(num_symbols=2, rate=50.0, seed=27))
        outputs = []
        for tup in gen.tuples(1000):
            outputs.extend(q.push("trades", tup))
        outputs.extend(q.flush())
        # Every output satisfies the WHERE clause.
        assert all(row["s.ap"] > row["l.ap"] for row in outputs)
