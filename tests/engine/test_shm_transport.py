"""Shared-memory shard transport: round-trip, parity, lifecycle.

The transport contract has three legs:

* **byte-level**: a packed request segment and result arena round-trip
  a row batch through :func:`solve_rows_shm_worker` with results
  identical to the in-process kernel and to the pickled-payload worker
  (the transport moves bytes, never arithmetic);
* **lifecycle**: every segment a dispatcher creates is unlinked by the
  time it is done with the round — including broken-executor and
  degraded-transport paths — so ``/dev/shm`` never accumulates
  (:func:`active_segments` is the probe);
* **runtime parity**: a forced-``parallel=True`` sharded runtime stays
  bit-identical to the serial runtime, faults and breaker trips
  included, exactly like the inline-sharded one.
"""

import random

import pytest

from repro.core.batch_solver import real_roots_rows, solve_rows_worker
from repro.core.polynomial import Polynomial
from repro.core.segment import Segment
from repro.core.solve_cache import (
    reset_global_solve_cache,
    reset_worker_root_cache,
)
from repro.core.transform import to_continuous_plan
from repro.engine import shm_transport
from repro.engine.metrics import counter_snapshot, reset_counters
from repro.engine.parallel import ParallelSolveDispatcher
from repro.engine.resilience import BreakerConfig
from repro.engine.scheduler import QueryRuntime
from repro.query import parse_query, plan_query
from repro.testing import inject_solver_faults

DOMAIN = (0.0, 10.0)


def _rows(seed: int = 11, n: int = 40) -> list[tuple]:
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        degree = rng.randint(1, 5)
        coeffs = tuple(rng.uniform(-3.0, 3.0) for _ in range(degree + 1))
        rows.append((coeffs, *DOMAIN))
    return rows


def _pack(rows):
    lengths, lo, hi, coeffs = ParallelSolveDispatcher._pack_arrays(rows)
    return shm_transport.pack_round(lengths, lo, hi, coeffs)


class TestWorkerRoundTrip:
    def test_matches_inline_kernel(self):
        rows = _rows()
        request, arena = _pack(rows)
        try:
            out = shm_transport.solve_rows_shm_worker(
                {
                    "request": request.meta(),
                    "result": arena.meta(),
                    "cache": False,
                    "shard": 0,
                }
            )
            offsets, flat = arena.read()
        finally:
            request.destroy()
            arena.destroy()
        assert out["failures"] == []
        assert out["n_roots"] == int(offsets[-1]) == len(flat)
        expect = real_roots_rows(rows)
        got = [
            [float(v) for v in flat[offsets[i] : offsets[i + 1]]]
            for i in range(len(rows))
        ]
        assert got == expect
        assert shm_transport.active_segments() == []

    def test_matches_pickle_worker_bit_exactly(self):
        rows = _rows(seed=23)
        lengths, lo, hi, coeffs = ParallelSolveDispatcher._pack_arrays(rows)
        via_pickle = solve_rows_worker(
            {
                "coeffs": coeffs,
                "lengths": lengths,
                "lo": lo,
                "hi": hi,
                "cache": False,
                "shard": 0,
            }
        )
        request, arena = _pack(rows)
        try:
            out = shm_transport.solve_rows_shm_worker(
                {
                    "request": request.meta(),
                    "result": arena.meta(),
                    "cache": False,
                    "shard": 0,
                }
            )
            offsets, flat = arena.read()
        finally:
            request.destroy()
            arena.destroy()
        assert list(offsets) == list(via_pickle["offsets"])
        assert list(flat) == list(via_pickle["roots"])
        assert out["failures"] == via_pickle["failures"]

    def test_failing_rows_reported_not_written(self):
        # A zero polynomial fails typed; its root span stays empty and
        # the healthy neighbours are unaffected.
        rows = [
            ((1.0, 1.0), *DOMAIN),
            ((0.0,), *DOMAIN),
            ((-4.0, 0.0, 1.0), *DOMAIN),
        ]
        request, arena = _pack(rows)
        try:
            out = shm_transport.solve_rows_shm_worker(
                {
                    "request": request.meta(),
                    "result": arena.meta(),
                    "cache": False,
                    "shard": 0,
                }
            )
            offsets, flat = arena.read()
        finally:
            request.destroy()
            arena.destroy()
        assert [idx for idx, _, _ in out["failures"]] == [1]
        assert offsets[1] == offsets[2]  # empty span for the failed row
        assert [float(v) for v in flat[offsets[2] : offsets[3]]] == [2.0]
        assert shm_transport.active_segments() == []


class TestSegmentLifecycle:
    def test_pack_round_allocates_and_destroy_unlinks(self):
        rows = _rows(n=8)
        request, arena = _pack(rows)
        names = {request.shm.name, arena.shm.name}
        assert names <= set(shm_transport.active_segments())
        request.destroy()
        arena.destroy()
        assert shm_transport.active_segments() == []

    def test_destroy_is_idempotent(self):
        request, arena = _pack(_rows(n=3))
        for _ in range(2):
            request.destroy()
            arena.destroy()
        assert shm_transport.active_segments() == []

    def test_dispatcher_leaves_no_segments(self):
        rows = _rows(n=30)
        dispatcher = ParallelSolveDispatcher(2, parallel=True)
        try:
            by_shard = {0: rows[:15], 1: rows[15:]}
            primed = dispatcher.prime(by_shard)
            stats = dispatcher.stats()
            if not dispatcher.inline_shards:
                assert stats["transport"] == "shm"
                assert stats["shm_rounds"] == 2
                assert stats["shm_bytes_shipped"] > 0
                assert primed == len(rows)
        finally:
            dispatcher.shutdown()
        assert shm_transport.active_segments() == []

    def test_inline_dispatcher_never_ships_segments(self):
        dispatcher = ParallelSolveDispatcher(2, parallel=False)
        try:
            dispatcher.prime({0: _rows(n=10)})
            assert dispatcher.shm_rounds == 0
        finally:
            dispatcher.shutdown()
        assert shm_transport.active_segments() == []


class TestDegradation:
    def test_falls_back_to_pickle_when_shm_unavailable(self, monkeypatch):
        def broken(*args, **kwargs):
            raise OSError("no /dev/shm in this container")

        monkeypatch.setattr(shm_transport, "pack_round", broken)
        rows = _rows(n=20)
        dispatcher = ParallelSolveDispatcher(2, parallel=True)
        try:
            primed = dispatcher.prime({0: rows[:10], 1: rows[10:]})
            assert primed == len(rows)
            assert dispatcher._shm_broken or dispatcher.inline_shards
            assert dispatcher.stats()["transport"] in ("pickle", "shm")
            if not dispatcher.inline_shards:
                # Pool shards actually hit the broken allocator: the
                # degradation must stick and be reported honestly.
                assert dispatcher._shm_broken
                assert dispatcher.stats()["transport"] == "pickle"
                assert dispatcher.shm_rounds == 0
        finally:
            dispatcher.shutdown()
        assert shm_transport.active_segments() == []

    def test_transport_name_validated(self):
        with pytest.raises(ValueError):
            ParallelSolveDispatcher(2, transport="carrier-pigeon")


# ----------------------------------------------------------------------
# forced-parallel runtime parity (process pools even on 1 CPU)
# ----------------------------------------------------------------------
FILT_SQL = "select * from ticks where x > 1"


def _trace(seed=5, keys=("a", "b"), rows_per_key=4, degree=4):
    rng = random.Random(seed)
    events = []
    clock = {k: 0.0 for k in keys}
    for _ in range(rows_per_key):
        for k in keys:
            start = clock[k]
            coeffs = [rng.uniform(-2, 2) for _ in range(degree + 1)]
            events.append(
                (
                    "ticks",
                    Segment(
                        (k,), start, start + rng.uniform(0.5, 2.0),
                        {"x": Polynomial(coeffs)},
                        constants={"sym": k},
                    ),
                )
            )
            clock[k] = start + rng.uniform(0.2, 1.0)
    return events


def _drive(num_shards, parallel, events, fault_rate=0.0, breaker=None):
    reset_global_solve_cache()
    reset_worker_root_cache()
    reset_counters()
    kw = {} if breaker is None else {"breaker": breaker}
    rt = QueryRuntime(
        num_shards=num_shards, parallel=parallel, batch_size=32, **kw
    )
    try:
        rt.register(
            "filt", to_continuous_plan(plan_query(parse_query(FILT_SQL)))
        )
        for stream, seg in events:
            rt.enqueue(stream, seg)
        if fault_rate:
            with inject_solver_faults(rate=fault_rate):
                rt.run_until_idle()
            for stream, seg in events:
                rt.enqueue(
                    stream,
                    Segment(
                        seg.key, seg.t_start + 1000.0, seg.t_end + 1000.0,
                        dict(seg.models), constants=dict(seg.constants),
                    ),
                )
        rt.run_until_idle()
        outputs = [
            (
                s.key, s.t_start, s.t_end,
                sorted(s.constants.items()),
                sorted((a, repr(p)) for a, p in s.models.items()),
            )
            for s in rt.outputs("filt")
        ]
        counters = {
            **counter_snapshot("equation_system"),
            **counter_snapshot("resilience"),
            "step_errors": rt.step_errors,
        }
    finally:
        rt.close()
    return outputs, counters


class TestForcedParallelParity:
    def test_serial_vs_shard_parity(self):
        events = _trace()
        serial_out, serial_counters = _drive(1, False, events)
        shard_out, shard_counters = _drive(2, True, events)
        assert shard_out == serial_out
        assert shard_counters == serial_counters
        assert shm_transport.active_segments() == []

    def test_breaker_tripping_trace_parity(self):
        events = _trace(seed=9)
        breaker = BreakerConfig(
            failure_threshold=2, backoff=3, probe_successes=1
        )
        serial_out, serial_counters = _drive(
            1, False, events, fault_rate=1.0, breaker=breaker
        )
        shard_out, shard_counters = _drive(
            2, True, events, fault_rate=1.0, breaker=breaker
        )
        assert serial_counters["resilience.breaker.opened"] > 0
        assert shard_out == serial_out
        assert shard_counters == serial_counters
        assert shm_transport.active_segments() == []
