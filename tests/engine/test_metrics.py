"""Tests for the measurement primitives (stopwatch, run metrics, runner)."""

import time

import pytest

from repro.engine.metrics import (
    QueueingModel,
    RunMetrics,
    Stopwatch,
    measure_run,
    measure_service_time,
)


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert 0.005 < sw.elapsed < 0.5

    def test_accumulates_across_uses(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.005)
        first = sw.elapsed
        with sw:
            time.sleep(0.005)
        assert sw.elapsed > first


class TestRunMetrics:
    def test_throughput(self):
        m = RunMetrics(items_in=100, items_out=50, elapsed_seconds=2.0)
        assert m.throughput == 50.0
        assert m.service_time == 0.02

    def test_zero_elapsed(self):
        m = RunMetrics(items_in=10, items_out=10, elapsed_seconds=0.0)
        assert m.throughput == float("inf")

    def test_zero_items(self):
        m = RunMetrics(items_in=0, items_out=0, elapsed_seconds=1.0)
        assert m.service_time == 0.0


class TestMeasureHelpers:
    def test_measure_run_uses_items_attribute(self):
        def feed():
            return 7

        feed.items = 100
        m = measure_run(feed)
        assert m.items_in == 100
        assert m.items_out == 7

    def test_measure_run_defaults_items_to_outputs(self):
        m = measure_run(lambda: 5)
        assert m.items_in == 5

    def test_measure_service_time_counts_list_outputs(self):
        def process(item):
            return [item, item] if item % 2 == 0 else []

        m = measure_service_time(process, list(range(10)))
        assert m.items_in == 10
        assert m.items_out == 10  # five even items, two outputs each


class TestQueueingModelEdges:
    def test_exactly_at_capacity(self):
        m = QueueingModel(service_time=0.001, queue_capacity=1000)
        r = m.offered(1000.0)
        # At the knife edge the queue stays bounded near zero growth.
        assert r.achieved_throughput == pytest.approx(1000.0, rel=0.05)

    def test_thrash_factor_deepens_collapse(self):
        gentle = QueueingModel(0.001, queue_capacity=500, thrash_factor=0.1)
        harsh = QueueingModel(0.001, queue_capacity=500, thrash_factor=5.0)
        assert (
            harsh.offered(3000.0).achieved_throughput
            < gentle.offered(3000.0).achieved_throughput
        )

    def test_queue_growth_reported(self):
        m = QueueingModel(0.001, queue_capacity=100)
        r = m.offered(5000.0, duration=10.0)
        assert r.final_queue_length > 100
        assert r.saturated

    def test_sweep_shapes(self):
        m = QueueingModel(0.001, queue_capacity=1000)
        results = m.sweep([100, 500, 900, 2000, 4000])
        achieved = [r.achieved_throughput for r in results]
        # Rises with offered rate until capacity, then collapses.
        assert achieved[1] > achieved[0]
        assert max(achieved) <= 1000 * 1.01
        assert achieved[-1] < achieved[-2]
