"""Tests for the measurement primitives (stopwatch, run metrics, runner)
and the observability exports (histograms, snapshots)."""

import json
import time

import pytest

from repro.engine.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    CounterRegistry,
    Histogram,
    MetricsSnapshot,
    QueueingModel,
    RunMetrics,
    Stopwatch,
    measure_run,
    measure_service_time,
)


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert 0.005 < sw.elapsed < 0.5

    def test_accumulates_across_uses(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.005)
        first = sw.elapsed
        with sw:
            time.sleep(0.005)
        assert sw.elapsed > first


class TestRunMetrics:
    def test_throughput(self):
        m = RunMetrics(items_in=100, items_out=50, elapsed_seconds=2.0)
        assert m.throughput == 50.0
        assert m.service_time == 0.02

    def test_zero_elapsed(self):
        m = RunMetrics(items_in=10, items_out=10, elapsed_seconds=0.0)
        assert m.throughput == float("inf")

    def test_zero_items(self):
        m = RunMetrics(items_in=0, items_out=0, elapsed_seconds=1.0)
        assert m.service_time == 0.0


class TestMeasureHelpers:
    def test_measure_run_uses_items_attribute(self):
        def feed():
            return 7

        feed.items = 100
        m = measure_run(feed)
        assert m.items_in == 100
        assert m.items_out == 7

    def test_measure_run_defaults_items_to_outputs(self):
        m = measure_run(lambda: 5)
        assert m.items_in == 5

    def test_measure_service_time_counts_list_outputs(self):
        def process(item):
            return [item, item] if item % 2 == 0 else []

        m = measure_service_time(process, list(range(10)))
        assert m.items_in == 10
        assert m.items_out == 10  # five even items, two outputs each


class TestHistogram:
    def test_observe_buckets_and_overflow(self):
        h = Histogram("h", bounds=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        assert h.counts == [1, 2, 1]
        assert h.count == 4
        assert h.mean == pytest.approx((0.05 + 0.5 + 0.5 + 5.0) / 4)

    def test_bound_value_lands_in_its_bucket(self):
        # Bounds are upper bounds (Prometheus ``le`` semantics).
        h = Histogram("h", bounds=(0.1, 1.0))
        h.observe(0.1)
        assert h.counts == [1, 0, 0]

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=())

    def test_merge_adds_counts_exactly(self):
        a = Histogram("h", bounds=(0.1, 1.0))
        b = Histogram("h", bounds=(0.1, 1.0))
        for v in (0.05, 0.5):
            a.observe(v)
        for v in (0.5, 5.0):
            b.observe(v)
        a.merge(b)
        assert a.counts == [1, 2, 1]
        assert a.count == 4
        assert a.total == pytest.approx(0.05 + 0.5 + 0.5 + 5.0)

    def test_merge_accepts_as_dict_form(self):
        # The shard-worker payload path: a worker ships ``as_dict()``
        # home and the parent merges the mapping directly.
        a = Histogram("h")
        b = Histogram("h")
        b.observe(0.002)
        a.merge(b.as_dict())
        assert a.count == 1

    def test_merge_rejects_different_bounds(self):
        a = Histogram("h", bounds=(0.1, 1.0))
        b = Histogram("h", bounds=(0.2, 1.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_dict_round_trip(self):
        h = Histogram("h")
        for v in (1e-6, 1e-3, 0.3, 42.0):
            h.observe(v)
        back = Histogram.from_dict("h", json.loads(json.dumps(h.as_dict())))
        assert back.counts == h.counts
        assert back.bounds == h.bounds
        assert back.total == pytest.approx(h.total)

    def test_from_dict_rejects_malformed_counts(self):
        h = Histogram("h", bounds=(1.0,))
        bad = h.as_dict()
        bad["counts"] = [0]  # must be len(bounds) + 1
        with pytest.raises(ValueError):
            Histogram.from_dict("h", bad)

    def test_quantile_interpolates(self):
        h = Histogram("h", bounds=(1.0, 2.0, 3.0))
        for v in (0.5, 1.5, 2.5, 2.6):
            h.observe(v)
        assert h.quantile(0.0) == 0.0 or h.quantile(0.0) <= 1.0
        assert 2.0 <= h.quantile(1.0) <= 3.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_quantile_overflow_reports_last_bound(self):
        h = Histogram("h", bounds=(1.0,))
        h.observe(100.0)
        assert h.quantile(0.99) == 1.0

    def test_default_bounds_are_ascending(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            DEFAULT_LATENCY_BUCKETS
        )


class TestMetricsSnapshot:
    def _registry(self):
        reg = CounterRegistry()
        reg.counter("solver.row_solves").bump(7)
        reg.gauge("cache.entries").set(12.0)
        h = reg.histogram("solver.latency", bounds=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        return reg

    def test_collect_and_as_dict(self):
        snap = MetricsSnapshot.collect(registry=self._registry())
        d = snap.as_dict()
        assert d["counters"]["solver.row_solves"] == 7
        assert d["gauges"]["cache.entries"] == 12.0
        assert d["histograms"]["solver.latency"]["count"] == 2

    def test_collect_prefix_restricts(self):
        snap = MetricsSnapshot.collect(
            prefix="solver.", registry=self._registry()
        )
        assert "cache.entries" not in snap.gauges
        assert "solver.row_solves" in snap.counters

    def test_json_round_trips(self):
        snap = MetricsSnapshot.collect(registry=self._registry())
        assert json.loads(snap.to_json()) == snap.as_dict()

    def test_prometheus_exposition_shape(self):
        text = MetricsSnapshot.collect(
            registry=self._registry()
        ).to_prometheus()
        assert "# TYPE repro_solver_row_solves counter" in text
        assert "repro_solver_row_solves 7" in text
        assert "# TYPE repro_cache_entries gauge" in text
        assert 'repro_solver_latency_bucket{le="0.1"} 1' in text
        # Cumulative buckets: the +Inf bucket equals the total count.
        assert 'repro_solver_latency_bucket{le="+Inf"} 2' in text
        assert "repro_solver_latency_count 2" in text
        assert text.endswith("\n")

    def test_write_json_and_prom(self, tmp_path):
        snap = MetricsSnapshot.collect(registry=self._registry())
        jpath = tmp_path / "m.json"
        ppath = tmp_path / "m.prom"
        snap.write(jpath)
        snap.write(ppath)
        assert json.loads(jpath.read_text()) == snap.as_dict()
        assert ppath.read_text().startswith("# TYPE")


class TestRegistryReset:
    def test_reset_clears_histograms_too(self):
        reg = CounterRegistry()
        reg.counter("c").bump()
        reg.gauge("g").set(3.0)
        reg.histogram("h").observe(0.5)
        reg.reset()
        assert reg.value("c") == 0
        assert reg.gauge_snapshot()["g"] == 0.0
        assert reg.histogram_snapshot()["h"]["count"] == 0

    def test_named_reset_leaves_others(self):
        reg = CounterRegistry()
        reg.counter("a").bump()
        reg.counter("b").bump()
        reg.reset("a")
        assert reg.value("a") == 0
        assert reg.value("b") == 1


class TestQueueingModelEdges:
    def test_exactly_at_capacity(self):
        m = QueueingModel(service_time=0.001, queue_capacity=1000)
        r = m.offered(1000.0)
        # At the knife edge the queue stays bounded near zero growth.
        assert r.achieved_throughput == pytest.approx(1000.0, rel=0.05)

    def test_thrash_factor_deepens_collapse(self):
        gentle = QueueingModel(0.001, queue_capacity=500, thrash_factor=0.1)
        harsh = QueueingModel(0.001, queue_capacity=500, thrash_factor=5.0)
        assert (
            harsh.offered(3000.0).achieved_throughput
            < gentle.offered(3000.0).achieved_throughput
        )

    def test_queue_growth_reported(self):
        m = QueueingModel(0.001, queue_capacity=100)
        r = m.offered(5000.0, duration=10.0)
        assert r.final_queue_length > 100
        assert r.saturated

    def test_sweep_shapes(self):
        m = QueueingModel(0.001, queue_capacity=1000)
        results = m.sweep([100, 500, 900, 2000, 4000])
        achieved = [r.achieved_throughput for r in results]
        # Rises with offered rate until capacity, then collapses.
        assert achieved[1] > achieved[0]
        assert max(achieved) <= 1000 * 1.01
        assert achieved[-1] < achieved[-2]


class TestThreadSafety:
    """Regression pin for cross-thread counter updates.

    The server splits metric writers across two threads (event loop and
    engine); ``Counter.bump`` is a read-modify-write, so without the
    per-counter lock concurrent bumps lose increments.  Histograms stay
    deliberately unlocked under a documented single-writer invariant —
    see the :class:`~repro.engine.metrics.Histogram` docstring.
    """

    def test_concurrent_bumps_are_exact(self):
        import threading

        reg = CounterRegistry()
        counter = reg.counter("hammered")
        per_thread, threads = 20_000, 2
        barrier = threading.Barrier(threads)

        def hammer():
            barrier.wait()
            for _ in range(per_thread):
                counter.bump()

        workers = [
            threading.Thread(target=hammer) for _ in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert counter.value == per_thread * threads

    def test_concurrent_gauge_adds_are_exact(self):
        import threading

        reg = CounterRegistry()
        gauge = reg.gauge("g")
        barrier = threading.Barrier(2)

        def add():
            barrier.wait()
            for _ in range(10_000):
                gauge.add(1.0)

        workers = [threading.Thread(target=add) for _ in range(2)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert gauge.value == pytest.approx(20_000.0)

    def test_concurrent_get_or_create_returns_one_object(self):
        import threading

        reg = CounterRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def create():
            barrier.wait()
            seen.append(reg.counter("shared"))

        workers = [threading.Thread(target=create) for _ in range(8)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert all(c is seen[0] for c in seen)
