"""Tests for the discrete hash join."""

import pytest

from repro.core.expr import Attr
from repro.core.predicate import Comparison
from repro.core.relation import Rel
from repro.engine import DiscreteHashJoin, DiscreteNestedLoopJoin, StreamTuple


def tup(time, **attrs):
    return StreamTuple({"time": time, **attrs})


class TestHashJoin:
    def test_equi_key_match(self):
        j = DiscreteHashJoin("sym", "sym", window=1.0)
        j.process(tup(0.0, sym="A", x=1.0), port=0)
        out = j.process(tup(0.5, sym="A", y=2.0), port=1)
        assert len(out) == 1
        assert out[0]["L.x"] == 1.0
        assert out[0]["R.y"] == 2.0

    def test_different_keys_never_pair(self):
        j = DiscreteHashJoin("sym", "sym", window=1.0)
        j.process(tup(0.0, sym="A", x=1.0), port=0)
        assert j.process(tup(0.0, sym="B", y=2.0), port=1) == []
        # And the probe count stays zero: no bucket was touched.
        assert j.probes == 0

    def test_window_band(self):
        j = DiscreteHashJoin("sym", "sym", window=1.0)
        j.process(tup(0.0, sym="A", x=1.0), port=0)
        assert j.process(tup(5.0, sym="A", y=2.0), port=1) == []

    def test_residual_predicate(self):
        residual = Comparison(Attr("L.x"), Rel.LT, Attr("R.y"))
        j = DiscreteHashJoin("sym", "sym", residual=residual, window=1.0)
        j.process(tup(0.0, sym="A", x=5.0), port=0)
        assert j.process(tup(0.1, sym="A", y=1.0), port=1) == []
        out = j.process(tup(0.2, sym="A", y=9.0), port=1)
        assert len(out) == 1

    def test_eviction_bounds_state(self):
        j = DiscreteHashJoin("sym", "sym", window=1.0)
        for i in range(50):
            j.process(tup(float(i), sym="A", x=1.0), port=0)
        assert j.state_size <= 3

    def test_invalid_port(self):
        j = DiscreteHashJoin("sym", "sym")
        with pytest.raises(ValueError):
            j.process(tup(0.0, sym="A"), port=3)

    def test_agrees_with_nested_loop_on_equi_join(self):
        """Hash join produces exactly the nested-loop join's results
        when the nested-loop predicate is the same equi comparison."""
        import random

        rng = random.Random(9)
        pred = Comparison(Attr("L.sym"), Rel.EQ, Attr("R.sym"))
        nl = DiscreteNestedLoopJoin(pred, window=2.0)
        hj = DiscreteHashJoin("sym", "sym", window=2.0)
        out_nl, out_hj = [], []
        t = 0.0
        for i in range(200):
            t += rng.uniform(0.01, 0.2)
            item = tup(t, sym=f"s{rng.randrange(4)}", v=float(i))
            port = i % 2
            out_nl += nl.process(item, port)
            out_hj += hj.process(item, port)
        key = lambda o: (o.time, o.get("L.v"), o.get("R.v"))
        assert sorted(map(key, out_nl)) == sorted(map(key, out_hj))
        # ...while probing far fewer candidate pairs.
        assert hj.probes < nl.comparisons
