"""Tests for the discrete baseline operators."""

import pytest

from repro.core.expr import Attr, Const, Sub
from repro.core.operators.map_op import Projection
from repro.core.predicate import And, Comparison
from repro.core.relation import Rel
from repro.engine import (
    DiscreteFilter,
    DiscreteMap,
    DiscreteNestedLoopJoin,
    DiscreteWindowAggregate,
    StreamTuple,
)


def tup(time, **attrs):
    return StreamTuple({"time": time, **attrs})


def gt(attr, c):
    return Comparison(Attr(attr), Rel.GT, Const(c))


class TestDiscreteFilter:
    def test_pass_and_drop(self):
        f = DiscreteFilter(gt("x", 0.0))
        assert f.process(tup(0, x=1.0)) == [tup(0, x=1.0)]
        assert f.process(tup(0, x=-1.0)) == []
        assert f.tuples_processed == 2

    def test_aliased(self):
        f = DiscreteFilter(gt("S.x", 0.0), alias="S")
        assert len(f.process(tup(0, x=1.0))) == 1

    def test_string_equality(self):
        p = Comparison(Attr("sym"), Rel.EQ, Attr("wanted"))
        f = DiscreteFilter(p)
        assert len(f.process(tup(0, sym="A", wanted="A"))) == 1


class TestDiscreteMap:
    def test_projection_arithmetic(self):
        m = DiscreteMap([Projection("d", Sub(Attr("a"), Attr("b")))])
        out = m.process(tup(1.0, a=5.0, b=2.0))
        assert out[0]["d"] == 3.0
        assert out[0].time == 1.0

    def test_non_numeric_passthrough_attr(self):
        m = DiscreteMap([Projection("s", Attr("sym"))])
        out = m.process(tup(0, sym="IBM", x=1.0))
        assert out[0]["s"] == "IBM"

    def test_explicit_passthrough_fields(self):
        m = DiscreteMap([Projection("y", Attr("x"))], passthrough=("sym",))
        out = m.process(tup(0, sym="IBM", x=1.0))
        assert out[0]["sym"] == "IBM"


class TestNestedLoopJoin:
    def join(self, window=1.0):
        pred = Comparison(Attr("L.x"), Rel.LT, Attr("R.y"))
        return DiscreteNestedLoopJoin(pred, window=window)

    def test_basic_match(self):
        j = self.join()
        j.process(tup(0.0, x=1.0), port=0)
        out = j.process(tup(0.5, y=5.0), port=1)
        assert len(out) == 1
        assert out[0]["L.x"] == 1.0
        assert out[0]["R.y"] == 5.0

    def test_no_match_outside_window(self):
        j = self.join(window=1.0)
        j.process(tup(0.0, x=1.0), port=0)
        assert j.process(tup(5.0, y=5.0), port=1) == []

    def test_predicate_filters_pairs(self):
        j = self.join()
        j.process(tup(0.0, x=10.0), port=0)
        assert j.process(tup(0.1, y=5.0), port=1) == []

    def test_quadratic_comparison_count(self):
        # With everything inside one window, comparisons grow as n^2 / 2.
        j = self.join(window=100.0)
        n = 20
        for i in range(n):
            j.process(tup(i * 0.01, x=1.0), port=0)
            j.process(tup(i * 0.01, y=0.0), port=1)
        assert j.comparisons >= n * (n - 1)

    def test_eviction_bounds_state(self):
        j = self.join(window=1.0)
        for i in range(100):
            j.process(tup(float(i), x=1.0), port=0)
        assert j.state_size <= 3

    def test_merge_timestamps_max(self):
        j = self.join()
        j.process(tup(0.0, x=1.0), port=0)
        out = j.process(tup(0.7, y=5.0), port=1)
        assert out[0].time == 0.7


class TestWindowAggregate:
    def test_sum_single_window(self):
        agg = DiscreteWindowAggregate("x", "sum", window=10.0, slide=10.0)
        for i in range(5):
            agg.process(tup(float(i), x=1.0))
        out = agg.flush()
        assert out and out[0]["sum_x"] == 5.0

    def test_min_max(self):
        agg = DiscreteWindowAggregate("x", "min", window=10.0, slide=10.0)
        for v in (3.0, 1.0, 2.0):
            agg.process(tup(v, x=v))
        assert agg.flush()[0]["min_x"] == 1.0

    def test_avg(self):
        agg = DiscreteWindowAggregate("x", "avg", window=10.0, slide=10.0)
        for v in (2.0, 4.0):
            agg.process(tup(v, x=v))
        assert agg.flush()[0]["avg_x"] == 3.0

    def test_count(self):
        agg = DiscreteWindowAggregate("x", "count", window=10.0, slide=10.0)
        for i in range(7):
            agg.process(tup(float(i), x=0.0))
        assert agg.flush()[0]["count_x"] == 7.0

    def test_sliding_windows_emit_on_close(self):
        agg = DiscreteWindowAggregate("x", "sum", window=4.0, slide=2.0)
        outputs = []
        for t in [0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5]:
            outputs += agg.process(tup(t, x=1.0))
        closes = [o.time for o in outputs]
        assert closes == sorted(closes)
        assert 2.0 in closes and 4.0 in closes and 6.0 in closes
        # Window closing at 4 covers [0, 4): four tuples.
        w4 = next(o for o in outputs if o.time == 4.0)
        assert w4["sum_x"] == 4.0

    def test_per_tuple_cost_linear_in_open_windows(self):
        # window/slide = 10 open windows -> ~10 increments per tuple.
        agg = DiscreteWindowAggregate("x", "sum", window=10.0, slide=1.0)
        for t in range(20, 40):
            agg.process(tup(float(t) + 0.5, x=1.0))
        per_tuple = agg.state_increments / agg.tuples_processed
        assert 8.0 <= per_tuple <= 11.0

    def test_group_by(self):
        agg = DiscreteWindowAggregate(
            "x", "sum", window=10.0, slide=10.0, group_fields=("sym",)
        )
        agg.process(tup(1.0, sym="A", x=1.0))
        agg.process(tup(2.0, sym="B", x=5.0))
        agg.process(tup(3.0, sym="A", x=2.0))
        out = {o["sym"]: o["sum_x"] for o in agg.flush()}
        assert out == {"A": 3.0, "B": 5.0}

    def test_rejects_bad_func(self):
        with pytest.raises(ValueError):
            DiscreteWindowAggregate("x", "median", window=1.0, slide=1.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            DiscreteWindowAggregate("x", "sum", window=0.0, slide=1.0)

    def test_empty_windows_not_emitted(self):
        agg = DiscreteWindowAggregate("x", "sum", window=1.0, slide=1.0)
        agg.process(tup(0.5, x=1.0))
        out = agg.process(tup(10.5, x=1.0))
        # Only the window containing the first tuple emits.
        assert all(o["sum_x"] for o in out)
