"""The key-sharded parallel runtime: partitioning, dispatch, parity.

The determinism contract under test: for any trace, any shard count and
any fault pattern, the sharded runtime produces *bit-identical* outputs
and identical semantic counters to the serial runtime.  Sharding and
priming may only move work (to shard workers, or earlier into the
prefill sweep) — never change it.
"""

import math
import random

import pytest

from repro.core import batch_solver
from repro.core.batch_solver import (
    SOLVER_CONFIG,
    real_roots_batch,
    set_roots_dispatch,
    task_root_query,
)
from repro.core.equation_system import DifferenceRow, EquationSystem
from repro.core.expr import Attr, Const
from repro.core.polynomial import Polynomial
from repro.core.predicate import And, Comparison
from repro.core.relation import Rel
from repro.core.segment import Segment
from repro.core.solve_cache import (
    RootCache,
    SolveCache,
    reset_global_solve_cache,
    reset_worker_root_cache,
)
from repro.core.transform import to_continuous_plan
from repro.engine.parallel import InlineExecutor, ParallelSolveDispatcher
from repro.engine.resilience import BreakerConfig
from repro.engine.metrics import counter_snapshot, reset_counters
from repro.engine.scheduler import QueryRuntime
from repro.engine.sharding import (
    ShardQueues,
    ShardRouter,
    canonical_key_bytes,
    shard_of,
    stable_key_hash,
)
from repro.query import parse_query, plan_query
from repro.testing import inject_solver_faults


# ----------------------------------------------------------------------
# key partitioning
# ----------------------------------------------------------------------
class TestSharding:
    def test_assignment_is_process_independent(self):
        # Golden values: BLAKE2b-based, so they must never move between
        # runs, processes, or machines (PYTHONHASHSEED is irrelevant).
        assert [shard_of(k, 4) for k in ("aapl", "ibm", "msft", "goog")] == [
            1, 1, 1, 0,
        ]

    def test_no_concatenation_collisions(self):
        assert canonical_key_bytes(("ab", "c")) != canonical_key_bytes(
            ("a", "bc")
        )
        assert canonical_key_bytes(("a", ("b",))) != canonical_key_bytes(
            (("a",), "b")
        )

    def test_type_tags_distinguish_equal_values(self):
        # bool subclasses int and 1.0 == 1, but the keys are distinct.
        hashes = {
            stable_key_hash(True),
            stable_key_hash(1),
            stable_key_hash(1.0),
            stable_key_hash("1"),
        }
        assert len(hashes) == 4

    def test_single_shard_short_circuits(self):
        assert shard_of(("anything",), 1) == 0

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            shard_of("k", 0)
        with pytest.raises(ValueError):
            ShardRouter(0)

    def test_router_matches_pure_function(self):
        router = ShardRouter(3)
        keys = [("k", i) for i in range(32)]
        for key in keys:
            assert router.shard_of(key) == shard_of(key, 3)
        # Second pass hits the memo; assignment must not drift.
        for key in keys:
            assert router.shard_of(key) == shard_of(key, 3)

    def test_partition_preserves_order_within_shard(self):
        router = ShardRouter(2)
        items = [("k%d" % (i % 5), i) for i in range(20)]
        shards = router.partition(items, key_of=lambda it: it[0])
        for shard, bucket in enumerate(shards):
            assert [router.shard_of(k) for k, _ in bucket] == [shard] * len(
                bucket
            )
            assert [i for _, i in bucket] == sorted(i for _, i in bucket)

    def test_queues_drain_in_global_arrival_order(self):
        queues = ShardQueues(3)
        pushed = []
        for i in range(30):
            key = ("key", i % 7)
            queues.push(key, i)
            pushed.append((key, i))
        assert len(queues) == 30
        drained = queues.drain_in_order()
        assert [(k, item) for _, k, item in drained] == pushed
        assert len(queues) == 0

    def test_drain_shard_only_empties_that_shard(self):
        queues = ShardQueues(2)
        for i in range(10):
            queues.push(("key", i), i)
        depth0 = queues.depth(0)
        out = queues.drain_shard(0)
        assert len(out) == depth0
        assert queues.depth(0) == 0
        assert len(queues) == 10 - depth0


# ----------------------------------------------------------------------
# dispatch machinery
# ----------------------------------------------------------------------
class TestInlineExecutor:
    def test_result_and_error_mirror_pool_futures(self):
        ex = InlineExecutor()
        assert ex.submit(lambda a, b: a + b, 2, 3).result() == 5
        failing = ex.submit(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            failing.result()


class TestParallelSolveDispatcher:
    def setup_method(self):
        reset_worker_root_cache()

    def test_primed_roots_match_inline_kernel(self):
        polys = [
            Polynomial([-1.0, 0.0, 1.0]),   # roots +-1
            Polynomial([0.5, -1.0]),        # root 0.5
            Polynomial([-6.0, 11.0, -6.0, 1.0]),  # roots 1, 2, 3
        ]
        items = [(p, -10.0, 10.0) for p in polys]
        expected = real_roots_batch(items)
        d = ParallelSolveDispatcher(num_shards=2, parallel=False)
        try:
            shipped = d.prime(
                {0: [(p.coeffs, -10.0, 10.0) for p in polys[:2]],
                 1: [(polys[2].coeffs, -10.0, 10.0)]}
            )
            assert shipped == 3
            assert d.dispatch_roots(items) == expected
            # All three were parent-cache hits, zero kernel recomputes.
            assert d.root_store_stats().hits == 3
        finally:
            d.shutdown()

    def test_unprimed_rows_fall_through_and_backfill(self):
        poly = Polynomial([-4.0, 0.0, 1.0])
        items = [(poly, -10.0, 10.0)]
        expected = real_roots_batch(items)
        d = ParallelSolveDispatcher(num_shards=2, parallel=False)
        try:
            assert d.dispatch_roots(items) == expected  # miss -> kernel
            assert d.dispatch_roots(items) == expected  # now a hit
            stats = d.root_store_stats()
            assert (stats.hits, stats.misses) == (1, 1)
        finally:
            d.shutdown()

    def test_failures_recorded_and_never_cached(self):
        poly = Polynomial([math.nan, 1.0])
        d = ParallelSolveDispatcher(num_shards=1, parallel=False)
        try:
            for _ in range(2):  # identical failure on every encounter
                failures = {}
                out = d.dispatch_roots([(poly, 0.0, 1.0)], failures)
                assert out == [[]]
                assert list(failures) == [0]
            assert len(d._root_cache) == 0
        finally:
            d.shutdown()

    def test_prime_dedupes_repeated_rows(self):
        row = ((1.0, -2.0), 0.0, 5.0)
        d = ParallelSolveDispatcher(num_shards=1, parallel=False)
        try:
            assert d.prime({0: [row, row, row]}) == 1
            assert d.prime({0: [row]}) == 0  # already in the parent store
            assert d.rows_dispatched == 1
        finally:
            d.shutdown()

    def test_activate_deactivate_restores_kernel_dispatch(self):
        assert batch_solver._ROOTS_DISPATCH is None
        d = ParallelSolveDispatcher(num_shards=1, parallel=False)
        try:
            d.activate()
            assert batch_solver._ROOTS_DISPATCH == d.dispatch_roots
            d.activate()  # idempotent: must not capture itself
            d.deactivate()
            assert batch_solver._ROOTS_DISPATCH is None
        finally:
            d.shutdown()
        assert batch_solver._ROOTS_DISPATCH is None

    def test_shutdown_deactivates_hook(self):
        d = ParallelSolveDispatcher(num_shards=1, parallel=False)
        d.activate()
        d.shutdown()
        assert batch_solver._ROOTS_DISPATCH is None
        with pytest.raises(RuntimeError):
            d.prime({0: [((1.0,), 0.0, 1.0)]})


# ----------------------------------------------------------------------
# prediction: solve tasks and shippable root rows
# ----------------------------------------------------------------------
MODELS = {
    "A.x": Polynomial([4.0, 1.0]),
    "B.y": Polynomial([0.0, 2.0, 0.5]),
}


class TestRowTasksAndRootQueries:
    def _system(self, pred):
        return EquationSystem.from_predicate(pred, MODELS.__getitem__)

    def test_row_tasks_cover_every_row(self):
        pred = And(
            Comparison(Attr("A.x"), Rel.LT, Attr("B.y")),
            Comparison(Attr("A.x"), Rel.GT, Const(0.0)),
        )
        system = self._system(pred)
        tasks = system.row_tasks(0.0, 10.0)
        assert len(tasks) == len(system.rows)
        for (poly, rel, lo, hi), row in zip(tasks, system.rows):
            assert (poly, rel, lo, hi) == (row.poly, row.rel, 0.0, 10.0)

    def test_row_tasks_empty_domain(self):
        system = self._system(Comparison(Attr("A.x"), Rel.LT, Attr("B.y")))
        assert system.row_tasks(5.0, 5.0) == []
        assert system.row_tasks(6.0, 5.0) == []

    def test_equality_fast_path_predicts_nothing(self):
        pred = And(
            Comparison(Attr("A.x"), Rel.EQ, Attr("B.y")),
            Comparison(Attr("A.x"), Rel.EQ, Const(0.0)),
        )
        system = self._system(pred)
        assert len(system.rows) > 1
        assert system.row_tasks(0.0, 10.0) == []

    def test_task_root_query_classification(self):
        p = Polynomial([-1.0, 1.0])
        assert task_root_query((p, Rel.GT, 0.0, 5.0)) == (p.coeffs, 0.0, 5.0)
        # Degenerate rows never reach the root finder.
        assert task_root_query((p, Rel.GT, 5.0, 5.0)) is None
        assert task_root_query((Polynomial([3.0]), Rel.GT, 0.0, 5.0)) is None
        assert task_root_query((Polynomial([0.0]), Rel.GT, 0.0, 5.0)) is None
        # Out-of-guardrail coefficients fail in-parent, not in a worker.
        bad = Polynomial([math.nan, 1.0])
        assert task_root_query((bad, Rel.GT, 0.0, 5.0)) is None
        spike = Polynomial([0.0, 1e200])
        assert task_root_query((spike, Rel.GT, 0.0, 5.0)) is None
        deep = Polynomial([1.0] * (SOLVER_CONFIG.max_roots_per_row + 2))
        assert task_root_query((deep, Rel.GT, 0.0, 5.0)) is None


# ----------------------------------------------------------------------
# signed-zero canonicalization in cache keys
# ----------------------------------------------------------------------
class TestSignedZeroKeys:
    def test_solve_cache_key_canonicalizes_negative_zero(self):
        cache = SolveCache(maxsize=16)
        k_pos = cache.key(Polynomial([0.0, 1.0]), Rel.GT, 0.0, 1.0)
        k_neg = cache.key(Polynomial([-0.0, 1.0]), Rel.GT, -0.0, 1.0)
        assert k_pos == k_neg
        assert "-0.0" not in repr(k_neg)

    def test_root_cache_key_canonicalizes_negative_zero(self):
        k_pos = RootCache.key((0.0, 1.0), 0.0, 1.0)
        k_neg = RootCache.key((-0.0, 1.0), -0.0, 1.0)
        assert k_pos == k_neg
        assert "-0.0" not in repr(k_neg)

    def test_root_cache_key_fast_path_skips_zero_free_rows(self):
        # The common case (no zero coefficient) must not rewrite, and
        # the keyed values must round-trip exactly.
        coeffs = (1.5, -2.25, 3.0)
        row, lo, hi = RootCache.key(coeffs, -1.0, 1.0)
        assert row == coeffs and (lo, hi) == (-1.0, 1.0)

    def test_negative_zero_rows_share_one_entry(self):
        cache = RootCache(maxsize=16)
        cache.put(RootCache.key((-0.0, 1.0), 0.0, 1.0), (0.5,))
        assert cache.get(RootCache.key((0.0, 1.0), -0.0, 1.0)) == (0.5,)
        assert len(cache._entries) == 1


# ----------------------------------------------------------------------
# hot-path counter binding
# ----------------------------------------------------------------------
class TestCounterBinding:
    def test_row_solve_counter_not_resolved_per_event(self, monkeypatch):
        """Registry lookups must stay constant while solves scale."""
        import repro.core.equation_system as eqs
        from repro.engine import metrics

        lookups = []
        real = metrics.CounterRegistry.counter

        def counting(self, name):
            lookups.append(name)
            return real(self, name)

        monkeypatch.setattr(metrics.CounterRegistry, "counter", counting)
        monkeypatch.setattr(eqs, "_row_solve_counter", None)  # force rebind
        reset_counters("equation_system.row_solves")

        row = DifferenceRow(Polynomial([-1.0, 1.0]), Rel.GT)
        n = 64
        for i in range(n):
            row.solve(0.0, 2.0 + 0.001 * i)

        assert counter_snapshot("equation_system")[
            "equation_system.row_solves"
        ] == n
        # One bind for row_solves; the solve-cache handles bind lazily
        # too, so allow their one-time registration — but nothing may
        # scale with n.
        assert lookups.count("equation_system.row_solves") == 1
        assert len(lookups) <= 4

    def test_scheduler_binds_counters_at_construction(self, monkeypatch):
        from repro.engine import metrics

        lookups = []
        real = metrics.CounterRegistry.counter

        def counting(self, name):
            lookups.append(name)
            return real(self, name)

        rt = QueryRuntime()
        rt.register(
            "q",
            to_continuous_plan(
                plan_query(parse_query("select * from s where x > 0"))
            ),
        )
        monkeypatch.setattr(metrics.CounterRegistry, "counter", counting)
        runtime_lookups_before = [
            n for n in lookups if n.startswith("runtime.")
        ]
        for i in range(16):
            rt.enqueue(
                "s",
                Segment(("k",), float(i), i + 1.0, {"x": Polynomial([1.0])}),
            )
        rt.run_until_idle()
        # No runtime.* counter is re-resolved per event after __init__.
        assert [
            n for n in lookups if n.startswith("runtime.")
        ] == runtime_lookups_before


# ----------------------------------------------------------------------
# serial vs sharded parity (the determinism contract, property-style)
# ----------------------------------------------------------------------
FILT_SQL = "select * from ticks where x > 1"
JOIN_SQL = (
    "select from ticks T join quotes Q on (T.sym = Q.sym and T.x > Q.y)"
)
#: Windowed group-by aggregate: exercises per-key window state, which
#: priming must never mutate and sharding must never reorder.
AGG_SQL = (
    "select sym, avg(x) as ax from ticks [size 4 advance 2] group by sym"
)


def random_trace(seed, keys=("a", "b", "c"), rows_per_key=6, degree=4):
    """Randomized two-stream trace with overlapping same-key updates."""
    rng = random.Random(seed)
    events = []
    clock = {k: 0.0 for k in keys}
    for _ in range(rows_per_key):
        for k in keys:
            start = clock[k]
            dur = rng.uniform(0.5, 2.5)
            for stream, attr in (("ticks", "x"), ("quotes", "y")):
                coeffs = [rng.uniform(-2, 2) for _ in range(degree + 1)]
                events.append(
                    (
                        stream,
                        Segment(
                            (k,), start, start + dur,
                            {attr: Polynomial(coeffs)},
                            constants={"sym": k},
                        ),
                    )
                )
            clock[k] = start + rng.uniform(0.2, 1.5)
    return events


def drive(num_shards, events, fault_rate=0.0, breaker=None):
    """Run one trace through a fresh runtime; return comparable state."""
    reset_global_solve_cache()
    reset_worker_root_cache()
    reset_counters()
    kw = {} if breaker is None else {"breaker": breaker}
    rt = QueryRuntime(num_shards=num_shards, batch_size=32, **kw)
    try:
        rt.register(
            "filt", to_continuous_plan(plan_query(parse_query(FILT_SQL)))
        )
        rt.register(
            "join", to_continuous_plan(plan_query(parse_query(JOIN_SQL)))
        )
        rt.register(
            "agg", to_continuous_plan(plan_query(parse_query(AGG_SQL)))
        )
        for stream, seg in events:
            rt.enqueue(stream, seg)
        if fault_rate:
            # rate=1.0 fails every solve deterministically regardless of
            # call order, so serial and sharded trip breakers alike.
            with inject_solver_faults(rate=fault_rate):
                rt.run_until_idle()
            # Recovery phase: the trace replays clean, shifted in time.
            for stream, seg in events:
                rt.enqueue(
                    stream,
                    Segment(
                        seg.key, seg.t_start + 1000.0, seg.t_end + 1000.0,
                        dict(seg.models), constants=dict(seg.constants),
                    ),
                )
        rt.run_until_idle()
        outputs = {
            name: [
                (
                    s.key, s.t_start, s.t_end,
                    sorted(s.constants.items()),
                    # Model coefficients included so aggregate parity
                    # compares computed values, not just window bounds.
                    sorted((a, repr(p)) for a, p in s.models.items()),
                )
                for s in rt.outputs(name)
            ]
            for name in rt.query_names
        }
        counters = {
            **counter_snapshot("equation_system"),
            **counter_snapshot("resilience"),
            "step_errors": rt.step_errors,
        }
    finally:
        rt.close()
    return outputs, counters


class TestSerialShardParity:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_outputs_and_counters_identical(self, seed, num_shards):
        events = random_trace(seed)
        serial_out, serial_counters = drive(1, events)
        shard_out, shard_counters = drive(num_shards, events)
        assert shard_out == serial_out
        assert shard_counters == serial_counters

    @pytest.mark.parametrize("num_shards", [2, 3])
    def test_breaker_tripping_trace_stays_identical(self, num_shards):
        events = random_trace(7, rows_per_key=4)
        breaker = BreakerConfig(
            failure_threshold=2, backoff=3, probe_successes=1
        )
        serial_out, serial_counters = drive(
            1, events, fault_rate=1.0, breaker=breaker
        )
        shard_out, shard_counters = drive(
            num_shards, events, fault_rate=1.0, breaker=breaker
        )
        assert serial_counters["resilience.breaker.opened"] > 0
        assert shard_out == serial_out
        assert shard_counters == serial_counters

    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_aggregate_group_by_parity_is_not_vacuous(self, num_shards):
        # The group-by windows must actually fire on this trace, and
        # the per-key averages must be bit-identical across shardings.
        events = random_trace(5, rows_per_key=8)
        serial_out, _ = drive(1, events)
        shard_out, _ = drive(num_shards, events)
        assert serial_out["agg"], "aggregate produced no output segments"
        assert shard_out["agg"] == serial_out["agg"]

    def test_aggregate_breaker_trip_parity(self):
        events = random_trace(13, rows_per_key=4)
        breaker = BreakerConfig(
            failure_threshold=2, backoff=3, probe_successes=1
        )
        serial_out, serial_counters = drive(
            1, events, fault_rate=1.0, breaker=breaker
        )
        shard_out, shard_counters = drive(
            3, events, fault_rate=1.0, breaker=breaker
        )
        assert serial_counters["resilience.breaker.opened"] > 0
        assert serial_out["agg"]
        assert shard_out == serial_out
        assert shard_counters == serial_counters

    def test_parallel_stats_surface(self):
        events = random_trace(11, rows_per_key=3)
        reset_global_solve_cache()
        reset_worker_root_cache()
        reset_counters()
        rt = QueryRuntime(num_shards=2, batch_size=16)
        try:
            rt.register(
                "join",
                to_continuous_plan(plan_query(parse_query(JOIN_SQL))),
            )
            for stream, seg in events:
                rt.enqueue(stream, seg)
            rt.run_until_idle()
            stats = rt.parallel_stats()
            assert stats["num_shards"] == 2
            assert stats["rows_dispatched"] > 0
        finally:
            rt.close()
