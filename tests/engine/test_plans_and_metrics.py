"""Tests for the plan executors (both engines) and the queueing model."""

import pytest

from repro.core.errors import PlanError
from repro.core.expr import Attr, Const
from repro.core.operators import ContinuousFilter
from repro.core.plan import ContinuousPlan
from repro.core.polynomial import Polynomial
from repro.core.predicate import Comparison
from repro.core.relation import Rel
from repro.core.segment import Segment
from repro.engine import (
    DiscreteFilter,
    DiscretePlan,
    QueueingModel,
    StreamTuple,
    measure_service_time,
)


def seg(lo, hi, **models):
    return Segment(
        key=("k",),
        t_start=lo,
        t_end=hi,
        models={k: Polynomial(v) for k, v in models.items()},
    )


def gt(attr, c):
    return Comparison(Attr(attr), Rel.GT, Const(c))


class TestContinuousPlan:
    def build(self):
        plan = ContinuousPlan("p")
        src = plan.add_source("S")
        f1 = plan.add_operator(ContinuousFilter(gt("x", 0.0)), [src])
        f2 = plan.add_operator(ContinuousFilter(gt("x", 5.0)), [f1])
        plan.set_output(f2)
        return plan

    def test_push_cascades(self):
        plan = self.build()
        out = plan.push("S", seg(0, 10, x=[7.0]))
        assert len(out) == 1

    def test_push_filtered_mid_plan(self):
        plan = self.build()
        assert plan.push("S", seg(0, 10, x=[3.0])) == []

    def test_unknown_source_raises(self):
        plan = self.build()
        with pytest.raises(PlanError):
            plan.push("X", seg(0, 1, x=[1.0]))

    def test_output_required(self):
        plan = ContinuousPlan()
        src = plan.add_source("S")
        with pytest.raises(PlanError):
            plan.push("S", seg(0, 1, x=[1.0]))

    def test_arity_checked(self):
        plan = ContinuousPlan()
        src = plan.add_source("S")
        from repro.core.operators import ContinuousJoin

        with pytest.raises(PlanError):
            plan.add_operator(ContinuousJoin(gt("x", 0.0)), [src])

    def test_duplicate_source_rejected(self):
        plan = ContinuousPlan()
        plan.add_source("S")
        with pytest.raises(PlanError):
            plan.add_source("S")

    def test_stats_counters(self):
        plan = self.build()
        plan.push("S", seg(0, 10, x=[7.0]))
        stats = plan.stats()
        assert any(v == (1, 1) for v in stats.values())

    def test_observer_called(self):
        plan = self.build()
        calls = []
        plan.add_observer(lambda node, seg_in, outs: calls.append(node.label))
        plan.push("S", seg(0, 10, x=[7.0]))
        assert len(calls) == 2  # both filters observed

    def test_reset_clears_counters(self):
        plan = self.build()
        plan.push("S", seg(0, 10, x=[7.0]))
        plan.reset()
        assert all(v == (0, 0) for v in plan.stats().values())

    def test_join_plan_two_sources(self):
        from repro.core.operators import ContinuousJoin

        plan = ContinuousPlan()
        a = plan.add_source("A")
        b = plan.add_source("B")
        join = plan.add_operator(
            ContinuousJoin(Comparison(Attr("L.x"), Rel.LT, Attr("R.y"))),
            [(a, 0), (b, 1)],
        )
        plan.set_output(join)
        plan.push("A", seg(0, 10, x=[0.0]))
        out = plan.push("B", seg(0, 10, y=[5.0]))
        assert len(out) == 1


class TestDiscretePlan:
    def test_pipeline(self):
        plan = DiscretePlan()
        src = plan.add_source("S")
        f = plan.add_operator(DiscreteFilter(gt("x", 0.0)), [src])
        plan.set_output(f)
        assert plan.push("S", StreamTuple({"time": 0.0, "x": 1.0}))
        assert plan.push("S", StreamTuple({"time": 0.0, "x": -1.0})) == []

    def test_stats(self):
        plan = DiscretePlan()
        src = plan.add_source("S")
        f = plan.add_operator(DiscreteFilter(gt("x", 0.0)), [src])
        plan.set_output(f)
        plan.push("S", StreamTuple({"time": 0.0, "x": 1.0}))
        assert any(v == (1, 1) for v in plan.stats().values())


class TestQueueingModel:
    def test_capacity(self):
        m = QueueingModel(service_time=0.001)
        assert m.capacity == pytest.approx(1000.0)

    def test_under_capacity_keeps_up(self):
        m = QueueingModel(service_time=0.001)
        r = m.offered(500.0)
        assert r.achieved_throughput == pytest.approx(500.0, rel=0.05)
        assert not r.saturated
        assert r.final_queue_length < 10.0

    def test_over_capacity_tails_off(self):
        m = QueueingModel(service_time=0.001, queue_capacity=1000)
        r = m.offered(5000.0)
        assert r.achieved_throughput < 1000.0
        assert r.saturated

    def test_monotone_latency_in_offered_rate(self):
        m = QueueingModel(service_time=0.001, queue_capacity=1000)
        sweep = m.sweep([200.0, 800.0, 1200.0, 3000.0])
        latencies = [r.mean_latency for r in sweep]
        assert latencies == sorted(latencies)

    def test_throughput_never_exceeds_capacity(self):
        m = QueueingModel(service_time=0.002)
        for r in m.sweep([100.0, 400.0, 600.0, 2000.0]):
            assert r.achieved_throughput <= m.capacity * 1.01

    def test_rejects_bad_service_time(self):
        with pytest.raises(ValueError):
            QueueingModel(service_time=0.0)

    def test_measure_service_time(self):
        f = DiscreteFilter(gt("x", 0.0))
        workload = [StreamTuple({"time": float(i), "x": 1.0}) for i in range(100)]
        metrics = measure_service_time(f.process, workload)
        assert metrics.items_in == 100
        assert metrics.items_out == 100
        assert metrics.elapsed_seconds > 0
        assert metrics.throughput > 0
